//! The K-variate linear Hawkes model with exponential impulse kernels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An event: something happened on process `process` at time `t`
/// (workspace convention: `t` is in days since dataset start).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Event time.
    pub t: f64,
    /// Index of the process (community) the event occurred on.
    pub process: usize,
}

impl Event {
    /// Convenience constructor.
    pub fn new(t: f64, process: usize) -> Self {
        Self { t, process }
    }
}

/// Errors from model construction or fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum HawkesError {
    /// A dimension didn't match (weight matrix vs background vector).
    DimensionMismatch(String),
    /// A parameter was out of range (negative rate, non-positive decay…).
    InvalidParameter(String),
    /// Event stream invalid (unsorted, out-of-range process id…).
    InvalidEvents(String),
    /// The event stream was empty where a fit needs data.
    EmptyEvents,
    /// A fit landed at or beyond the critical branching ratio: the
    /// spectral radius of the fitted weight matrix reached 1, so
    /// cascades do not die out and attribution is unreliable.
    NonStationary {
        /// Spectral radius of the fitted weight matrix.
        spectral_radius: f64,
    },
    /// A fit produced non-finite parameters or likelihood.
    Diverged(String),
}

impl fmt::Display for HawkesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch(s) => write!(f, "dimension mismatch: {s}"),
            Self::InvalidParameter(s) => write!(f, "invalid parameter: {s}"),
            Self::InvalidEvents(s) => write!(f, "invalid events: {s}"),
            Self::EmptyEvents => write!(f, "empty event stream"),
            Self::NonStationary { spectral_radius } => write!(
                f,
                "non-stationary fit: spectral radius {spectral_radius} >= 1"
            ),
            Self::Diverged(s) => write!(f, "fit diverged: {s}"),
        }
    }
}

impl std::error::Error for HawkesError {}

/// A multivariate linear Hawkes model.
///
/// Process `k` has conditional intensity
///
/// ```text
/// λ_k(t) = μ_k + Σ_{i : t_i < t}  W[c_i][k] · β e^{-β (t - t_i)}
/// ```
///
/// where `μ_k` is the background rate, `W[c][k]` the expected number of
/// direct offspring an event on `c` spawns on `k` (the paper: "a weight
/// from Twitter to Reddit of 1.2 means that each event on Twitter will
/// cause an expected 1.2 additional events on Reddit"), and the
/// exponential kernel integrates to one so weights *are* offspring
/// counts. `β` controls how fast an impulse decays ("typically the
/// probability of another event occurring is highest soon after the
/// original event and decreases over time").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HawkesModel {
    /// Background rate per process (events per unit time).
    pub mu: Vec<f64>,
    /// Weight matrix: `w[src][dst]` = expected direct offspring on `dst`
    /// per event on `src`.
    pub w: Vec<Vec<f64>>,
    /// Exponential kernel decay rate (per unit time), shared across
    /// process pairs.
    pub beta: f64,
}

impl HawkesModel {
    /// Construct and validate a model.
    pub fn new(mu: Vec<f64>, w: Vec<Vec<f64>>, beta: f64) -> Result<Self, HawkesError> {
        let k = mu.len();
        if k == 0 {
            return Err(HawkesError::InvalidParameter(
                "need at least one process".into(),
            ));
        }
        if w.len() != k || w.iter().any(|row| row.len() != k) {
            return Err(HawkesError::DimensionMismatch(format!(
                "weight matrix must be {k}x{k}"
            )));
        }
        if mu.iter().any(|m| !m.is_finite() || *m < 0.0) {
            return Err(HawkesError::InvalidParameter(
                "background rates must be finite and >= 0".into(),
            ));
        }
        if w.iter().flatten().any(|x| !x.is_finite() || *x < 0.0) {
            return Err(HawkesError::InvalidParameter(
                "weights must be finite and >= 0".into(),
            ));
        }
        if !(beta.is_finite() && beta > 0.0) {
            return Err(HawkesError::InvalidParameter(
                "kernel decay beta must be finite and > 0".into(),
            ));
        }
        Ok(Self { mu, w, beta })
    }

    /// Number of processes.
    pub fn k(&self) -> usize {
        self.mu.len()
    }

    /// Spectral radius of the weight matrix (power iteration). The
    /// process is stationary — cascades die out — iff this is `< 1`.
    pub fn spectral_radius(&self) -> f64 {
        let k = self.k();
        let mut v = vec![1.0 / (k as f64).sqrt(); k];
        let mut lambda = 0.0;
        for _ in 0..200 {
            // v' = W^T v (offspring counts propagate src -> dst).
            let mut next = vec![0.0; k];
            for (src, row) in self.w.iter().enumerate() {
                for dst in 0..k {
                    next[dst] += row[dst] * v[src];
                }
            }
            let norm: f64 = next.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-300 {
                return 0.0;
            }
            lambda = norm;
            for (a, b) in v.iter_mut().zip(&next) {
                *a = b / norm;
            }
        }
        lambda
    }

    /// Whether cascades are guaranteed to die out.
    pub fn is_stationary(&self) -> bool {
        self.spectral_radius() < 1.0
    }

    /// Conditional intensity of process `dst` at time `t`, given sorted
    /// `events` strictly before `t` are counted.
    ///
    /// O(n) in the number of events; fitting code uses incremental
    /// recursions instead, this is the reference implementation for tests
    /// and thinning simulation.
    pub fn intensity(&self, events: &[Event], dst: usize, t: f64) -> f64 {
        let mut lambda = self.mu[dst];
        for e in events {
            if e.t >= t {
                break;
            }
            lambda += self.w[e.process][dst] * self.beta * (-self.beta * (t - e.t)).exp();
        }
        lambda
    }

    /// Validate an event stream against this model: sorted by time,
    /// process ids in range, times finite and within `[0, horizon]`.
    pub fn validate_events(&self, events: &[Event], horizon: f64) -> Result<(), HawkesError> {
        let mut prev = f64::NEG_INFINITY;
        for e in events {
            if !e.t.is_finite() || e.t < 0.0 || e.t > horizon {
                return Err(HawkesError::InvalidEvents(format!(
                    "event time {} outside [0, {horizon}]",
                    e.t
                )));
            }
            if e.t < prev {
                return Err(HawkesError::InvalidEvents(
                    "events must be sorted by time".into(),
                ));
            }
            if e.process >= self.k() {
                return Err(HawkesError::InvalidEvents(format!(
                    "process id {} out of range (K = {})",
                    e.process,
                    self.k()
                )));
            }
            prev = e.t;
        }
        Ok(())
    }

    /// Log-likelihood of a sorted event stream observed on `[0, horizon]`.
    ///
    /// `LL = Σ_i log λ_{c_i}(t_i) − Σ_k ∫_0^T λ_k(s) ds`, computed in
    /// O(nK) with the standard exponential-kernel recursion.
    pub fn log_likelihood(&self, events: &[Event], horizon: f64) -> Result<f64, HawkesError> {
        self.validate_events(events, horizon)?;
        let k = self.k();
        // r[c] = Σ_{j : t_j < t, c_j = c} exp(-beta (t - t_j)),
        // maintained at the current event time.
        let mut r = vec![0.0f64; k];
        let mut last_t = 0.0f64;
        let mut ll = 0.0f64;
        for e in events {
            let decay = (-self.beta * (e.t - last_t)).exp();
            for rc in &mut r {
                *rc *= decay;
            }
            let mut lambda = self.mu[e.process];
            for c in 0..k {
                lambda += self.w[c][e.process] * self.beta * r[c];
            }
            if lambda <= 0.0 {
                return Err(HawkesError::InvalidParameter(
                    "zero intensity at an observed event".into(),
                ));
            }
            ll += lambda.ln();
            r[e.process] += 1.0;
            last_t = e.t;
        }
        // Compensator: Σ_k μ_k T + Σ_i Σ_k W[c_i][k] (1 - e^{-β(T - t_i)}).
        let mut integral: f64 = self.mu.iter().sum::<f64>() * horizon;
        for e in events {
            let frac = 1.0 - (-self.beta * (horizon - e.t)).exp();
            let out: f64 = self.w[e.process].iter().sum();
            integral += out * frac;
        }
        Ok(ll - integral)
    }

    /// Expected total event rate per process at stationarity:
    /// `Λ = (I − W^T)^{-1} μ` (via fixed-point iteration). Returns `None`
    /// for non-stationary models.
    pub fn stationary_rates(&self) -> Option<Vec<f64>> {
        if !self.is_stationary() {
            return None;
        }
        let k = self.k();
        let mut rate = self.mu.clone();
        for _ in 0..10_000 {
            let mut next = self.mu.clone();
            for (src, row) in self.w.iter().enumerate() {
                for dst in 0..k {
                    next[dst] += row[dst] * rate[src];
                }
            }
            let diff: f64 = next.iter().zip(&rate).map(|(a, b)| (a - b).abs()).sum();
            rate = next;
            if diff < 1e-12 {
                break;
            }
        }
        Some(rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> HawkesModel {
        HawkesModel::new(vec![0.5, 0.2], vec![vec![0.3, 0.2], vec![0.1, 0.4]], 1.5).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(HawkesModel::new(vec![], vec![], 1.0).is_err());
        assert!(HawkesModel::new(vec![1.0], vec![vec![0.5, 0.1]], 1.0).is_err());
        assert!(HawkesModel::new(vec![-1.0], vec![vec![0.5]], 1.0).is_err());
        assert!(HawkesModel::new(vec![1.0], vec![vec![-0.5]], 1.0).is_err());
        assert!(HawkesModel::new(vec![1.0], vec![vec![0.5]], 0.0).is_err());
        assert!(HawkesModel::new(vec![1.0], vec![vec![0.5]], 1.0).is_ok());
    }

    #[test]
    fn spectral_radius_diagonal() {
        let m =
            HawkesModel::new(vec![1.0, 1.0], vec![vec![0.7, 0.0], vec![0.0, 0.3]], 1.0).unwrap();
        assert!((m.spectral_radius() - 0.7).abs() < 1e-6);
        assert!(m.is_stationary());
    }

    #[test]
    fn spectral_radius_supercritical() {
        let m = HawkesModel::new(vec![1.0], vec![vec![1.2]], 1.0).unwrap();
        assert!((m.spectral_radius() - 1.2).abs() < 1e-9);
        assert!(!m.is_stationary());
        assert!(m.stationary_rates().is_none());
    }

    #[test]
    fn intensity_decays_toward_background() {
        let m = toy();
        let events = vec![Event::new(1.0, 0)];
        let just_after = m.intensity(&events, 1, 1.0001);
        let much_later = m.intensity(&events, 1, 50.0);
        assert!(just_after > m.mu[1]);
        assert!((much_later - m.mu[1]).abs() < 1e-9);
        // Impulse height right after the event: w * beta.
        assert!((just_after - (m.mu[1] + m.w[0][1] * m.beta)).abs() < 1e-3);
    }

    #[test]
    fn intensity_ignores_future_events() {
        let m = toy();
        let events = vec![Event::new(5.0, 0)];
        assert_eq!(m.intensity(&events, 0, 4.9), m.mu[0]);
    }

    #[test]
    fn validate_events_catches_problems() {
        let m = toy();
        assert!(m
            .validate_events(&[Event::new(1.0, 0), Event::new(0.5, 0)], 10.0)
            .is_err());
        assert!(m.validate_events(&[Event::new(1.0, 5)], 10.0).is_err());
        assert!(m.validate_events(&[Event::new(11.0, 0)], 10.0).is_err());
        assert!(m.validate_events(&[Event::new(f64::NAN, 0)], 10.0).is_err());
        assert!(m
            .validate_events(&[Event::new(0.5, 0), Event::new(1.0, 1)], 10.0)
            .is_ok());
    }

    #[test]
    fn log_likelihood_empty_stream_is_minus_integral() {
        let m = toy();
        let ll = m.log_likelihood(&[], 10.0).unwrap();
        assert!((ll + (0.5 + 0.2) * 10.0).abs() < 1e-12);
    }

    #[test]
    fn log_likelihood_prefers_generating_model() {
        // A single event early in the window: a model with higher
        // background on that process should win over a lower-background
        // one.
        let hi = HawkesModel::new(vec![1.0], vec![vec![0.0]], 1.0).unwrap();
        let lo = HawkesModel::new(vec![0.01], vec![vec![0.0]], 1.0).unwrap();
        let events = vec![Event::new(0.5, 0), Event::new(0.7, 0)];
        // Horizon chosen so 2 events in 2 days ~ rate 1.0.
        let ll_hi = hi.log_likelihood(&events, 2.0).unwrap();
        let ll_lo = lo.log_likelihood(&events, 2.0).unwrap();
        assert!(ll_hi > ll_lo);
    }

    #[test]
    fn log_likelihood_matches_direct_computation() {
        // Cross-check the O(nK) recursion against the O(n^2) definition.
        let m = toy();
        let events = vec![
            Event::new(0.3, 0),
            Event::new(0.9, 1),
            Event::new(1.4, 0),
            Event::new(2.0, 1),
        ];
        let horizon = 3.0;
        let fast = m.log_likelihood(&events, horizon).unwrap();
        let mut slow = 0.0;
        for (i, e) in events.iter().enumerate() {
            slow += m.intensity(&events[..i], e.process, e.t).ln();
        }
        let mut integral = (m.mu[0] + m.mu[1]) * horizon;
        for e in &events {
            let frac = 1.0 - (-m.beta * (horizon - e.t)).exp();
            integral += (m.w[e.process][0] + m.w[e.process][1]) * frac;
        }
        slow -= integral;
        assert!((fast - slow).abs() < 1e-9, "fast {fast} slow {slow}");
    }

    #[test]
    fn stationary_rates_solve_fixed_point() {
        let m = toy();
        let rates = m.stationary_rates().unwrap();
        // Check Λ = μ + W^T Λ.
        for dst in 0..2 {
            let expected = m.mu[dst] + m.w[0][dst] * rates[0] + m.w[1][dst] * rates[1];
            assert!((rates[dst] - expected).abs() < 1e-9);
        }
        // Rates exceed background (self/cross excitation adds volume).
        assert!(rates[0] > m.mu[0]);
        assert!(rates[1] > m.mu[1]);
    }
}
