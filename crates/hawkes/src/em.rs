//! Maximum-likelihood fitting via expectation–maximization.
//!
//! The E-step computes, for every event, the probability that it was
//! caused by the background or by each earlier event (the latent
//! branching structure); the M-step re-estimates background rates and
//! the weight matrix in closed form. This is the classic EM for
//! exponential-kernel Hawkes processes (Lewis & Mohler 2011), and the
//! deterministic, fast counterpart to the paper's Gibbs sampler — the
//! two fitters are cross-validated against each other in the tests and
//! the `repro` ablations.

use crate::model::{Event, HawkesError, HawkesModel};
use serde::{Deserialize, Serialize};

/// EM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmConfig {
    /// Kernel decay rate. When `estimate_beta` is false this value is
    /// held fixed (the paper fixes the impulse shape family too).
    pub beta: f64,
    /// Whether to re-estimate `beta` in each M-step.
    pub estimate_beta: bool,
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Stop when the log-likelihood improves by less than this.
    pub tol: f64,
    /// Ignore candidate parents farther than this many kernel
    /// time-constants (`1/beta`) in the past; `exp(-30) ≈ 1e-13` makes 30
    /// lossless in double precision while keeping the E-step near-linear
    /// on long streams.
    pub max_lag_time_constants: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            beta: 1.0,
            estimate_beta: false,
            max_iters: 100,
            tol: 1e-6,
            max_lag_time_constants: 30.0,
        }
    }
}

/// Result of an EM fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmFit {
    /// The fitted model.
    pub model: HawkesModel,
    /// Final log-likelihood.
    pub log_likelihood: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was reached before `max_iters`.
    pub converged: bool,
}

/// Fit a K-variate Hawkes model to a sorted event stream on
/// `[0, horizon]`.
///
/// Returns an error for invalid inputs (`k == 0`, empty stream, bad
/// horizon, unsorted events, out-of-range process ids).
pub fn fit_em(
    events: &[Event],
    k: usize,
    horizon: f64,
    config: &EmConfig,
) -> Result<EmFit, HawkesError> {
    if k == 0 {
        return Err(HawkesError::InvalidParameter(
            "need at least one process".into(),
        ));
    }
    if events.is_empty() {
        return Err(HawkesError::EmptyEvents);
    }
    if !(horizon.is_finite() && horizon > 0.0) {
        return Err(HawkesError::InvalidParameter(
            "horizon must be finite and positive".into(),
        ));
    }
    if !(config.beta.is_finite() && config.beta > 0.0) {
        return Err(HawkesError::InvalidParameter(
            "beta must be finite and positive".into(),
        ));
    }

    // Initialization: attribute half the empirical rate to background,
    // start with small uniform weights.
    let n = events.len();
    let mut counts = vec![0usize; k];
    for e in events {
        if e.process >= k {
            return Err(HawkesError::InvalidEvents(format!(
                "process id {} out of range",
                e.process
            )));
        }
        counts[e.process] += 1;
    }
    let mut model = HawkesModel::new(
        counts
            .iter()
            .map(|&c| (0.5 * c as f64 / horizon).max(1e-6))
            .collect(),
        vec![vec![0.1; k]; k],
        config.beta,
    )?;
    model.validate_events(events, horizon)?;

    let mut prev_ll = f64::NEG_INFINITY;
    let mut converged = false;
    let mut iterations = 0;

    // Scratch: expected offspring counts and background counts.
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        let beta = model.beta;
        let max_lag = config.max_lag_time_constants / beta;

        let mut bg_resp = vec![0.0f64; k]; // Σ p_i,bg per process
        let mut pair_resp = vec![vec![0.0f64; k]; k]; // Σ p_ij by (c_j, c_i)
        let mut lag_sum = 0.0f64; // Σ p_ij (t_i - t_j), for beta update
        let mut pair_total = 0.0f64;

        for i in 0..n {
            let ei = events[i];
            let mut weights: Vec<(usize, f64)> = Vec::new();
            let mut total = model.mu[ei.process];
            // Walk candidate parents backward until beyond max_lag.
            for j in (0..i).rev() {
                let dt = ei.t - events[j].t;
                if dt > max_lag {
                    break;
                }
                let a = model.w[events[j].process][ei.process] * beta * (-beta * dt).exp();
                if a > 0.0 {
                    weights.push((j, a));
                    total += a;
                }
            }
            if total <= 0.0 {
                // Degenerate (mu hit zero and no parents): tiny floor.
                bg_resp[ei.process] += 1.0;
                continue;
            }
            bg_resp[ei.process] += model.mu[ei.process] / total;
            for (j, a) in weights {
                let p = a / total;
                pair_resp[events[j].process][ei.process] += p;
                lag_sum += p * (ei.t - events[j].t);
                pair_total += p;
            }
        }

        // M-step.
        for dst in 0..k {
            model.mu[dst] = (bg_resp[dst] / horizon).max(1e-12);
        }
        // Denominator: Σ_{j on src} (1 - exp(-beta (T - t_j))) — the
        // expected fraction of each parent's offspring window observed.
        let mut denom = vec![0.0f64; k];
        for e in events {
            denom[e.process] += 1.0 - (-beta * (horizon - e.t)).exp();
        }
        for src in 0..k {
            for dst in 0..k {
                model.w[src][dst] = if denom[src] > 0.0 {
                    pair_resp[src][dst] / denom[src]
                } else {
                    0.0
                };
            }
        }
        if config.estimate_beta && lag_sum > 0.0 {
            model.beta = (pair_total / lag_sum).clamp(1e-6, 1e6);
        }

        let ll = model.log_likelihood(events, horizon)?;
        if (ll - prev_ll).abs() < config.tol {
            prev_ll = ll;
            converged = true;
            break;
        }
        prev_ll = ll;
    }

    // A NaN likelihood or non-finite parameters mean an update step blew
    // up (the loop above only detects *improvement*, so NaN sails
    // through the tolerance check); report divergence instead of handing
    // back a poisoned model.
    if !prev_ll.is_finite()
        || model.mu.iter().any(|m| !m.is_finite())
        || model.w.iter().flatten().any(|x| !x.is_finite())
        || !model.beta.is_finite()
    {
        return Err(HawkesError::Diverged(format!(
            "non-finite fit after {iterations} iterations (log-likelihood {prev_ll})"
        )));
    }

    Ok(EmFit {
        log_likelihood: prev_ll,
        model,
        iterations,
        converged,
    })
}

/// Nonparametric impulse-response estimate.
///
/// The paper (and our fitters) assume a parametric impulse shape; this
/// diagnostic checks that assumption the way Linderman & Adams motivate
/// their basis functions: compute each event's parent responsibilities
/// under `model`, bin the parent→child lags weighted by responsibility,
/// and normalize to a density over `[0, max_lag)`. If the exponential
/// kernel is right, the histogram tracks `β e^{−β t}`.
///
/// Returns `bins` density values (integrating to ~1 when enough mass
/// falls inside the window); all-zero when the stream has no plausible
/// parent-child pairs. Errors on `bins == 0` or a non-positive /
/// non-finite `max_lag`.
pub fn impulse_histogram(
    model: &HawkesModel,
    events: &[Event],
    bins: usize,
    max_lag: f64,
) -> Result<Vec<f64>, HawkesError> {
    if bins == 0 {
        return Err(HawkesError::InvalidParameter(
            "need at least one bin".into(),
        ));
    }
    if !(max_lag.is_finite() && max_lag > 0.0) {
        return Err(HawkesError::InvalidParameter(
            "max_lag must be finite and positive".into(),
        ));
    }
    // Re-check the parent-probability contract so a malformed stream
    // surfaces as a typed error rather than the assert inside
    // `parent_probabilities`.
    let sorted = events
        .iter()
        .zip(events.iter().skip(1))
        .all(|(a, b)| a.t <= b.t);
    if !sorted || events.iter().any(|e| e.process >= model.k()) {
        return Err(HawkesError::InvalidParameter(
            "events must be sorted by time with in-range process ids".into(),
        ));
    }
    // lint:allow(panic-reachable): the contract asserts cannot fire — sortedness and process range are validated just above
    let dists = crate::attribution::parent_probabilities(model, events);
    let width = max_lag / bins as f64;
    let mut hist = vec![0.0f64; bins];
    let mut total = 0.0f64;
    for (i, pd) in dists.iter().enumerate() {
        for &(j, p) in &pd.parents {
            let lag = events[i].t - events[j].t;
            if lag < max_lag {
                hist[(lag / width) as usize] += p;
            }
            total += p;
        }
    }
    if total > 0.0 {
        for h in &mut hist {
            *h /= total * width;
        }
    }
    Ok(hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{simulate_branching, strip_lineage};
    use meme_stats::seeded_rng;

    fn ground_truth() -> HawkesModel {
        HawkesModel::new(
            vec![0.5, 0.15],
            vec![vec![0.35, 0.25], vec![0.05, 0.3]],
            2.0,
        )
        .unwrap()
    }

    #[test]
    fn rejects_invalid_input() {
        let cfg = EmConfig::default();
        assert!(fit_em(&[], 2, 10.0, &cfg).is_err());
        assert!(fit_em(&[Event::new(1.0, 0)], 0, 10.0, &cfg).is_err());
        assert!(fit_em(&[Event::new(1.0, 0)], 1, 0.0, &cfg).is_err());
        assert!(fit_em(&[Event::new(1.0, 3)], 2, 10.0, &cfg).is_err());
        assert!(fit_em(&[Event::new(2.0, 0), Event::new(1.0, 0)], 1, 10.0, &cfg).is_err());
    }

    #[test]
    fn likelihood_is_monotone_under_em() {
        let truth = ground_truth();
        let mut rng = seeded_rng(42);
        let events = strip_lineage(&simulate_branching(&truth, 400.0, &mut rng));
        let mut lls = Vec::new();
        for iters in [1usize, 3, 10, 30] {
            let cfg = EmConfig {
                beta: 2.0,
                max_iters: iters,
                tol: 0.0,
                ..EmConfig::default()
            };
            let fit = fit_em(&events, 2, 400.0, &cfg).unwrap();
            lls.push(fit.log_likelihood);
        }
        for w in lls.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "EM log-likelihood decreased: {lls:?}");
        }
    }

    #[test]
    fn recovers_ground_truth_parameters() {
        let truth = ground_truth();
        let mut rng = seeded_rng(7);
        let events = strip_lineage(&simulate_branching(&truth, 4000.0, &mut rng));
        assert!(
            events.len() > 2000,
            "need a decent sample: {}",
            events.len()
        );
        let cfg = EmConfig {
            beta: 2.0,
            max_iters: 200,
            ..EmConfig::default()
        };
        let fit = fit_em(&events, 2, 4000.0, &cfg).unwrap();
        for kk in 0..2 {
            let rel = (fit.model.mu[kk] - truth.mu[kk]).abs() / truth.mu[kk];
            assert!(
                rel < 0.15,
                "mu[{kk}] fitted {} vs true {}",
                fit.model.mu[kk],
                truth.mu[kk]
            );
        }
        for s in 0..2 {
            for d in 0..2 {
                let err = (fit.model.w[s][d] - truth.w[s][d]).abs();
                assert!(
                    err < 0.08,
                    "w[{s}][{d}] fitted {} vs true {}",
                    fit.model.w[s][d],
                    truth.w[s][d]
                );
            }
        }
    }

    #[test]
    fn beta_estimation_moves_toward_truth() {
        let truth = ground_truth(); // beta = 2.0
        let mut rng = seeded_rng(8);
        let events = strip_lineage(&simulate_branching(&truth, 3000.0, &mut rng));
        let cfg = EmConfig {
            beta: 0.5, // deliberately wrong start
            estimate_beta: true,
            max_iters: 300,
            ..EmConfig::default()
        };
        let fit = fit_em(&events, 2, 3000.0, &cfg).unwrap();
        assert!(
            (fit.model.beta - 2.0).abs() < 0.5,
            "beta fitted {} vs true 2.0",
            fit.model.beta
        );
    }

    #[test]
    fn pure_poisson_yields_near_zero_weights() {
        let truth = HawkesModel::new(vec![1.0, 0.5], vec![vec![0.0; 2]; 2], 1.0).unwrap();
        let mut rng = seeded_rng(9);
        let events = strip_lineage(&simulate_branching(&truth, 2000.0, &mut rng));
        let cfg = EmConfig {
            beta: 1.0,
            max_iters: 200,
            ..EmConfig::default()
        };
        let fit = fit_em(&events, 2, 2000.0, &cfg).unwrap();
        for s in 0..2 {
            for d in 0..2 {
                assert!(
                    fit.model.w[s][d] < 0.06,
                    "w[{s}][{d}] = {} should be near zero",
                    fit.model.w[s][d]
                );
            }
        }
        assert!((fit.model.mu[0] - 1.0).abs() < 0.15);
        assert!((fit.model.mu[1] - 0.5).abs() < 0.1);
    }

    #[test]
    fn single_event_stream_fits_background_only() {
        let cfg = EmConfig::default();
        let fit = fit_em(&[Event::new(5.0, 0)], 1, 10.0, &cfg).unwrap();
        assert!(fit.model.mu[0] > 0.0);
        // One event, no possible parent: weight must stay ~0 and the
        // background absorbs the event.
        assert!(fit.model.mu[0] <= 0.2);
        assert!(fit.model.w[0][0] < 0.05);
    }

    #[test]
    fn impulse_histogram_recovers_exponential_shape() {
        let truth = ground_truth(); // beta = 2.0
        let mut rng = seeded_rng(77);
        let events = strip_lineage(&simulate_branching(&truth, 2500.0, &mut rng));
        let hist = impulse_histogram(&truth, &events, 10, 2.0).unwrap();
        // Density at the origin approaches beta = 2 and decays
        // monotonically (allowing small sampling wiggle).
        assert!(hist[0] > 1.4, "origin density {}", hist[0]);
        assert!(hist[0] > 2.0 * hist[5], "no decay: {hist:?}");
        for w in hist.windows(2) {
            assert!(w[1] <= w[0] * 1.25 + 0.05, "non-monotone: {hist:?}");
        }
        // Roughly integrates to the in-window mass of Exp(2):
        // 1 - e^{-4} ~ 0.98.
        let integral: f64 = hist.iter().sum::<f64>() * 0.2;
        assert!((integral - 1.0).abs() < 0.1, "integral {integral}");
    }

    #[test]
    fn impulse_histogram_empty_without_parents() {
        let m = HawkesModel::new(vec![1.0], vec![vec![0.0]], 1.0).unwrap();
        let hist = impulse_histogram(&m, &[Event::new(1.0, 0)], 5, 1.0).unwrap();
        assert!(hist.iter().all(|&h| h == 0.0));
    }

    #[test]
    fn impulse_histogram_rejects_degenerate_binning() {
        let m = HawkesModel::new(vec![1.0], vec![vec![0.1]], 1.0).unwrap();
        let events = [Event::new(1.0, 0)];
        assert!(impulse_histogram(&m, &events, 0, 1.0).is_err());
        assert!(impulse_histogram(&m, &events, 5, 0.0).is_err());
        assert!(impulse_histogram(&m, &events, 5, -1.0).is_err());
        assert!(impulse_histogram(&m, &events, 5, f64::NAN).is_err());
        assert!(impulse_histogram(&m, &events, 5, f64::INFINITY).is_err());
    }

    #[test]
    fn empty_stream_is_typed_error() {
        assert!(matches!(
            fit_em(&[], 2, 10.0, &EmConfig::default()),
            Err(HawkesError::EmptyEvents)
        ));
    }

    #[test]
    fn converges_within_budget() {
        let truth = ground_truth();
        let mut rng = seeded_rng(10);
        let events = strip_lineage(&simulate_branching(&truth, 500.0, &mut rng));
        let cfg = EmConfig {
            beta: 2.0,
            max_iters: 500,
            tol: 1e-8,
            ..EmConfig::default()
        };
        let fit = fit_em(&events, 2, 500.0, &cfg).unwrap();
        assert!(
            fit.converged,
            "did not converge in {} iters",
            fit.iterations
        );
    }
}
