//! Property-based tests for the Hawkes machinery: simulation laws,
//! attribution conservation, and fitting stability over random stable
//! models.

use meme_hawkes::{
    fit_em, parent_probabilities, root_cause_matrix, root_causes, simulate_branching,
    strip_lineage, EmConfig, Event, HawkesModel,
};
use meme_stats::seeded_rng;
use proptest::prelude::*;

/// Random stationary models (spectral radius forced < 1 by row scaling).
fn stable_model_strategy() -> impl Strategy<Value = HawkesModel> {
    (2usize..5)
        .prop_flat_map(|k| {
            (
                prop::collection::vec(0.01f64..0.8, k),
                prop::collection::vec(prop::collection::vec(0.0f64..1.0, k), k),
                0.5f64..5.0,
            )
        })
        .prop_map(|(mu, mut w, beta)| {
            // Scale the weight matrix until subcritical.
            let k = mu.len();
            let col_max: f64 = (0..k)
                .map(|d| (0..k).map(|s| w[s][d]).sum::<f64>())
                .fold(0.0, f64::max)
                .max(1e-9);
            let target = 0.7;
            for row in &mut w {
                for x in row.iter_mut() {
                    *x *= target / col_max;
                }
            }
            HawkesModel::new(mu, w, beta).expect("constructed valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_models_are_stationary(m in stable_model_strategy()) {
        prop_assert!(m.spectral_radius() < 1.0);
        let rates = m.stationary_rates().unwrap();
        for (r, mu) in rates.iter().zip(&m.mu) {
            prop_assert!(*r >= *mu - 1e-12);
            prop_assert!(r.is_finite());
        }
    }

    #[test]
    fn simulation_respects_window(m in stable_model_strategy(), seed: u64) {
        let mut rng = seeded_rng(seed);
        let events = simulate_branching(&m, 50.0, &mut rng);
        for w in events.windows(2) {
            prop_assert!(w[0].t <= w[1].t);
        }
        for e in &events {
            prop_assert!((0.0..50.0).contains(&e.t));
            prop_assert!(e.process < m.k());
            if let Some(p) = e.parent {
                prop_assert!(events[p].t <= e.t);
            }
        }
    }

    #[test]
    fn parent_probabilities_sum_to_one(m in stable_model_strategy(), seed: u64) {
        let mut rng = seeded_rng(seed);
        let events = strip_lineage(&simulate_branching(&m, 30.0, &mut rng));
        for pd in parent_probabilities(&m, &events) {
            let total: f64 = pd.background + pd.parents.iter().map(|(_, p)| p).sum::<f64>();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(pd.background >= 0.0);
            prop_assert!(pd.parents.iter().all(|(_, p)| *p >= 0.0));
        }
    }

    #[test]
    fn root_cause_mass_is_conserved(m in stable_model_strategy(), seed: u64) {
        let mut rng = seeded_rng(seed);
        let events = strip_lineage(&simulate_branching(&m, 30.0, &mut rng));
        let roots = root_causes(&m, &events);
        for r in &roots {
            prop_assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        // Matrix totals equal event count.
        let matrix = root_cause_matrix(&m, &events);
        let total: f64 = matrix.iter().flatten().sum();
        prop_assert!((total - events.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn log_likelihood_is_finite_on_own_sample(m in stable_model_strategy(), seed: u64) {
        let mut rng = seeded_rng(seed);
        let events = strip_lineage(&simulate_branching(&m, 40.0, &mut rng));
        let ll = m.log_likelihood(&events, 40.0).unwrap();
        prop_assert!(ll.is_finite());
    }

    #[test]
    fn em_output_is_valid_model(m in stable_model_strategy(), seed: u64) {
        let mut rng = seeded_rng(seed);
        let events = strip_lineage(&simulate_branching(&m, 80.0, &mut rng));
        prop_assume!(!events.is_empty());
        let fit = fit_em(
            &events,
            m.k(),
            80.0,
            &EmConfig {
                beta: m.beta,
                max_iters: 15,
                ..EmConfig::default()
            },
        )
        .unwrap();
        prop_assert!(fit.model.mu.iter().all(|x| x.is_finite() && *x >= 0.0));
        prop_assert!(fit
            .model
            .w
            .iter()
            .flatten()
            .all(|x| x.is_finite() && *x >= 0.0));
        prop_assert!(fit.log_likelihood.is_finite());
        // The fitted model assigns its training data a likelihood at
        // least as good as a crude homogeneous-Poisson baseline.
        let k = m.k();
        let baseline = HawkesModel::new(
            (0..k)
                .map(|c| {
                    (events.iter().filter(|e| e.process == c).count() as f64 / 80.0)
                        .max(1e-6)
                })
                .collect(),
            vec![vec![0.0; k]; k],
            m.beta,
        )
        .unwrap();
        let ll_base = baseline.log_likelihood(&events, 80.0).unwrap();
        prop_assert!(fit.log_likelihood >= ll_base - 1e-6);
    }

    #[test]
    fn intensity_is_nonnegative_everywhere(m in stable_model_strategy(), seed: u64, t in 0.0f64..50.0) {
        let mut rng = seeded_rng(seed);
        let events = strip_lineage(&simulate_branching(&m, 50.0, &mut rng));
        for dst in 0..m.k() {
            let lam = m.intensity(&events, dst, t);
            prop_assert!(lam >= m.mu[dst] - 1e-12);
            prop_assert!(lam.is_finite());
        }
    }

    #[test]
    fn validate_events_accepts_simulated_streams(m in stable_model_strategy(), seed: u64) {
        let mut rng = seeded_rng(seed);
        let events = strip_lineage(&simulate_branching(&m, 25.0, &mut rng));
        prop_assert!(m.validate_events(&events, 25.0).is_ok());
    }

    #[test]
    fn empty_event_stream_handled(m in stable_model_strategy()) {
        let events: Vec<Event> = Vec::new();
        prop_assert!(m.validate_events(&events, 10.0).is_ok());
        prop_assert!(m.log_likelihood(&events, 10.0).unwrap().is_finite());
        prop_assert!(root_cause_matrix(&m, &events)
            .iter()
            .flatten()
            .all(|x| *x == 0.0));
    }
}
