//! Property-based tests: DBSCAN invariants over arbitrary graphs,
//! dendrogram laws, and medoid optimality.

#![allow(clippy::needless_range_loop)]

use meme_cluster::dbscan::dbscan;
use meme_cluster::hier::{condensed_index, Dendrogram, Linkage};
use meme_cluster::medoid::medoid_of;
use proptest::prelude::*;

/// Random symmetric adjacency (self-exclusive) on `n` nodes.
fn adjacency_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    (2usize..40).prop_flat_map(|n| {
        prop::collection::vec(prop::collection::vec(0usize..n, 0..5), n).prop_map(move |raw| {
            let mut adj = vec![std::collections::BTreeSet::new(); n];
            for (i, targets) in raw.iter().enumerate() {
                for &j in targets {
                    if i != j {
                        adj[i].insert(j);
                        adj[j].insert(i);
                    }
                }
            }
            adj.into_iter().map(|s| s.into_iter().collect()).collect()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dbscan_core_points_are_never_noise(adj in adjacency_strategy(), min_pts in 1usize..6) {
        let c = dbscan(&adj, min_pts);
        for (i, nbrs) in adj.iter().enumerate() {
            if nbrs.len() + 1 >= min_pts {
                prop_assert!(c.labels()[i].is_some(), "core point {i} is noise");
            }
        }
    }

    #[test]
    fn dbscan_noise_points_have_no_core_neighbor_with_their_label(adj in adjacency_strategy(), min_pts in 1usize..6) {
        let c = dbscan(&adj, min_pts);
        // A noise point must not be adjacent to any core point (else it
        // would be at least a border member of that core's cluster).
        for (i, nbrs) in adj.iter().enumerate() {
            if c.labels()[i].is_none() {
                for &j in nbrs {
                    prop_assert!(
                        adj[j].len() + 1 < min_pts,
                        "noise {i} adjacent to core {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn dbscan_clusters_are_connected_via_core_points(adj in adjacency_strategy(), min_pts in 1usize..6) {
        let c = dbscan(&adj, min_pts);
        // Every cluster contains at least one core point, and cluster
        // sizes sum with noise to n.
        let sizes = c.sizes();
        let total: usize = sizes.iter().sum();
        prop_assert_eq!(total + c.noise_count(), adj.len());
        for (id, members) in c.all_members().iter().enumerate() {
            prop_assert!(!members.is_empty(), "cluster {id} is empty");
            let has_core = members.iter().any(|&m| adj[m].len() + 1 >= min_pts);
            prop_assert!(has_core, "cluster {id} has no core point");
        }
    }

    #[test]
    fn medoid_minimizes_cost(n in 1usize..15, seed: u64) {
        // Random distance matrix; medoid must achieve the minimum sum
        // of squared distances.
        let mut rng = meme_stats::seeded_rng(seed);
        let mut d = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = rand::RngExt::random_range(&mut rng, 0.0..10.0);
                d[i][j] = v;
                d[j][i] = v;
            }
        }
        let members: Vec<usize> = (0..n).collect();
        let m = medoid_of(&members, |a, b| d[a][b]).unwrap();
        let cost = |i: usize| -> f64 { members.iter().map(|&j| d[i][j] * d[i][j]).sum() };
        for &i in &members {
            prop_assert!(cost(m) <= cost(i) + 1e-9);
        }
    }

    #[test]
    fn dendrogram_has_n_minus_one_merges(n in 1usize..25, seed: u64) {
        let mut rng = meme_stats::seeded_rng(seed);
        let condensed: Vec<f64> = (0..n * (n - 1) / 2)
            .map(|_| rand::RngExt::random_range(&mut rng, 0.0..1.0))
            .collect();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = Dendrogram::build(n, &condensed, linkage).unwrap();
            prop_assert_eq!(d.merges().len(), n.saturating_sub(1));
            // Final merge covers all leaves.
            if let Some(last) = d.merges().last() {
                prop_assert_eq!(last.size, n);
            }
        }
    }

    #[test]
    fn dendrogram_heights_monotone_for_monotone_linkages(n in 2usize..20, seed: u64) {
        let mut rng = meme_stats::seeded_rng(seed);
        let condensed: Vec<f64> = (0..n * (n - 1) / 2)
            .map(|_| rand::RngExt::random_range(&mut rng, 0.0..1.0))
            .collect();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = Dendrogram::build(n, &condensed, linkage).unwrap();
            let hs = d.heights();
            for w in hs.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-9, "{linkage:?}: {hs:?}");
            }
        }
    }

    #[test]
    fn dendrogram_cut_is_coarsening(n in 2usize..20, seed: u64, t1 in 0.0f64..1.0, dt in 0.0f64..1.0) {
        let mut rng = meme_stats::seeded_rng(seed);
        let condensed: Vec<f64> = (0..n * (n - 1) / 2)
            .map(|_| rand::RngExt::random_range(&mut rng, 0.0..1.0))
            .collect();
        let d = Dendrogram::build(n, &condensed, Linkage::Average).unwrap();
        let fine = d.cut(t1);
        let coarse = d.cut(t1 + dt);
        // Raising the threshold can only merge clusters: leaves sharing
        // a fine label must share a coarse one.
        for i in 0..n {
            for j in 0..n {
                if fine[i] == fine[j] {
                    prop_assert_eq!(coarse[i], coarse[j]);
                }
            }
        }
    }

    #[test]
    fn condensed_index_is_a_bijection(n in 2usize..30) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let idx = condensed_index(n, i, j);
                prop_assert!(idx < n * (n - 1) / 2);
                prop_assert!(seen.insert(idx), "duplicate index {idx}");
            }
        }
        prop_assert_eq!(seen.len(), n * (n - 1) / 2);
    }
}
