//! Agglomerative hierarchical clustering.
//!
//! §4.1.2 builds a dendrogram of meme clusters under the custom distance
//! metric (Fig. 6: 525 frog clusters grouped into four large families)
//! and cuts it at a threshold to find families. This module implements
//! agglomerative clustering with the Lance–Williams update for the
//! standard linkages; the paper's figure uses average linkage.

use serde::{Deserialize, Serialize};

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance between members.
    Single,
    /// Maximum pairwise distance between members.
    Complete,
    /// Unweighted average pairwise distance (UPGMA) — the paper's choice.
    Average,
}

/// One merge step: clusters `a` and `b` (node ids) merge at `height`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged node (leaf ids are `0..n`, internal ids `n..`).
    pub a: usize,
    /// Second merged node.
    pub b: usize,
    /// Cophenetic distance at which the merge happens.
    pub height: f64,
    /// Number of leaves under the new node.
    pub size: usize,
}

/// A full agglomerative clustering of `n` leaves: `n - 1` merges,
/// non-decreasing in height for the monotone linkages implemented here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cluster `n` items given their condensed pairwise distance matrix
    /// (`dist(i, j)` for `i < j` at the standard condensed offset) —
    /// use [`condensed_index`] to build it. Returns `None` when `n == 0`
    /// or the matrix length is not `n (n - 1) / 2`.
    pub fn build(n: usize, condensed: &[f64], linkage: Linkage) -> Option<Self> {
        if n == 0 || condensed.len() != n * (n - 1) / 2 {
            return None;
        }
        if condensed.iter().any(|d| d.is_nan()) {
            return None;
        }
        // Active cluster bookkeeping: each active cluster has a node id,
        // a leaf count, and a row of distances to every other active
        // cluster (full symmetric matrix for simplicity; n here is the
        // number of *clusters*, which stays modest in our workloads).
        let mut dist = vec![f64::INFINITY; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                // lint:allow(panic-reachable): the loop bounds enforce i < j < n, condensed_index's documented precondition
                let d = condensed[condensed_index(n, i, j)];
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        let mut node_id: Vec<usize> = (0..n).collect();
        let mut size: Vec<usize> = vec![1; n];
        let mut active: Vec<bool> = vec![true; n];
        let mut merges = Vec::with_capacity(n.saturating_sub(1));
        let mut next_id = n;

        for _ in 0..n.saturating_sub(1) {
            // Find the closest active pair.
            let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                for j in (i + 1)..n {
                    if active[j] && dist[i * n + j] < best.2 {
                        best = (i, j, dist[i * n + j]);
                    }
                }
            }
            let (i, j, h) = best;
            debug_assert!(i != usize::MAX, "pair search must find a pair");
            merges.push(Merge {
                a: node_id[i],
                b: node_id[j],
                height: h,
                size: size[i] + size[j],
            });
            // Lance–Williams update into slot i; deactivate j.
            for k in 0..n {
                if !active[k] || k == i || k == j {
                    continue;
                }
                let dik = dist[i * n + k];
                let djk = dist[j * n + k];
                let new = match linkage {
                    Linkage::Single => dik.min(djk),
                    Linkage::Complete => dik.max(djk),
                    Linkage::Average => {
                        let (si, sj) = (size[i] as f64, size[j] as f64);
                        (si * dik + sj * djk) / (si + sj)
                    }
                };
                dist[i * n + k] = new;
                dist[k * n + i] = new;
            }
            active[j] = false;
            size[i] += size[j];
            node_id[i] = next_id;
            next_id += 1;
        }
        Some(Self {
            n_leaves: n,
            merges,
        })
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge sequence (in merge order).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cut the tree at `threshold`: merges with `height <= threshold`
    /// are applied, yielding a flat cluster label per leaf (labels are
    /// densely renumbered in first-leaf order).
    pub fn cut(&self, threshold: f64) -> Vec<usize> {
        // Union-find over leaves.
        let mut parent: Vec<usize> = (0..self.n_leaves).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        // Map node id -> representative leaf.
        let mut rep: Vec<usize> = (0..self.n_leaves).collect();
        for m in self.merges.iter() {
            let ra = rep[m.a];
            let rb = rep[m.b];
            rep.push(ra);
            if m.height <= threshold {
                let (ra, rb) = (find(&mut parent, ra), find(&mut parent, rb));
                parent[ra.max(rb)] = ra.min(rb);
            }
        }
        // Dense renumbering.
        let mut labels = vec![usize::MAX; self.n_leaves];
        let mut next = 0usize;
        for leaf in 0..self.n_leaves {
            let root = find(&mut parent, leaf);
            if labels[root] == usize::MAX {
                labels[root] = next;
                next += 1;
            }
            labels[leaf] = labels[root];
        }
        labels
    }

    /// Heights of all merges, in merge order.
    pub fn heights(&self) -> Vec<f64> {
        self.merges.iter().map(|m| m.height).collect()
    }
}

/// Offset of pair `(i, j)`, `i < j`, in a condensed distance matrix of
/// `n` items (SciPy's `pdist` layout).
///
/// # Panics
/// Panics when `i >= j` or `j >= n`.
pub fn condensed_index(n: usize, i: usize, j: usize) -> usize {
    assert!(i < j && j < n, "need i < j < n");
    n * i - i * (i + 1) / 2 + (j - i - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distances for 4 points on a line at 0, 1, 10, 11.
    fn line_condensed() -> (usize, Vec<f64>) {
        let pos: [f64; 4] = [0.0, 1.0, 10.0, 11.0];
        let n = pos.len();
        let mut c = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                c.push((pos[i] - pos[j]).abs());
            }
        }
        (n, c)
    }

    #[test]
    fn condensed_index_layout() {
        // n=4: pairs in order (0,1)(0,2)(0,3)(1,2)(1,3)(2,3).
        assert_eq!(condensed_index(4, 0, 1), 0);
        assert_eq!(condensed_index(4, 0, 3), 2);
        assert_eq!(condensed_index(4, 1, 2), 3);
        assert_eq!(condensed_index(4, 2, 3), 5);
    }

    #[test]
    #[should_panic(expected = "i < j")]
    fn condensed_index_rejects_diagonal() {
        let _ = condensed_index(4, 2, 2);
    }

    #[test]
    fn build_validates_input() {
        assert!(Dendrogram::build(0, &[], Linkage::Average).is_none());
        assert!(Dendrogram::build(3, &[1.0], Linkage::Average).is_none());
        assert!(Dendrogram::build(2, &[f64::NAN], Linkage::Average).is_none());
    }

    #[test]
    fn single_leaf_has_no_merges() {
        let d = Dendrogram::build(1, &[], Linkage::Average).unwrap();
        assert_eq!(d.merges().len(), 0);
        assert_eq!(d.cut(0.0), vec![0]);
    }

    #[test]
    fn two_pairs_merge_before_bridging() {
        let (n, c) = line_condensed();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = Dendrogram::build(n, &c, linkage).unwrap();
            assert_eq!(d.merges().len(), 3);
            // First two merges join {0,1} and {10,11} at height 1.
            assert_eq!(d.merges()[0].height, 1.0);
            assert_eq!(d.merges()[1].height, 1.0);
            assert!(d.merges()[2].height > 5.0);
            // Cut between: two flat clusters.
            let labels = d.cut(2.0);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[2], labels[3]);
            assert_ne!(labels[0], labels[2]);
            // Cut above everything: one cluster.
            assert!(d.cut(100.0).iter().all(|&l| l == 0));
            // Cut below everything: all singletons.
            let singles = d.cut(0.5);
            assert_eq!(singles, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn linkage_heights_ordering() {
        let (n, c) = line_condensed();
        let s = Dendrogram::build(n, &c, Linkage::Single).unwrap();
        let a = Dendrogram::build(n, &c, Linkage::Average).unwrap();
        let k = Dendrogram::build(n, &c, Linkage::Complete).unwrap();
        // Final merge: single = 9 (closest cross pair), complete = 11
        // (farthest), average in between.
        let hs = s.merges()[2].height;
        let ha = a.merges()[2].height;
        let hk = k.merges()[2].height;
        assert_eq!(hs, 9.0);
        assert_eq!(hk, 11.0);
        assert!(hs < ha && ha < hk);
    }

    #[test]
    fn heights_are_monotone_for_average_linkage() {
        // Random-ish symmetric distances.
        let n = 8;
        let mut c = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                c.push(((i * 7 + j * 13) % 23) as f64 + 1.0);
            }
        }
        let d = Dendrogram::build(n, &c, Linkage::Average).unwrap();
        let hs = d.heights();
        for w in hs.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "average linkage must be monotone: {hs:?}"
            );
        }
    }

    #[test]
    fn cut_labels_are_dense_and_stable() {
        let (n, c) = line_condensed();
        let d = Dendrogram::build(n, &c, Linkage::Average).unwrap();
        let labels = d.cut(2.0);
        // Dense from 0, first-leaf order.
        assert_eq!(labels[0], 0);
        assert_eq!(labels[2], 1);
    }
}
