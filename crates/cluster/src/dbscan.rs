//! DBSCAN over precomputed neighbourhoods.
//!
//! The expensive part of DBSCAN on 64-bit perceptual hashes is the radius
//! query, which `meme-index` already solves; this module implements the
//! label-propagation half. Separating the two lets the pipeline reuse one
//! adjacency computation across parameter sweeps (Appendix A, Table 8)
//! and keeps this code independent of the index engine.

use crate::medoid::medoid_of_hashes;
use meme_index::{all_neighbors, HammingIndex};
use meme_phash::PHash;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Invalid input to a clustering routine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// `min_pts == 0` — every point would be a core point of nothing.
    InvalidMinPts,
    /// An adjacency list referenced an item outside the point set.
    InvalidNeighbor {
        /// The item whose list is broken.
        item: usize,
        /// The out-of-range neighbour index.
        neighbor: usize,
        /// Number of items in the point set.
        len: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidMinPts => write!(f, "min_pts must be at least 1"),
            Self::InvalidNeighbor {
                item,
                neighbor,
                len,
            } => write!(
                f,
                "item {item} lists neighbour {neighbor}, but there are only {len} items"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// DBSCAN parameters. The paper's production setting is
/// `eps = 8, min_pts = 5`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbscanParams {
    /// Radius of the Hamming eps-neighbourhood.
    pub eps: u32,
    /// Minimum neighbourhood size (including the point itself) for a
    /// point to be a core point. DBSCAN noise in the paper's words:
    /// "there are less than 5 images with perceptual distance ≤ 8 from
    /// that particular instance".
    pub min_pts: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        Self { eps: 8, min_pts: 5 }
    }
}

/// The result of a clustering run: a cluster label per item (`None` =
/// noise) and derived statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    labels: Vec<Option<usize>>,
    n_clusters: usize,
}

impl Clustering {
    /// Per-item labels; `None` marks noise.
    pub fn labels(&self) -> &[Option<usize>] {
        &self.labels
    }

    /// Number of clusters found.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of noise items.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }

    /// Fraction of items labeled noise (Table 2 reports 63%–69%).
    pub fn noise_fraction(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.noise_count() as f64 / self.labels.len() as f64
    }

    /// Item indices of one cluster.
    pub fn members(&self, cluster: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == Some(cluster))
            .map(|(i, _)| i)
            .collect()
    }

    /// All clusters as member lists, indexed by cluster id.
    pub fn all_members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_clusters];
        for (i, l) in self.labels.iter().enumerate() {
            if let Some(c) = l {
                out[*c].push(i);
            }
        }
        out
    }

    /// Cluster sizes indexed by cluster id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.n_clusters];
        for l in self.labels.iter().flatten() {
            out[*l] += 1;
        }
        out
    }

    /// Medoid item index of each cluster, given the item hashes
    /// (Step 5's cluster representative).
    pub fn medoids(&self, hashes: &[PHash]) -> Vec<usize> {
        self.all_members()
            .iter()
            .map(|members| medoid_of_hashes(hashes, members).expect("clusters are non-empty"))
            .collect()
    }
}

/// Run DBSCAN given each item's (self-exclusive) radius neighbourhood.
///
/// Deterministic: clusters are numbered by the order their first core
/// point appears. Border points are assigned to the first cluster that
/// reaches them (the standard tie-break).
///
/// # Panics
/// Panics when `min_pts == 0`; [`try_dbscan`] returns a typed error
/// instead.
pub fn dbscan(neighbors: &[Vec<usize>], min_pts: usize) -> Clustering {
    match try_dbscan(neighbors, min_pts) {
        Ok(c) => c,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible DBSCAN: validates `min_pts` and the adjacency lists before
/// propagating labels, so malformed input surfaces as a
/// [`ClusterError`] rather than a panic mid-flood-fill.
pub fn try_dbscan(neighbors: &[Vec<usize>], min_pts: usize) -> Result<Clustering, ClusterError> {
    if min_pts == 0 {
        return Err(ClusterError::InvalidMinPts);
    }
    let n = neighbors.len();
    for (item, nb) in neighbors.iter().enumerate() {
        if let Some(&neighbor) = nb.iter().find(|&&j| j >= n) {
            return Err(ClusterError::InvalidNeighbor {
                item,
                neighbor,
                len: n,
            });
        }
    }
    // +1: the neighbourhood includes the point itself in DBSCAN's
    // definition; our adjacency lists exclude it.
    let is_core: Vec<bool> = neighbors.iter().map(|nb| nb.len() + 1 >= min_pts).collect();

    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut n_clusters = 0usize;
    let mut queue = VecDeque::new();

    for start in 0..n {
        if visited[start] || !is_core[start] {
            continue;
        }
        let cluster = n_clusters;
        n_clusters += 1;
        queue.push_back(start);
        visited[start] = true;
        labels[start] = Some(cluster);
        while let Some(p) = queue.pop_front() {
            for &q in &neighbors[p] {
                if labels[q].is_none() {
                    labels[q] = Some(cluster);
                }
                if !visited[q] && is_core[q] {
                    visited[q] = true;
                    queue.push_back(q);
                }
            }
        }
    }
    Ok(Clustering { labels, n_clusters })
}

/// Convenience: compute neighbourhoods from a Hamming index and run
/// DBSCAN in one call, parallelizing the pairwise stage over `threads`
/// workers (0 = all cores).
pub fn dbscan_with_index<I: HammingIndex + Sync>(
    index: &I,
    params: DbscanParams,
    threads: usize,
) -> Clustering {
    let neighbors = all_neighbors(index, params.eps, threads);
    dbscan(&neighbors, params.min_pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_index::BruteForceIndex;
    use meme_stats::seeded_rng;
    use rand::RngExt;

    /// Build self-exclusive adjacency from an explicit edge list.
    fn adjacency(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    #[test]
    fn empty_input() {
        let c = dbscan(&[], 5);
        assert!(c.is_empty());
        assert_eq!(c.n_clusters(), 0);
        assert_eq!(c.noise_fraction(), 0.0);
    }

    #[test]
    fn all_noise_when_sparse() {
        // 4 isolated points, min_pts 2 -> all noise.
        let c = dbscan(&adjacency(4, &[]), 2);
        assert_eq!(c.n_clusters(), 0);
        assert_eq!(c.noise_count(), 4);
        assert_eq!(c.noise_fraction(), 1.0);
    }

    #[test]
    fn min_pts_one_clusters_everything() {
        let c = dbscan(&adjacency(3, &[]), 1);
        assert_eq!(c.n_clusters(), 3);
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    fn two_separate_cliques() {
        // Clique {0,1,2} and clique {3,4,5}, min_pts = 3.
        let edges = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)];
        let c = dbscan(&adjacency(6, &edges), 3);
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.labels()[0], c.labels()[1]);
        assert_eq!(c.labels()[0], c.labels()[2]);
        assert_eq!(c.labels()[3], c.labels()[4]);
        assert_ne!(c.labels()[0], c.labels()[3]);
        assert_eq!(c.sizes(), vec![3, 3]);
    }

    #[test]
    fn border_point_joins_cluster_but_does_not_expand() {
        // Clique {0,1,2,3} with min_pts 4: all four are core. Point 4 is
        // attached to 3 only (2 points in its neighbourhood, not core) —
        // a border point. Point 5 hangs off the border point; since 4 is
        // not core, expansion stops and 5 stays noise.
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
        ];
        let c = dbscan(&adjacency(6, &edges), 4);
        assert_eq!(c.n_clusters(), 1);
        assert_eq!(c.labels()[4], Some(0)); // border
        assert_eq!(c.labels()[5], None); // noise beyond border
    }

    #[test]
    fn chain_of_core_points_forms_one_cluster() {
        // Path 0-1-2-3-4 with min_pts 2: every point is core
        // (>= 1 neighbour + self), density-connectivity chains them.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4)];
        let c = dbscan(&adjacency(5, &edges), 2);
        assert_eq!(c.n_clusters(), 1);
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    fn members_and_all_members_agree() {
        let edges = [(0, 1), (0, 2), (1, 2)];
        let c = dbscan(&adjacency(4, &edges), 3);
        assert_eq!(c.members(0), vec![0, 1, 2]);
        assert_eq!(c.all_members(), vec![vec![0, 1, 2]]);
        assert_eq!(c.labels()[3], None);
    }

    #[test]
    fn with_index_end_to_end() {
        // Two tight hash families + isolated noise.
        let mut rng = seeded_rng(8);
        let mut hashes = Vec::new();
        for _ in 0..2 {
            let center = PHash(rng.random());
            for k in 0..6u8 {
                hashes.push(center.with_flipped_bits(&[k % 3]));
            }
        }
        hashes.push(PHash(rng.random()));
        let idx = BruteForceIndex::new(hashes.clone());
        let c = dbscan_with_index(&idx, DbscanParams::default(), 1);
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.noise_count(), 1);
        let medoids = c.medoids(&hashes);
        assert_eq!(medoids.len(), 2);
        // Medoid of the first cluster is one of its members.
        assert!(c.members(0).contains(&medoids[0]));
    }

    #[test]
    fn deterministic_labeling() {
        let mut rng = seeded_rng(9);
        let hashes: Vec<PHash> = (0..100)
            .map(|_| PHash(rng.random::<u64>() & 0xFFFF))
            .collect();
        let idx = BruteForceIndex::new(hashes);
        let a = dbscan_with_index(&idx, DbscanParams { eps: 6, min_pts: 3 }, 1);
        let b = dbscan_with_index(&idx, DbscanParams { eps: 6, min_pts: 3 }, 4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "min_pts")]
    fn zero_min_pts_panics() {
        let _ = dbscan(&[], 0);
    }

    #[test]
    fn try_dbscan_reports_typed_errors() {
        assert_eq!(try_dbscan(&[], 0), Err(ClusterError::InvalidMinPts));
        let broken = vec![vec![1], vec![5]];
        assert_eq!(
            try_dbscan(&broken, 1),
            Err(ClusterError::InvalidNeighbor {
                item: 1,
                neighbor: 5,
                len: 2
            })
        );
        // Valid input matches the panicking entry point.
        let adj = adjacency(4, &[(0, 1), (1, 2)]);
        assert_eq!(try_dbscan(&adj, 2).unwrap(), dbscan(&adj, 2));
    }
}
