//! DBSCAN over precomputed neighbourhoods.
//!
//! The expensive part of DBSCAN on 64-bit perceptual hashes is the radius
//! query, which `meme-index` already solves; this module implements the
//! label-propagation half. Separating the two lets the pipeline reuse one
//! adjacency computation across parameter sweeps (Appendix A, Table 8)
//! and keeps this code independent of the index engine.

use crate::medoid::medoid_of_hashes;
use meme_index::{symmetric_neighbors, FallbackIndex, HammingIndex, HashGroups};
use meme_phash::PHash;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Invalid input to a clustering routine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// `min_pts == 0` — every point would be a core point of nothing.
    InvalidMinPts,
    /// An adjacency list referenced an item outside the point set.
    InvalidNeighbor {
        /// The item whose list is broken.
        item: usize,
        /// The out-of-range neighbour index.
        neighbor: usize,
        /// Number of items in the point set.
        len: usize,
    },
    /// A cluster id has no members — impossible for a [`Clustering`]
    /// produced by [`dbscan`], but reachable through deserialized
    /// (e.g. checkpointed) label vectors whose `n_clusters` overcounts.
    EmptyCluster {
        /// The memberless cluster id.
        cluster: usize,
    },
    /// An item carries a label outside `0..n_clusters` — again only
    /// reachable through deserialized label vectors.
    InvalidLabel {
        /// The mislabeled item.
        item: usize,
        /// Its out-of-range label.
        label: usize,
        /// The clustering's declared cluster count.
        n_clusters: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidMinPts => write!(f, "min_pts must be at least 1"),
            Self::InvalidNeighbor {
                item,
                neighbor,
                len,
            } => write!(
                f,
                "item {item} lists neighbour {neighbor}, but there are only {len} items"
            ),
            Self::EmptyCluster { cluster } => {
                write!(f, "cluster {cluster} has no members")
            }
            Self::InvalidLabel {
                item,
                label,
                n_clusters,
            } => write!(
                f,
                "item {item} is labeled {label}, but there are only {n_clusters} clusters"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// DBSCAN parameters. The paper's production setting is
/// `eps = 8, min_pts = 5`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbscanParams {
    /// Radius of the Hamming eps-neighbourhood.
    pub eps: u32,
    /// Minimum neighbourhood size (including the point itself) for a
    /// point to be a core point. DBSCAN noise in the paper's words:
    /// "there are less than 5 images with perceptual distance ≤ 8 from
    /// that particular instance".
    pub min_pts: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        Self { eps: 8, min_pts: 5 }
    }
}

/// The result of a clustering run: a cluster label per item (`None` =
/// noise) and derived statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    labels: Vec<Option<usize>>,
    n_clusters: usize,
}

impl Clustering {
    /// Per-item labels; `None` marks noise.
    pub fn labels(&self) -> &[Option<usize>] {
        &self.labels
    }

    /// Number of clusters found.
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of noise items.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }

    /// Fraction of items labeled noise (Table 2 reports 63%–69%).
    pub fn noise_fraction(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.noise_count() as f64 / self.labels.len() as f64
    }

    /// Item indices of one cluster.
    pub fn members(&self, cluster: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == Some(cluster))
            .map(|(i, _)| i)
            .collect()
    }

    /// All clusters as member lists, indexed by cluster id.
    pub fn all_members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_clusters];
        for (i, l) in self.labels.iter().enumerate() {
            if let Some(c) = l {
                out[*c].push(i);
            }
        }
        out
    }

    /// Cluster sizes indexed by cluster id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.n_clusters];
        for l in self.labels.iter().flatten() {
            out[*l] += 1;
        }
        out
    }

    /// Medoid item index of each cluster, given the item hashes
    /// (Step 5's cluster representative).
    ///
    /// # Panics
    /// Panics when a cluster id has no members (only possible for
    /// deserialized label vectors); [`Clustering::try_medoids`] returns
    /// a typed error instead.
    pub fn medoids(&self, hashes: &[PHash]) -> Vec<usize> {
        match self.try_medoids(hashes) {
            Ok(m) => m,
            // lint:allow(panic-in-pipeline): documented panicking convenience over try_medoids
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible medoid computation: one checked bucketing pass over the
    /// labels (no per-cluster rescans, no [`Clustering::all_members`]
    /// indexing), then one medoid per cluster. Label vectors [`dbscan`]
    /// never emits but a corrupt checkpoint can contain — out-of-range
    /// labels, memberless cluster ids — surface as typed
    /// [`ClusterError`]s instead of a panic.
    pub fn try_medoids(&self, hashes: &[PHash]) -> Result<Vec<usize>, ClusterError> {
        let mut members = vec![Vec::new(); self.n_clusters];
        for (item, l) in self.labels.iter().enumerate() {
            if let Some(label) = *l {
                match members.get_mut(label) {
                    Some(bucket) => bucket.push(item),
                    None => {
                        return Err(ClusterError::InvalidLabel {
                            item,
                            label,
                            n_clusters: self.n_clusters,
                        })
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(members.len());
        for (cluster, members) in members.iter().enumerate() {
            match medoid_of_hashes(hashes, members) {
                Some(m) => out.push(m),
                None => return Err(ClusterError::EmptyCluster { cluster }),
            }
        }
        Ok(out)
    }
}

/// Run DBSCAN given each item's (self-exclusive) radius neighbourhood.
///
/// Deterministic: clusters are numbered by the order their first core
/// point appears. Border points are assigned to the first cluster that
/// reaches them (the standard tie-break).
///
/// # Panics
/// Panics when `min_pts == 0`; [`try_dbscan`] returns a typed error
/// instead.
pub fn dbscan(neighbors: &[Vec<usize>], min_pts: usize) -> Clustering {
    match try_dbscan(neighbors, min_pts) {
        Ok(c) => c,
        // lint:allow(panic-in-pipeline): documented panicking convenience over try_dbscan
        Err(e) => panic!("{e}"),
    }
}

/// Fallible DBSCAN: validates `min_pts` and the adjacency lists before
/// propagating labels, so malformed input surfaces as a
/// [`ClusterError`] rather than a panic mid-flood-fill.
pub fn try_dbscan(neighbors: &[Vec<usize>], min_pts: usize) -> Result<Clustering, ClusterError> {
    if min_pts == 0 {
        return Err(ClusterError::InvalidMinPts);
    }
    let n = neighbors.len();
    for (item, nb) in neighbors.iter().enumerate() {
        if let Some(&neighbor) = nb.iter().find(|&&j| j >= n) {
            return Err(ClusterError::InvalidNeighbor {
                item,
                neighbor,
                len: n,
            });
        }
    }
    // +1: the neighbourhood includes the point itself in DBSCAN's
    // definition; our adjacency lists exclude it.
    let is_core: Vec<bool> = neighbors.iter().map(|nb| nb.len() + 1 >= min_pts).collect();

    let mut labels: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut n_clusters = 0usize;
    let mut queue = VecDeque::new();

    for start in 0..n {
        if visited[start] || !is_core[start] {
            continue;
        }
        let cluster = n_clusters;
        n_clusters += 1;
        queue.push_back(start);
        visited[start] = true;
        labels[start] = Some(cluster);
        while let Some(p) = queue.pop_front() {
            for &q in &neighbors[p] {
                if labels[q].is_none() {
                    labels[q] = Some(cluster);
                }
                if !visited[q] && is_core[q] {
                    visited[q] = true;
                    queue.push_back(q);
                }
            }
        }
    }
    Ok(Clustering { labels, n_clusters })
}

/// Convenience: compute neighbourhoods from a Hamming index and run
/// DBSCAN in one call, parallelizing the pairwise stage over `threads`
/// workers (0 = all cores).
///
/// # Panics
/// Panics on malformed parameters (`min_pts == 0`);
/// [`try_dbscan_with_index`] returns a typed error instead.
pub fn dbscan_with_index<I: HammingIndex + Sync>(
    index: &I,
    params: DbscanParams,
    threads: usize,
) -> Clustering {
    match try_dbscan_with_index(index, params, threads) {
        Ok(c) => c,
        // lint:allow(panic-in-pipeline): documented panicking convenience over try_dbscan_with_index
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`dbscan_with_index`], routed through the duplicate-collapsed
/// pair sweep: the item hashes are collapsed with [`HashGroups`], a fresh
/// index is built over the distinct hashes only, and the item adjacency is
/// recovered through the owner lists by [`symmetric_neighbors`] — the same
/// path the pipeline's cluster stage takes. Labels are byte-identical to
/// the legacy per-item `all_neighbors` sweep for every thread count;
/// malformed parameters surface as a [`ClusterError`] instead of a panic.
pub fn try_dbscan_with_index<I: HammingIndex + Sync>(
    index: &I,
    params: DbscanParams,
    threads: usize,
) -> Result<Clustering, ClusterError> {
    if params.min_pts == 0 {
        return Err(ClusterError::InvalidMinPts);
    }
    let hashes: Vec<PHash> = (0..index.len()).map(|i| index.hash_at(i)).collect();
    let groups = HashGroups::new(&hashes);
    let collapsed = FallbackIndex::build(groups.unique().to_vec(), params.eps);
    let (neighbors, _) = symmetric_neighbors(&collapsed, &groups, params.eps, threads);
    try_dbscan(&neighbors, params.min_pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_index::BruteForceIndex;
    use meme_stats::seeded_rng;
    use rand::RngExt;

    /// Build self-exclusive adjacency from an explicit edge list.
    fn adjacency(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    #[test]
    fn empty_input() {
        let c = dbscan(&[], 5);
        assert!(c.is_empty());
        assert_eq!(c.n_clusters(), 0);
        assert_eq!(c.noise_fraction(), 0.0);
    }

    #[test]
    fn all_noise_when_sparse() {
        // 4 isolated points, min_pts 2 -> all noise.
        let c = dbscan(&adjacency(4, &[]), 2);
        assert_eq!(c.n_clusters(), 0);
        assert_eq!(c.noise_count(), 4);
        assert_eq!(c.noise_fraction(), 1.0);
    }

    #[test]
    fn min_pts_one_clusters_everything() {
        let c = dbscan(&adjacency(3, &[]), 1);
        assert_eq!(c.n_clusters(), 3);
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    fn two_separate_cliques() {
        // Clique {0,1,2} and clique {3,4,5}, min_pts = 3.
        let edges = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)];
        let c = dbscan(&adjacency(6, &edges), 3);
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.labels()[0], c.labels()[1]);
        assert_eq!(c.labels()[0], c.labels()[2]);
        assert_eq!(c.labels()[3], c.labels()[4]);
        assert_ne!(c.labels()[0], c.labels()[3]);
        assert_eq!(c.sizes(), vec![3, 3]);
    }

    #[test]
    fn border_point_joins_cluster_but_does_not_expand() {
        // Clique {0,1,2,3} with min_pts 4: all four are core. Point 4 is
        // attached to 3 only (2 points in its neighbourhood, not core) —
        // a border point. Point 5 hangs off the border point; since 4 is
        // not core, expansion stops and 5 stays noise.
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
        ];
        let c = dbscan(&adjacency(6, &edges), 4);
        assert_eq!(c.n_clusters(), 1);
        assert_eq!(c.labels()[4], Some(0)); // border
        assert_eq!(c.labels()[5], None); // noise beyond border
    }

    #[test]
    fn chain_of_core_points_forms_one_cluster() {
        // Path 0-1-2-3-4 with min_pts 2: every point is core
        // (>= 1 neighbour + self), density-connectivity chains them.
        let edges = [(0, 1), (1, 2), (2, 3), (3, 4)];
        let c = dbscan(&adjacency(5, &edges), 2);
        assert_eq!(c.n_clusters(), 1);
        assert_eq!(c.noise_count(), 0);
    }

    #[test]
    fn members_and_all_members_agree() {
        let edges = [(0, 1), (0, 2), (1, 2)];
        let c = dbscan(&adjacency(4, &edges), 3);
        assert_eq!(c.members(0), vec![0, 1, 2]);
        assert_eq!(c.all_members(), vec![vec![0, 1, 2]]);
        assert_eq!(c.labels()[3], None);
    }

    #[test]
    fn with_index_end_to_end() {
        // Two tight hash families + isolated noise.
        let mut rng = seeded_rng(8);
        let mut hashes = Vec::new();
        for _ in 0..2 {
            let center = PHash(rng.random());
            for k in 0..6u8 {
                hashes.push(center.with_flipped_bits(&[k % 3]));
            }
        }
        hashes.push(PHash(rng.random()));
        let idx = BruteForceIndex::new(hashes.clone());
        let c = dbscan_with_index(&idx, DbscanParams::default(), 1);
        assert_eq!(c.n_clusters(), 2);
        assert_eq!(c.noise_count(), 1);
        let medoids = c.medoids(&hashes);
        assert_eq!(medoids.len(), 2);
        // Medoid of the first cluster is one of its members.
        assert!(c.members(0).contains(&medoids[0]));
    }

    #[test]
    fn deterministic_labeling() {
        let mut rng = seeded_rng(9);
        let hashes: Vec<PHash> = (0..100)
            .map(|_| PHash(rng.random::<u64>() & 0xFFFF))
            .collect();
        let idx = BruteForceIndex::new(hashes);
        let a = dbscan_with_index(&idx, DbscanParams { eps: 6, min_pts: 3 }, 1);
        let b = dbscan_with_index(&idx, DbscanParams { eps: 6, min_pts: 3 }, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn try_medoids_matches_medoids_on_valid_clusterings() {
        let edges = [(0, 1), (0, 2), (1, 2), (4, 5), (4, 6), (5, 6)];
        let c = dbscan(&adjacency(7, &edges), 3);
        let hashes: Vec<PHash> = (0..7).map(|i| PHash(1u64 << i)).collect();
        assert_eq!(c.try_medoids(&hashes).unwrap(), c.medoids(&hashes));
    }

    #[test]
    fn try_medoids_reports_corrupt_label_vectors() {
        // Simulate a corrupt checkpoint: serde can produce Clusterings
        // dbscan never would.
        let empty_cluster: Clustering =
            serde_json::from_str(r#"{"labels":[0,0,null],"n_clusters":2}"#).unwrap();
        let hashes = vec![PHash(1), PHash(2), PHash(3)];
        assert_eq!(
            empty_cluster.try_medoids(&hashes),
            Err(ClusterError::EmptyCluster { cluster: 1 })
        );

        let bad_label: Clustering =
            serde_json::from_str(r#"{"labels":[0,7],"n_clusters":1}"#).unwrap();
        assert_eq!(
            bad_label.try_medoids(&hashes),
            Err(ClusterError::InvalidLabel {
                item: 1,
                label: 7,
                n_clusters: 1
            })
        );
    }

    #[test]
    #[should_panic(expected = "min_pts")]
    fn zero_min_pts_panics() {
        let _ = dbscan(&[], 0);
    }

    #[test]
    fn collapsed_sweep_matches_legacy_all_neighbors_path() {
        // The duplicate-collapsed pair sweep must be a pure optimization:
        // labels byte-identical to the legacy per-item `all_neighbors`
        // adjacency for every thread count, on a workload heavy with
        // verbatim duplicates (reposts — exactly what collapsing exists
        // for).
        let mut rng = seeded_rng(11);
        let mut hashes = Vec::new();
        for _ in 0..8 {
            let center = PHash(rng.random());
            for k in 0..10u8 {
                // Half the family are exact duplicates of the center.
                hashes.push(center.with_flipped_bits(&[k % 5, k % 3]));
                hashes.push(center);
            }
        }
        for _ in 0..20 {
            hashes.push(PHash(rng.random()));
        }
        let idx = BruteForceIndex::new(hashes.clone());
        for params in [DbscanParams::default(), DbscanParams { eps: 4, min_pts: 3 }] {
            let legacy = try_dbscan(
                &meme_index::all_neighbors(&idx, params.eps, 1),
                params.min_pts,
            )
            .unwrap();
            for threads in [1, 2, 8] {
                let collapsed = try_dbscan_with_index(&idx, params, threads).unwrap();
                assert_eq!(
                    legacy, collapsed,
                    "eps {} min_pts {} threads {threads}",
                    params.eps, params.min_pts
                );
            }
        }
    }

    #[test]
    fn try_dbscan_with_index_reports_typed_errors() {
        let idx = BruteForceIndex::new(vec![PHash(1), PHash(2)]);
        assert_eq!(
            try_dbscan_with_index(&idx, DbscanParams { eps: 8, min_pts: 0 }, 1),
            Err(ClusterError::InvalidMinPts)
        );
    }

    #[test]
    fn try_dbscan_reports_typed_errors() {
        assert_eq!(try_dbscan(&[], 0), Err(ClusterError::InvalidMinPts));
        let broken = vec![vec![1], vec![5]];
        assert_eq!(
            try_dbscan(&broken, 1),
            Err(ClusterError::InvalidNeighbor {
                item: 1,
                neighbor: 5,
                len: 2
            })
        );
        // Valid input matches the panicking entry point.
        let adj = adjacency(4, &[(0, 1), (1, 2)]);
        assert_eq!(try_dbscan(&adj, 2).unwrap(), dbscan(&adj, 2));
    }
}
