//! Medoid selection.
//!
//! "Clustering annotation uses the medoid of each cluster, i.e., the
//! element with the minimum square average distance from all images in
//! the cluster. In other words, the medoid is the image that best
//! represents the cluster." (§2.2, Step 5)

use meme_phash::PHash;

/// Index (into `members`' referenced universe) of the medoid of
/// `members` under an arbitrary distance function: the member minimizing
/// the sum of squared distances to all other members. Ties break toward
/// the lower item index, making the choice deterministic.
///
/// Returns `None` when `members` is empty.
pub fn medoid_of<F: Fn(usize, usize) -> f64>(members: &[usize], distance: F) -> Option<usize> {
    if members.is_empty() {
        return None;
    }
    let mut best: Option<(usize, f64)> = None;
    for &i in members {
        let cost: f64 = members
            .iter()
            .map(|&j| {
                let d = distance(i, j);
                d * d
            })
            .sum();
        let better = match best {
            None => true,
            Some((bi, bc)) => cost < bc || (cost == bc && i < bi),
        };
        if better {
            best = Some((i, cost));
        }
    }
    best.map(|(i, _)| i)
}

/// Medoid of a cluster of perceptual hashes: `members` are indices into
/// `hashes`.
pub fn medoid_of_hashes(hashes: &[PHash], members: &[usize]) -> Option<usize> {
    medoid_of(members, |i, j| hashes[i].distance(hashes[j]) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cluster_has_no_medoid() {
        assert_eq!(medoid_of_hashes(&[], &[]), None);
    }

    #[test]
    fn singleton_is_its_own_medoid() {
        let hashes = vec![PHash(7)];
        assert_eq!(medoid_of_hashes(&hashes, &[0]), Some(0));
    }

    #[test]
    fn central_point_wins() {
        // 0 and 2 are far apart; 1 sits between them.
        let base = PHash(0);
        let hashes = vec![
            base,
            base.with_flipped_bits(&[0, 1, 2, 3]),
            base.with_flipped_bits(&[0, 1, 2, 3, 4, 5, 6, 7]),
        ];
        assert_eq!(medoid_of_hashes(&hashes, &[0, 1, 2]), Some(1));
    }

    #[test]
    fn tie_breaks_to_lower_index() {
        let hashes = vec![PHash(0), PHash(0)];
        assert_eq!(medoid_of_hashes(&hashes, &[0, 1]), Some(0));
        assert_eq!(medoid_of_hashes(&hashes, &[1, 0]), Some(0));
    }

    #[test]
    fn squared_distance_matters() {
        // Member A: distances {0, 3, 3} -> sum sq = 18.
        // Member B: distances {3, 0, 4} -> sum sq = 25.
        // Member C: distances {3, 4, 0} -> sum sq = 25.
        // With plain sums A (6) also wins; craft a case where they
        // disagree: A {0,1,5} sumsq 26 sum 6; B {1,0,4} sumsq 17 sum 5.
        // Use explicit distance closure for precision.
        let d = |i: usize, j: usize| -> f64 {
            let m = [[0.0, 1.0, 5.0], [1.0, 0.0, 4.0], [5.0, 4.0, 0.0]];
            m[i][j]
        };
        assert_eq!(medoid_of(&[0, 1, 2], d), Some(1));
    }

    #[test]
    fn medoid_is_always_a_member() {
        let hashes: Vec<PHash> = (0..10).map(|i| PHash(i * 37)).collect();
        let members = vec![2, 5, 7];
        let m = medoid_of_hashes(&hashes, &members).unwrap();
        assert!(members.contains(&m));
    }
}
