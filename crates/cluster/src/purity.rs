//! Ground-truth cluster-quality audits.
//!
//! Appendix A of the paper manually audits 200 random clusters for false
//! positives at DBSCAN distances 6, 8 and 10 (Fig. 17) and finds overall
//! true-positive mass of 99.4% at distance 8. The simulator knows every
//! image's true variant, so the reproduction replaces the manual audit
//! with exact computation over *all* clusters.

use crate::dbscan::Clustering;
use std::collections::HashMap;
use std::hash::Hash;

/// Per-cluster false-positive fraction: for each cluster, the fraction
/// of members whose ground truth differs from the cluster's majority
/// ground truth. `truth[i] = None` marks items with no meme identity
/// (one-off images); they count as false positives inside any cluster.
///
/// Returns one fraction per cluster, ordered by cluster id. These are
/// the samples behind the Fig. 17 CDFs.
pub fn cluster_false_positive_fractions<T: Eq + Hash + Clone>(
    clustering: &Clustering,
    truth: &[Option<T>],
) -> Vec<f64> {
    assert_eq!(
        clustering.len(),
        truth.len(),
        "truth must cover every clustered item"
    );
    clustering
        .all_members()
        .iter()
        .map(|members| {
            let mut counts: HashMap<&T, usize> = HashMap::new();
            for &i in members {
                if let Some(t) = &truth[i] {
                    *counts.entry(t).or_insert(0) += 1;
                }
            }
            let majority = counts.values().max().copied().unwrap_or(0);
            1.0 - majority as f64 / members.len() as f64
        })
        .collect()
}

/// Overall majority purity: the fraction of clustered (non-noise) items
/// matching their cluster's majority truth. The paper's distance-8 audit
/// corresponds to a purity of ~0.994.
pub fn majority_purity<T: Eq + Hash + Clone>(clustering: &Clustering, truth: &[Option<T>]) -> f64 {
    let fps = cluster_false_positive_fractions(clustering, truth);
    let sizes = clustering.sizes();
    let clustered: usize = sizes.iter().sum();
    if clustered == 0 {
        return 1.0;
    }
    let fp_items: f64 = fps.iter().zip(&sizes).map(|(f, s)| f * *s as f64).sum();
    1.0 - fp_items / clustered as f64
}

/// Fraction of items with a true meme identity that end up in some
/// cluster (recall of the clustering step). Items with `truth = None`
/// are excluded from the denominator.
pub fn identity_recall<T>(clustering: &Clustering, truth: &[Option<T>]) -> f64 {
    assert_eq!(clustering.len(), truth.len());
    let mut with_truth = 0usize;
    let mut clustered = 0usize;
    for (label, t) in clustering.labels().iter().zip(truth) {
        if t.is_some() {
            with_truth += 1;
            if label.is_some() {
                clustered += 1;
            }
        }
    }
    if with_truth == 0 {
        1.0
    } else {
        clustered as f64 / with_truth as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::dbscan;

    fn adjacency(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    /// Two triangles -> two clusters; item 6 is noise.
    fn two_cluster_fixture() -> Clustering {
        let edges = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)];
        dbscan(&adjacency(7, &edges), 3)
    }

    #[test]
    fn pure_clusters_have_zero_fp() {
        let c = two_cluster_fixture();
        let truth: Vec<Option<u32>> =
            vec![Some(1), Some(1), Some(1), Some(2), Some(2), Some(2), None];
        let fps = cluster_false_positive_fractions(&c, &truth);
        assert_eq!(fps, vec![0.0, 0.0]);
        assert_eq!(majority_purity(&c, &truth), 1.0);
        assert_eq!(identity_recall(&c, &truth), 1.0);
    }

    #[test]
    fn contaminated_cluster_measured() {
        let c = two_cluster_fixture();
        // One member of cluster 0 actually belongs to meme 2.
        let truth: Vec<Option<u32>> =
            vec![Some(1), Some(1), Some(2), Some(2), Some(2), Some(2), None];
        let fps = cluster_false_positive_fractions(&c, &truth);
        assert!((fps[0] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(fps[1], 0.0);
        let purity = majority_purity(&c, &truth);
        assert!((purity - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn oneoff_images_count_as_false_positives() {
        let c = two_cluster_fixture();
        let truth: Vec<Option<u32>> = vec![Some(1), Some(1), None, Some(2), Some(2), Some(2), None];
        let fps = cluster_false_positive_fractions(&c, &truth);
        assert!((fps[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recall_counts_unclustered_truth() {
        let c = two_cluster_fixture();
        // Noise item 6 has a true identity that clustering missed.
        let truth: Vec<Option<u32>> = vec![
            Some(1),
            Some(1),
            Some(1),
            Some(2),
            Some(2),
            Some(2),
            Some(3),
        ];
        let r = identity_recall(&c, &truth);
        assert!((r - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_clustering_is_vacuously_pure() {
        let c = dbscan(&[], 5);
        let truth: Vec<Option<u32>> = vec![];
        assert_eq!(majority_purity(&c, &truth), 1.0);
        assert_eq!(identity_recall(&c, &truth), 1.0);
    }

    #[test]
    #[should_panic(expected = "truth must cover")]
    fn mismatched_truth_panics() {
        let c = two_cluster_fixture();
        let truth: Vec<Option<u32>> = vec![Some(1)];
        let _ = cluster_false_positive_fractions(&c, &truth);
    }
}
