//! Clustering — Step 3 of the paper's pipeline.
//!
//! "Images are clustered using a density-based algorithm. Our current
//! implementation uses DBSCAN, mainly because it can discover clusters of
//! arbitrary shape and performs well over large, noisy datasets" (§2.2).
//! The paper clusters fringe-community images at `eps = 8`, `minPts = 5`
//! (Appendix A), then represents each cluster by its **medoid** — "the
//! element with the minimum square average distance from all images in
//! the cluster".
//!
//! * [`mod@dbscan`] — DBSCAN over precomputed radius neighbourhoods (from
//!   `meme-index`), deterministic in input order;
//! * [`medoid`] — medoid selection over Hamming distances;
//! * [`hier`] — agglomerative average-linkage clustering producing the
//!   dendrograms of Fig. 6 and the threshold cuts used by the custom
//!   distance-metric analysis;
//! * [`purity`] — ground-truth cluster-quality audits (false-positive
//!   fractions, Fig. 17) that the paper did by hand over 200 sampled
//!   clusters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dbscan;
pub mod hier;
pub mod medoid;
pub mod purity;

pub use dbscan::{dbscan, dbscan_with_index, try_dbscan, ClusterError, Clustering, DbscanParams};
pub use hier::{Dendrogram, Linkage};
pub use medoid::{medoid_of, medoid_of_hashes};
pub use purity::{cluster_false_positive_fractions, majority_purity};
