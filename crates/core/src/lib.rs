//! The paper's primary contribution: a processing pipeline that detects
//! and tracks memes across Web communities.
//!
//! This crate wires the substrates into the seven steps of Fig. 2:
//!
//! 1. pHash extraction (`meme-phash` over lazily rendered images),
//! 2. pairwise distance calculation (`meme-index` multi-index hashing),
//! 3. DBSCAN clustering of fringe-community images (`meme-cluster`),
//! 4. screenshot removal from annotation galleries (`meme-annotate`'s
//!    CNN),
//! 5. cluster annotation against the KYM site,
//! 6. association of all communities' images to annotated clusters,
//! 7. analysis and influence estimation (`meme-hawkes`).
//!
//! plus the paper's §2.3 **custom distance metric** ([`metric`]), the
//! κ-threshold cluster graph of Fig. 7 ([`graph`]), the dendrograms of
//! Fig. 6 ([`dendro`]), the per-figure analysis functions
//! ([`analysis`]), and typed/printable reports ([`report`]).

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // community-matrix loops read clearer with explicit indices
#![warn(missing_docs)]

pub mod analysis;
pub mod dendro;
pub mod graph;
pub mod metric;
pub mod pipeline;
pub mod provenance;
pub mod quarantine;
pub mod report;
pub mod runner;
pub mod supervise;

pub use graph::{ClusterGraph, GraphConfig};
pub use metric::{ClusterDescriptor, ClusterDistance, MetricWeights};
pub use pipeline::{
    Degradation, Pipeline, PipelineConfig, PipelineError, PipelineOutput, ScreenshotFilterMode,
    StageError,
};
pub use quarantine::{
    encode_jsonl, parse_jsonl, read_quarantine, summarize, write_quarantine, QuarantineEntry,
    QuarantineError, QuarantineReason,
};
pub use runner::{
    crc32, dataset_fingerprint, decode_checkpoint, encode_checkpoint, fsck_bytes, fsck_file,
    persist_checkpoint, prev_checkpoint_path, Checkpoint, CheckpointDefect, CheckpointMedium,
    DiskMedium, FsckClass, FsckReport, MediumError, PipelineRunner, RunnerOutcome, StageId,
    StageState, CHECKPOINT_SCHEMA_VERSION,
};
pub use supervise::{
    ExecFaults, FaultyMedium, ItemFault, NoFaults, SpecFaults, StageFault, StagePolicy,
    StageRetries, SupervisedRun, SupervisedRunner, SupervisionReport,
};
