//! The cluster graph of Fig. 7 (§4.1.3).
//!
//! "We build a graph G = (V, E), where V are the medoids of annotated
//! clusters and E the connections between medoids with distance under a
//! threshold κ … we select κ = 0.45 … we filter out nodes and edges
//! that have a sum of in- and out-degree less than 10 … We observe a
//! large set of disconnected components, with each component containing
//! nodes of primarily one color" — i.e. components are pure in their
//! representative annotation. The layout (OpenOrd) is presentation-only;
//! this module reproduces the quantitative structure and exports
//! DOT/JSON for external rendering.

use crate::metric::{ClusterDescriptor, ClusterDistance};
use serde::{Deserialize, Serialize};

/// Graph construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Edge threshold κ (the paper uses 0.45).
    pub kappa: f64,
    /// Keep only nodes with degree ≥ this after edge construction
    /// (paper: 10; scaled datasets want smaller values).
    pub min_degree: usize,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            kappa: 0.45,
            min_degree: 10,
        }
    }
}

/// The κ-threshold cluster graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterGraph {
    /// Node ids = indices into the descriptor list the graph was built
    /// from; only surviving (degree-filtered) nodes are present.
    pub nodes: Vec<usize>,
    /// Node labels (representative annotation names).
    pub labels: Vec<String>,
    /// Edges as `(node position in `nodes`, node position, distance)`.
    pub edges: Vec<(usize, usize, f64)>,
    /// Connected-component id per node position.
    pub components: Vec<usize>,
    /// Number of components.
    pub n_components: usize,
}

impl ClusterGraph {
    /// Build from cluster descriptors and display labels (one per
    /// descriptor; typically the representative KYM entry name).
    ///
    /// # Panics
    /// Panics when `labels.len() != descriptors.len()`.
    pub fn build(
        descriptors: &[ClusterDescriptor],
        labels: &[String],
        metric: &ClusterDistance,
        config: &GraphConfig,
    ) -> Self {
        assert_eq!(
            descriptors.len(),
            labels.len(),
            "need one label per descriptor"
        );
        let n = descriptors.len();
        // All-pairs edges under kappa.
        let mut degree = vec![0usize; n];
        let mut raw_edges: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let d = metric.distance(&descriptors[i], &descriptors[j]);
                if d <= config.kappa {
                    raw_edges.push((i, j, d));
                    degree[i] += 1;
                    degree[j] += 1;
                }
            }
        }
        // Degree filter (paper counts both endpoints' degrees).
        let keep: Vec<bool> = degree.iter().map(|&d| d >= config.min_degree).collect();
        let nodes: Vec<usize> = (0..n).filter(|&i| keep[i]).collect();
        let mut position = vec![usize::MAX; n];
        for (pos, &i) in nodes.iter().enumerate() {
            position[i] = pos;
        }
        let edges: Vec<(usize, usize, f64)> = raw_edges
            .into_iter()
            .filter(|(i, j, _)| keep[*i] && keep[*j])
            .map(|(i, j, d)| (position[i], position[j], d))
            .collect();

        // Connected components (union-find).
        let m = nodes.len();
        let mut parent: Vec<usize> = (0..m).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(a, b, _) in &edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra.max(rb)] = ra.min(rb);
            }
        }
        let mut components = vec![usize::MAX; m];
        let mut n_components = 0;
        for pos in 0..m {
            let root = find(&mut parent, pos);
            if components[root] == usize::MAX {
                components[root] = n_components;
                n_components += 1;
            }
            components[pos] = components[root];
        }

        Self {
            labels: nodes.iter().map(|&i| labels[i].clone()).collect(),
            nodes,
            edges,
            components,
            n_components,
        }
    }

    /// Number of surviving nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of surviving edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Mean component purity: for each component, the share of nodes
    /// carrying the component's most common label, weighted by
    /// component size. The paper's "each component containing nodes of
    /// primarily one color" corresponds to a purity near 1.
    pub fn component_purity(&self) -> f64 {
        use std::collections::HashMap;
        if self.nodes.is_empty() {
            return 1.0;
        }
        let mut total_majority = 0usize;
        for comp in 0..self.n_components {
            let mut counts: HashMap<&str, usize> = HashMap::new();
            let mut size = 0usize;
            for (pos, &c) in self.components.iter().enumerate() {
                if c == comp {
                    *counts.entry(self.labels[pos].as_str()).or_insert(0) += 1;
                    size += 1;
                }
            }
            let _ = size;
            total_majority += counts.values().max().copied().unwrap_or(0);
        }
        total_majority as f64 / self.nodes.len() as f64
    }

    /// Graphviz DOT export (undirected), labels on nodes, component id
    /// as color index.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("graph memes {\n  overlap=false;\n");
        for (pos, label) in self.labels.iter().enumerate() {
            out.push_str(&format!(
                "  n{pos} [label=\"{}\", colorscheme=set312, color={}];\n",
                label.replace('"', "'"),
                (self.components[pos] % 12) + 1
            ));
        }
        for &(a, b, d) in &self.edges {
            out.push_str(&format!("  n{a} -- n{b} [weight={:.3}];\n", 1.0 - d));
        }
        out.push_str("}\n");
        out
    }

    /// JSON export for the interactive-visualization use case the paper
    /// published at memespaper.github.io.
    pub fn to_json(&self) -> String {
        // lint:allow(panic-in-pipeline): vendored serde serialization of plain structs is infallible
        serde_json::to_string_pretty(self).expect("graph serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_phash::PHash;
    use std::collections::HashSet;

    /// Two families of annotated clusters, far apart perceptually and
    /// disjoint in annotations.
    fn families() -> (Vec<ClusterDescriptor>, Vec<String>) {
        let mut descriptors = Vec::new();
        let mut labels = Vec::new();
        let base_a = PHash(0);
        let base_b = PHash(u64::MAX);
        for k in 0..6u8 {
            descriptors.push(ClusterDescriptor {
                medoid: base_a.with_flipped_bits(&[k]),
                annotated: true,
                memes: HashSet::from(["Smug Frog".to_string()]),
                people: HashSet::new(),
                cultures: HashSet::new(),
            });
            labels.push("Smug Frog".to_string());
            descriptors.push(ClusterDescriptor {
                medoid: base_b.with_flipped_bits(&[k]),
                annotated: true,
                memes: HashSet::from(["Roll Safe".to_string()]),
                people: HashSet::new(),
                cultures: HashSet::new(),
            });
            labels.push("Roll Safe".to_string());
        }
        (descriptors, labels)
    }

    fn config() -> GraphConfig {
        GraphConfig {
            kappa: 0.45,
            min_degree: 2,
        }
    }

    #[test]
    fn families_form_pure_components() {
        let (ds, labels) = families();
        let g = ClusterGraph::build(&ds, &labels, &ClusterDistance::default(), &config());
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.n_components, 2);
        assert_eq!(g.component_purity(), 1.0);
        // No cross-family edges.
        for &(a, b, _) in &g.edges {
            assert_eq!(g.labels[a], g.labels[b]);
        }
    }

    #[test]
    fn degree_filter_drops_isolated_nodes() {
        let (mut ds, mut labels) = families();
        // A singleton far from everything.
        ds.push(ClusterDescriptor::unannotated(PHash(0xF0F0_F0F0)));
        labels.push("loner".to_string());
        let g = ClusterGraph::build(&ds, &labels, &ClusterDistance::default(), &config());
        assert_eq!(g.node_count(), 12);
        assert!(!g.labels.contains(&"loner".to_string()));
    }

    #[test]
    fn kappa_zero_keeps_nothing() {
        let (ds, labels) = families();
        let g = ClusterGraph::build(
            &ds,
            &labels,
            &ClusterDistance::default(),
            &GraphConfig {
                kappa: 0.0,
                min_degree: 1,
            },
        );
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn empty_input() {
        let g = ClusterGraph::build(
            &[],
            &[],
            &ClusterDistance::default(),
            &GraphConfig::default(),
        );
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.n_components, 0);
        assert_eq!(g.component_purity(), 1.0);
    }

    #[test]
    fn exports_are_well_formed() {
        let (ds, labels) = families();
        let g = ClusterGraph::build(&ds, &labels, &ClusterDistance::default(), &config());
        let dot = g.to_dot();
        assert!(dot.starts_with("graph memes {"));
        assert!(dot.contains("Smug Frog"));
        assert!(dot.ends_with("}\n"));
        let json = g.to_json();
        assert!(json.contains("\"edges\""));
        // Round-trips through serde structurally (floats may lose a
        // final digit in decimal form).
        let back: ClusterGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.nodes, g.nodes);
        assert_eq!(back.labels, g.labels);
        assert_eq!(back.components, g.components);
        assert_eq!(back.edge_count(), g.edge_count());
    }

    #[test]
    #[should_panic(expected = "one label per descriptor")]
    fn mismatched_labels_panic() {
        let (ds, _) = families();
        let _ = ClusterGraph::build(&ds, &[], &ClusterDistance::default(), &config());
    }
}
