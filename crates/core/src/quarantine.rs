//! Dead-letter quarantine for poison items.
//!
//! A poison item — a post whose image fails to hash or to associate on
//! *every* attempt — must not sink its stage or burn the retry budget
//! forever. The supervisor ([`crate::supervise`]) diverts such items
//! here: each one becomes a [`QuarantineEntry`] with a typed
//! [`QuarantineReason`], the batch is summarised in the run's
//! degradations, and the entries are persisted to a `quarantine.jsonl`
//! dead-letter file (one JSON object per line, append-friendly and
//! greppable). `memes quarantine ls` lists a file; `memes quarantine
//! replay` re-processes the items against a clean pipeline to decide
//! whether they have recovered.

use crate::runner::StageId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Why an item was quarantined.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// The item failed on every retry attempt of its stage.
    PoisonItem {
        /// Attempts made before giving up on the item.
        attempts: u32,
        /// Rendered cause of the last failure.
        detail: String,
    },
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PoisonItem { attempts, detail } => {
                write!(f, "poison item (failed {attempts} attempt(s)): {detail}")
            }
        }
    }
}

/// One quarantined item: which stage dropped it, which item it was, and
/// why. `item` is an index into `dataset.posts` — the stable, seedable
/// coordinate every replay can resolve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// The stage that gave up on the item.
    pub stage: StageId,
    /// Post index (into `dataset.posts`) of the quarantined item.
    pub item: usize,
    /// Why it was quarantined.
    pub reason: QuarantineReason,
}

/// A quarantine file failure — typed, per the workspace error taxonomy.
#[derive(Debug)]
pub enum QuarantineError {
    /// The file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The rendered OS error.
        detail: String,
    },
    /// A line was not a valid quarantine entry.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// The decode error.
        detail: String,
    },
}

impl fmt::Display for QuarantineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, detail } => write!(f, "quarantine file {path}: {detail}"),
            Self::Malformed { line, detail } => {
                write!(f, "quarantine line {line} is malformed: {detail}")
            }
        }
    }
}

impl std::error::Error for QuarantineError {}

/// Encode entries as JSON Lines (one entry per line, trailing newline).
pub fn encode_jsonl(entries: &[QuarantineEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        // lint:allow(panic-in-pipeline): vendored serde serialization of plain structs is infallible
        out.push_str(&serde_json::to_string(e).expect("quarantine entry serializes"));
        out.push('\n');
    }
    out
}

/// Decode a JSON Lines quarantine file body (blank lines are ignored).
pub fn parse_jsonl(text: &str) -> Result<Vec<QuarantineEntry>, QuarantineError> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = serde_json::from_str(line).map_err(|e| QuarantineError::Malformed {
            line: i + 1,
            detail: e.to_string(),
        })?;
        entries.push(entry);
    }
    Ok(entries)
}

/// Read and decode a quarantine file.
pub fn read_quarantine(path: &Path) -> Result<Vec<QuarantineEntry>, QuarantineError> {
    let text = std::fs::read_to_string(path).map_err(|e| QuarantineError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    parse_jsonl(&text)
}

/// Write entries to a quarantine file (whole-file rewrite; the
/// supervisor calls this after every stage with the full accumulated
/// set, so a crash can only lose the newest batch, never corrupt old
/// lines mid-file).
pub fn write_quarantine(path: &Path, entries: &[QuarantineEntry]) -> Result<(), QuarantineError> {
    std::fs::write(path, encode_jsonl(entries)).map_err(|e| QuarantineError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })
}

/// Entry counts per stage, in [`StageId::ALL`] order (stages with no
/// entries are omitted) — the `memes quarantine ls` summary line.
pub fn summarize(entries: &[QuarantineEntry]) -> Vec<(StageId, usize)> {
    StageId::ALL
        .into_iter()
        .filter_map(|stage| {
            let n = entries.iter().filter(|e| e.stage == stage).count();
            (n > 0).then_some((stage, n))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<QuarantineEntry> {
        vec![
            QuarantineEntry {
                stage: StageId::Hash,
                item: 17,
                reason: QuarantineReason::PoisonItem {
                    attempts: 3,
                    detail: "injected poison".to_string(),
                },
            },
            QuarantineEntry {
                stage: StageId::Associate,
                item: 4,
                reason: QuarantineReason::PoisonItem {
                    attempts: 3,
                    detail: "injected poison".to_string(),
                },
            },
            QuarantineEntry {
                stage: StageId::Hash,
                item: 99,
                reason: QuarantineReason::PoisonItem {
                    attempts: 1,
                    detail: "render failed".to_string(),
                },
            },
        ]
    }

    #[test]
    fn jsonl_roundtrip_preserves_entries() {
        let entries = sample();
        let text = encode_jsonl(&entries);
        assert_eq!(text.lines().count(), entries.len());
        let back = parse_jsonl(&text).expect("roundtrip");
        assert_eq!(back, entries);
    }

    #[test]
    fn blank_lines_are_ignored_and_garbage_is_typed() {
        let entries = sample();
        let mut text = encode_jsonl(&entries);
        text.insert(0, '\n');
        let back = parse_jsonl(&text).expect("blank lines skipped");
        assert_eq!(back, entries);

        text.push_str("{ not a quarantine entry\n");
        let err = parse_jsonl(&text).expect_err("garbage line must fail");
        match err {
            QuarantineError::Malformed { line, .. } => assert_eq!(line, text.lines().count()),
            other => panic!("expected Malformed, got {other}"),
        }
    }

    #[test]
    fn summarize_groups_by_stage_in_stage_order() {
        assert_eq!(
            summarize(&sample()),
            vec![(StageId::Hash, 2), (StageId::Associate, 1)]
        );
        assert!(summarize(&[]).is_empty());
    }

    #[test]
    fn file_io_is_typed() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "memes-quarantine-test-{}.jsonl",
            std::process::id()
        ));
        let entries = sample();
        write_quarantine(&path, &entries).expect("write");
        let back = read_quarantine(&path).expect("read");
        assert_eq!(back, entries);
        let _ = std::fs::remove_file(&path);

        let missing = dir.join("memes-quarantine-no-such-file.jsonl");
        assert!(matches!(
            read_quarantine(&missing),
            Err(QuarantineError::Io { .. })
        ));
    }
}
