//! Meme provenance and virality — the paper's §7 future-work questions,
//! made answerable by ground truth.
//!
//! "Our findings yield a number of future directions exploring, e.g.,
//! **where memes are first created**, understanding **components of a
//! meme that might increase/decrease its chance of dissemination** …"
//! (§7). The reproduction implements both:
//!
//! * [`infer_origins`] — estimate each annotated cluster's origin
//!   community from its earliest observed posts (what a measurement
//!   study can do) and, on simulated data, score that estimate against
//!   the simulator's true first post;
//! * [`virality`] — per-cluster reproduction statistics from the fitted
//!   Hawkes models: the expected number of further posts each post
//!   generates (the "branching ratio"), split by community and meme
//!   group, quantifying which meme components predict dissemination.

use crate::pipeline::PipelineOutput;
use meme_hawkes::{Event, InfluenceMatrix};
use meme_imaging::caption::CaptionDetector;
use meme_imaging::synth::VariantOp;
use meme_simweb::{Community, Dataset};
use serde::{Deserialize, Serialize};

/// Origin estimate for one annotated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OriginEstimate {
    /// Cluster id.
    pub cluster: usize,
    /// Community of the earliest matched post.
    pub estimated: Community,
    /// Ground-truth origin: the community of the cluster's true first
    /// post (via simulator lineage over this cluster's meme).
    pub actual: Community,
    /// Time of the earliest matched post (days).
    pub first_seen: f64,
}

/// Infer the origin community of every annotated cluster from the
/// Step-6 association, and score it against ground truth.
///
/// Returns the per-cluster estimates and the overall accuracy.
pub fn infer_origins(dataset: &Dataset, output: &PipelineOutput) -> (Vec<OriginEstimate>, f64) {
    let annotated = output.annotated_clusters();
    let mut slot_of = vec![usize::MAX; output.medoid_hashes.len()];
    for (slot, &c) in annotated.iter().enumerate() {
        slot_of[c] = slot;
    }
    // Earliest matched post per cluster (posts are time-sorted).
    let mut first_post: Vec<Option<usize>> = vec![None; annotated.len()];
    for (post, occ) in dataset.posts.iter().zip(&output.occurrences) {
        if let Some(c) = occ {
            let slot = slot_of[*c];
            if slot != usize::MAX && first_post[slot].is_none() {
                first_post[slot] = Some(post.id);
            }
        }
    }
    // Ground truth: earliest post of the cluster's true meme anywhere.
    let mut meme_first: std::collections::HashMap<usize, Community> =
        std::collections::HashMap::new();
    for post in &dataset.posts {
        if let Some((meme, _)) = post.true_variant() {
            meme_first.entry(meme).or_insert(post.community);
        }
    }

    let mut estimates = Vec::new();
    let mut correct = 0usize;
    for (slot, &cluster) in annotated.iter().enumerate() {
        let Some(first) = first_post[slot] else {
            continue;
        };
        let post = &dataset.posts[first];
        let medoid_post = &dataset.posts[output.medoid_posts[cluster]];
        let Some((meme, _)) = medoid_post.true_variant() else {
            continue;
        };
        let Some(&actual) = meme_first.get(&meme) else {
            continue;
        };
        if post.community == actual {
            correct += 1;
        }
        estimates.push(OriginEstimate {
            cluster,
            estimated: post.community,
            actual,
            first_seen: post.t,
        });
    }
    let accuracy = if estimates.is_empty() {
        0.0
    } else {
        correct as f64 / estimates.len() as f64
    };
    (estimates, accuracy)
}

/// Virality profile of a cluster group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViralityProfile {
    /// Number of clusters in the group.
    pub clusters: usize,
    /// Total events in the group.
    pub events: f64,
    /// Mean offspring per event: how many further posts one post
    /// causes, across all communities (a branching-ratio estimate;
    /// `1 − background share` of the attribution mass).
    pub mean_offspring: f64,
    /// Share of events that escaped their origin community (external
    /// dissemination).
    pub external_share: f64,
}

/// Compute a virality profile from per-cluster influence matrices and
/// their event streams.
pub fn virality(per_cluster: &[InfluenceMatrix], streams: &[Vec<Event>]) -> ViralityProfile {
    assert_eq!(per_cluster.len(), streams.len(), "one stream per matrix");
    let mut events = 0.0f64;
    let mut external = 0.0f64;
    let mut offspring_weighted = 0.0f64;
    for (m, stream) in per_cluster.iter().zip(streams) {
        let n = stream.len() as f64;
        if n == 0.0 {
            continue;
        }
        events += n;
        let k = m.k();
        // External mass: root-cause counts off the diagonal.
        let mut ext = 0.0;
        let mut total = 0.0;
        for src in 0..k {
            for dst in 0..k {
                total += m.count(src, dst);
                if src != dst {
                    ext += m.count(src, dst);
                }
            }
        }
        if total > 0.0 {
            external += ext;
        }
        // Offspring estimate: events not attributed to the background
        // were caused by earlier events; offspring per event is that
        // non-immigrant share renormalized. With root-cause counts we
        // approximate immigrants by the diagonal's "self-rooted" mass
        // floor; a cleaner estimate comes from per-event parent
        // probabilities, which the estimator folds into the counts.
        offspring_weighted += total - immigrant_mass(m);
    }
    ViralityProfile {
        clusters: per_cluster.len(),
        events,
        mean_offspring: if events > 0.0 {
            offspring_weighted / events
        } else {
            0.0
        },
        external_share: if events > 0.0 { external / events } else { 0.0 },
    }
}

/// Lower bound on immigrant mass in a root-cause matrix: every chain
/// has exactly one root event, so the number of distinct roots is at
/// most the self-rooted diagonal mass. We approximate immigrants by the
/// dominant-diagonal heuristic (exact immigrant counts require the
/// parent distributions, not just root causes).
fn immigrant_mass(m: &InfluenceMatrix) -> f64 {
    let k = m.k();
    // Each root event contributes 1 to its own (src == dst) diagonal
    // cell; home-grown offspring also land there, so the diagonal
    // over-counts immigrants and mean_offspring comes out conservative
    // (a lower bound).
    (0..k)
        .map(|src| {
            let row: f64 = (0..k).map(|dst| m.count(src, dst)).sum();
            // A source's root mass is at most what it kept at home.
            row.min(m.count(src, src))
        })
        .sum::<f64>()
}

/// Caption analysis of annotated clusters: what the paper's planned OCR
/// step would feed into the dissemination question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaptionAnalysis {
    /// Per annotated cluster (in `annotated_clusters()` order): whether
    /// the detector finds a caption on the medoid image.
    pub detected: Vec<bool>,
    /// Ground truth: whether the cluster's true variant carries a
    /// caption edit.
    pub actual: Vec<bool>,
    /// Detector accuracy against ground truth.
    pub accuracy: f64,
}

/// Run the caption detector over every annotated cluster's medoid and
/// score it against the generator's variant edits.
pub fn caption_analysis(dataset: &Dataset, output: &PipelineOutput) -> CaptionAnalysis {
    let detector = CaptionDetector::default();
    let annotated = output.annotated_clusters();
    let mut detected = Vec::with_capacity(annotated.len());
    let mut actual = Vec::with_capacity(annotated.len());
    for &cluster in &annotated {
        let post = &dataset.posts[output.medoid_posts[cluster]];
        // lint:allow(panic-reachable): post canvases are rendered at fixed non-zero dimensions, so Image::filled's contract holds
        let img = dataset.render_post_image(post);
        detected.push(detector.detect(&img).any());
        let truth = post.true_variant().is_some_and(|(meme, variant)| {
            dataset.universe.specs[meme].variants[variant]
                .ops
                .iter()
                .any(|op| {
                    matches!(
                        op,
                        VariantOp::CaptionTop { .. } | VariantOp::CaptionBottom { .. }
                    )
                })
        });
        actual.push(truth);
    }
    let correct = detected.iter().zip(&actual).filter(|(d, a)| d == a).count();
    CaptionAnalysis {
        accuracy: if detected.is_empty() {
            1.0
        } else {
            correct as f64 / detected.len() as f64
        },
        detected,
        actual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use meme_hawkes::InfluenceEstimator;
    use meme_simweb::SimConfig;

    fn fixture() -> (Dataset, PipelineOutput) {
        let dataset = SimConfig::tiny(31).generate();
        let output = Pipeline::new(PipelineConfig::fast())
            .run(&dataset)
            .expect("pipeline runs");
        (dataset, output)
    }

    #[test]
    fn origin_inference_beats_chance() {
        let (dataset, output) = fixture();
        let (estimates, accuracy) = infer_origins(&dataset, &output);
        assert!(!estimates.is_empty());
        // 5 communities -> chance is 20%; earliest-post inference must
        // do much better.
        assert!(accuracy > 0.4, "origin accuracy {accuracy}");
        for e in &estimates {
            assert!(e.first_seen >= 0.0);
        }
    }

    #[test]
    fn virality_profile_is_consistent() {
        let (dataset, output) = fixture();
        let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
        let influence = output
            .estimate_influence(&dataset, &estimator, 0)
            .expect("estimation succeeds");
        let streams = output.all_cluster_events(&dataset);
        let profile = virality(&influence.per_cluster, &streams);
        assert_eq!(profile.clusters, streams.len());
        assert!(profile.events > 0.0);
        assert!((0.0..=1.0).contains(&profile.external_share));
        assert!(profile.mean_offspring >= 0.0);
        assert!(profile.mean_offspring < 1.0, "subcritical cascades");
    }

    #[test]
    fn political_memes_are_more_viral_than_neutral() {
        // The generator gives political memes stronger cross-community
        // weights; the fitted virality must reflect it.
        let (dataset, output) = fixture();
        let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
        let influence = output
            .estimate_influence(&dataset, &estimator, 0)
            .expect("estimation succeeds");
        let streams = output.all_cluster_events(&dataset);
        let annotated = output.annotated_clusters();
        let mut pol_m = Vec::new();
        let mut pol_s = Vec::new();
        let mut other_m = Vec::new();
        let mut other_s = Vec::new();
        for (slot, &cluster) in annotated.iter().enumerate() {
            if output.cluster_is_political(cluster) {
                pol_m.push(influence.per_cluster[slot].clone());
                pol_s.push(streams[slot].clone());
            } else {
                other_m.push(influence.per_cluster[slot].clone());
                other_s.push(streams[slot].clone());
            }
        }
        if pol_s.iter().map(Vec::len).sum::<usize>() < 100
            || other_s.iter().map(Vec::len).sum::<usize>() < 100
        {
            return; // not enough mass at this scale to compare
        }
        let pol = virality(&pol_m, &pol_s);
        let other = virality(&other_m, &other_s);
        assert!(
            pol.external_share > other.external_share,
            "political external {} vs other {}",
            pol.external_share,
            other.external_share
        );
    }

    #[test]
    fn caption_detector_beats_chance_on_medoids() {
        let (dataset, output) = fixture();
        let analysis = caption_analysis(&dataset, &output);
        assert_eq!(analysis.detected.len(), output.annotated_clusters().len());
        assert!(
            analysis.accuracy > 0.6,
            "caption accuracy {}",
            analysis.accuracy
        );
        // Both classes should appear in a reasonable universe.
        assert!(analysis.actual.iter().any(|a| *a) || analysis.actual.len() < 5);
    }

    #[test]
    #[should_panic(expected = "one stream per matrix")]
    fn mismatched_inputs_panic() {
        let _ = virality(&[InfluenceMatrix::zeros(2)], &[]);
    }
}
