//! Checkpointed stage runner — fault tolerance for the Fig. 2 pipeline.
//!
//! [`PipelineRunner`] drives a [`Pipeline`] through its steps as named,
//! resumable **stages** ([`StageId`]). After every stage it snapshots a
//! [`Checkpoint`] — the accumulated [`StageState`], the configuration,
//! and a fingerprint of the dataset — to disk, so a run killed after
//! stage *k* can [`PipelineRunner::resume`] from stage *k + 1* instead
//! of starting over. This mirrors the paper's own batch/one-time-task
//! split (§3.3): the expensive phases (hashing 160M images, pairwise
//! distances) are exactly the ones worth never redoing.
//!
//! On-disk integrity (DESIGN.md §11): checkpoints are wrapped in a
//! checksummed, schema-versioned **envelope** — a one-line ASCII header
//! carrying a CRC-32 and byte length of the JSON payload — and written
//! via a uniquely-named temp file renamed into place, with the previous
//! generation kept as `<path>.prev` for rollback. [`decode_checkpoint`]
//! classifies every defect as **torn** (truncated/garbled bytes, CRC or
//! length mismatch) or **stale** (a checkpoint from another schema
//! version); [`fsck_bytes`] adds **mismatched** (wrong dataset or
//! configuration) for the `memes fsck` subcommand. Persistence is
//! routed through the [`CheckpointMedium`] trait so the chaos suite can
//! inject write failures and torn writes deterministically.
//!
//! A checkpoint is only honoured when it matches the dataset **and** the
//! configuration it was taken under; anything else is a
//! [`PipelineError::CheckpointMismatch`], because silently mixing stage
//! outputs across configs would corrupt every downstream figure.

use crate::pipeline::{Degradation, Pipeline, PipelineConfig, PipelineError, PipelineOutput};
use crate::quarantine::QuarantineEntry;
use meme_annotate::annotator::ClusterAnnotation;
use meme_annotate::kym::KymSite;
use meme_annotate::screenshot::ClassifierMetrics;
use meme_cluster::Clustering;
use meme_phash::PHash;
use meme_simweb::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The named pipeline stages, in execution order.
///
/// Step 7 (Hawkes influence) is deliberately not a stage: it is computed
/// on demand from a completed [`PipelineOutput`] (see
/// [`PipelineOutput::estimate_influence_robust`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageId {
    /// Step 1 — pHash extraction over every post image.
    Hash,
    /// Steps 2–3 — pairwise distances, DBSCAN, medoid selection.
    Cluster,
    /// Step 4 — KYM site build with screenshot filtering.
    Site,
    /// Step 5 — cluster annotation against the KYM site.
    Annotate,
    /// Step 6 — association of all communities' posts to clusters.
    Associate,
}

impl StageId {
    /// All stages in execution order.
    pub const ALL: [StageId; 5] = [
        StageId::Hash,
        StageId::Cluster,
        StageId::Site,
        StageId::Annotate,
        StageId::Associate,
    ];

    /// Stable human-readable name (used by checkpoints and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            StageId::Hash => "hash",
            StageId::Cluster => "cluster",
            StageId::Site => "site",
            StageId::Annotate => "annotate",
            StageId::Associate => "associate",
        }
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Intermediate results accumulated stage by stage.
///
/// Every field starts `None` and is filled by exactly one stage; the
/// assembled [`PipelineOutput`] requires all of them. Degradations are
/// appended by whichever stage had to fall back.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StageState {
    /// Stage `hash`: pHash per post, aligned with `dataset.posts`.
    pub post_hashes: Option<Vec<PHash>>,
    /// Stage `cluster`: post indices of the clustered fringe images.
    pub fringe_posts: Option<Vec<usize>>,
    /// Stage `cluster`: the DBSCAN clustering over `fringe_posts`.
    pub clustering: Option<Clustering>,
    /// Stage `cluster`: medoid hash per cluster.
    pub medoid_hashes: Option<Vec<PHash>>,
    /// Stage `cluster`: medoid post index per cluster.
    pub medoid_posts: Option<Vec<usize>>,
    /// Stage `site`: the filtered, hashed KYM site.
    pub site: Option<KymSite>,
    /// Stage `site`: ground-truth meme id per site entry.
    pub entry_meme_ids: Option<Vec<Option<usize>>>,
    /// Stage `site`: classifier test metrics (Train mode only).
    pub screenshot_metrics: Option<ClassifierMetrics>,
    /// Stage `annotate`: one annotation per cluster.
    pub annotations: Option<Vec<ClusterAnnotation>>,
    /// Stage `associate`: annotated-cluster id per post.
    pub occurrences: Option<Vec<Option<usize>>>,
    /// Degradations recorded so far, in stage order.
    pub degradations: Vec<Degradation>,
    /// Poison items diverted to quarantine so far, in stage order
    /// (checkpointed so a resumed run keeps its dead-letter record; the
    /// batch is summarised in `degradations`, not in the output).
    /// Always present in v2 envelopes — pre-envelope checkpoints are
    /// rejected as stale before deserialization.
    pub quarantined: Vec<QuarantineEntry>,
}

impl StageState {
    /// Assemble the final output once every stage has run.
    pub(crate) fn into_output(self) -> Result<PipelineOutput, PipelineError> {
        fn take<T>(v: Option<T>, what: &str) -> Result<T, PipelineError> {
            v.ok_or_else(|| {
                PipelineError::CheckpointCorrupt(format!(
                    "checkpoint claims completion but stage output `{what}` is missing"
                ))
            })
        }
        Ok(PipelineOutput {
            post_hashes: take(self.post_hashes, "post_hashes")?,
            fringe_posts: take(self.fringe_posts, "fringe_posts")?,
            clustering: take(self.clustering, "clustering")?,
            medoid_hashes: take(self.medoid_hashes, "medoid_hashes")?,
            medoid_posts: take(self.medoid_posts, "medoid_posts")?,
            site: take(self.site, "site")?,
            entry_meme_ids: take(self.entry_meme_ids, "entry_meme_ids")?,
            annotations: take(self.annotations, "annotations")?,
            occurrences: take(self.occurrences, "occurrences")?,
            screenshot_metrics: self.screenshot_metrics,
            degradations: self.degradations,
        })
    }
}

/// A snapshot of a run after some prefix of completed stages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Fingerprint of the dataset the run was started on.
    pub dataset_fingerprint: u64,
    /// The configuration the run was started under.
    pub config: PipelineConfig,
    /// Stages completed so far, in execution order.
    pub completed: Vec<StageId>,
    /// Their accumulated outputs.
    pub state: StageState,
}

impl Checkpoint {
    /// An empty checkpoint for a fresh run.
    pub fn fresh(dataset: &Dataset, config: PipelineConfig) -> Self {
        Self {
            dataset_fingerprint: dataset_fingerprint(dataset),
            config,
            completed: Vec::new(),
            state: StageState::default(),
        }
    }

    /// Whether every stage has completed.
    pub fn is_complete(&self) -> bool {
        StageId::ALL.iter().all(|s| self.completed.contains(s))
    }

    /// The first stage that has not yet completed.
    pub fn next_stage(&self) -> Option<StageId> {
        StageId::ALL
            .into_iter()
            .find(|s| !self.completed.contains(s))
    }

    /// Serialize the payload to JSON (no integrity envelope — see
    /// [`encode_checkpoint`] for the on-disk format).
    pub fn to_json(&self) -> String {
        // lint:allow(panic-in-pipeline): vendored serde serialization of plain structs is infallible
        serde_json::to_string(self).expect("checkpoint serializes")
    }

    /// Restore a checkpoint payload saved with [`Checkpoint::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// The completed run this checkpoint carries. The serving layer
    /// loads finished runs straight from their last checkpoint; a
    /// partial checkpoint, or one whose claimed stage outputs are
    /// missing, surfaces as [`PipelineError::CheckpointCorrupt`]
    /// instead of producing a half-populated output.
    pub fn into_completed_output(self) -> Result<PipelineOutput, PipelineError> {
        if let Some(stage) = self.next_stage() {
            return Err(PipelineError::CheckpointCorrupt(format!(
                "checkpoint is not a completed run: stage `{stage}` has not run"
            )));
        }
        self.state.into_output()
    }
}

/// FNV-1a fingerprint of a dataset's post skeleton (count, timestamps,
/// communities). Cheap, stable across runs, and sensitive to exactly
/// the inputs whose change would invalidate stage outputs.
pub fn dataset_fingerprint(dataset: &Dataset) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(mut h: u64, word: u64) -> u64 {
        for b in word.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h
    }
    let mut h = eat(OFFSET, dataset.posts.len() as u64);
    for p in &dataset.posts {
        h = eat(h, p.t.to_bits());
        h = eat(h, p.community.index() as u64);
    }
    h
}

// ---------------------------------------------------------------------
// Checkpoint envelope: `MEMES-CKPT v<N> crc32=<hex> len=<bytes>\n<json>`
// ---------------------------------------------------------------------

/// Schema version written into every checkpoint envelope. Bumped when
/// the payload layout changes incompatibly; older versions decode as
/// [`CheckpointDefect::Stale`].
pub const CHECKPOINT_SCHEMA_VERSION: u32 = 2;

const CKPT_MAGIC: &str = "MEMES-CKPT";

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the
/// envelope checksum. Bitwise, dependency-free; checkpoint writes are
/// dominated by serialization, not by this.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// How a checkpoint file failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointDefect {
    /// The bytes on disk are not a complete, intact envelope: truncated
    /// header or payload, CRC/length mismatch, or garbage — the
    /// signature of a crash mid-write or outside interference.
    Torn {
        /// What exactly failed to verify.
        detail: String,
    },
    /// The file is a well-formed checkpoint from a different schema
    /// version (including pre-envelope v1 files) that this build will
    /// not reinterpret.
    Stale {
        /// Which version was found.
        detail: String,
    },
}

impl fmt::Display for CheckpointDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Torn { detail } => write!(f, "torn checkpoint: {detail}"),
            Self::Stale { detail } => write!(f, "stale checkpoint: {detail}"),
        }
    }
}

/// Wrap a checkpoint in its integrity envelope: a one-line ASCII header
/// carrying the schema version, a CRC-32 over the JSON payload, and the
/// payload's byte length, followed by the payload itself.
pub fn encode_checkpoint(ckpt: &Checkpoint) -> Vec<u8> {
    let payload = ckpt.to_json();
    let mut out = format!(
        "{CKPT_MAGIC} v{CHECKPOINT_SCHEMA_VERSION} crc32={:08x} len={}\n",
        crc32(payload.as_bytes()),
        payload.len()
    );
    out.push_str(&payload);
    out.into_bytes()
}

/// Decode and verify an enveloped checkpoint, classifying every failure
/// as [`CheckpointDefect::Torn`] or [`CheckpointDefect::Stale`] — never
/// a panic, and never a silent success on damaged bytes.
pub fn decode_checkpoint(bytes: &[u8]) -> Result<Checkpoint, CheckpointDefect> {
    if bytes.is_empty() {
        return Err(CheckpointDefect::Torn {
            detail: "file is empty".to_string(),
        });
    }
    let header_end = bytes.iter().position(|&b| b == b'\n');
    let header_bytes = match header_end {
        Some(i) => &bytes[..i],
        None => bytes,
    };
    let fields = std::str::from_utf8(header_bytes)
        .ok()
        .and_then(parse_header);
    let Some((version, crc, len)) = fields else {
        return Err(classify_headerless(bytes));
    };
    if version != CHECKPOINT_SCHEMA_VERSION {
        return Err(CheckpointDefect::Stale {
            detail: format!(
                "envelope schema v{version}; this build reads v{CHECKPOINT_SCHEMA_VERSION}"
            ),
        });
    }
    let payload = match header_end {
        Some(i) => &bytes[i + 1..],
        None => &[][..],
    };
    if payload.len() != len {
        return Err(CheckpointDefect::Torn {
            detail: format!(
                "payload is {} byte(s), header expects {len} — truncated or overwritten",
                payload.len()
            ),
        });
    }
    let actual = crc32(payload);
    if actual != crc {
        return Err(CheckpointDefect::Torn {
            detail: format!("payload CRC {actual:08x} does not match header CRC {crc:08x}"),
        });
    }
    // lint:allow(untyped-error): maps into the typed CheckpointDefect classification
    let text = std::str::from_utf8(payload).map_err(|e| CheckpointDefect::Torn {
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    // lint:allow(untyped-error): maps into the typed CheckpointDefect classification
    Checkpoint::from_json(text).map_err(|e| CheckpointDefect::Torn {
        detail: format!("envelope verifies but payload does not decode: {e}"),
    })
}

/// Parse `MEMES-CKPT v<N> crc32=<hex8> len=<N>`.
fn parse_header(line: &str) -> Option<(u32, u32, usize)> {
    let rest = line.strip_prefix(CKPT_MAGIC)?.strip_prefix(" v")?;
    let mut parts = rest.split(' ');
    let version: u32 = parts.next()?.parse().ok()?;
    let crc = u32::from_str_radix(parts.next()?.strip_prefix("crc32=")?, 16).ok()?;
    let len: usize = parts.next()?.strip_prefix("len=")?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((version, crc, len))
}

/// Classify bytes with no parseable envelope header: a recognizable
/// pre-envelope (v1) checkpoint is *stale*; everything else is *torn*.
fn classify_headerless(bytes: &[u8]) -> CheckpointDefect {
    if bytes.starts_with(CKPT_MAGIC.as_bytes()) {
        return CheckpointDefect::Torn {
            detail: "envelope header is truncated or garbled".to_string(),
        };
    }
    if let Ok(text) = std::str::from_utf8(bytes) {
        if let Ok(v) = serde_json::from_str::<serde::Value>(text) {
            if v.as_object()
                .is_some_and(|o| o.iter().any(|(k, _)| k == "dataset_fingerprint"))
            {
                return CheckpointDefect::Stale {
                    detail: "pre-envelope (v1) checkpoint without an integrity header".to_string(),
                };
            }
            return CheckpointDefect::Torn {
                detail: "valid JSON but not a checkpoint".to_string(),
            };
        }
    }
    CheckpointDefect::Torn {
        detail: "no envelope header and not a legacy checkpoint".to_string(),
    }
}

// ---------------------------------------------------------------------
// Persistence medium + generational persist
// ---------------------------------------------------------------------

/// A checkpoint I/O failure, typed with the operation and path so retry
/// and fault-injection layers can reason about it.
#[derive(Debug, Clone)]
pub struct MediumError {
    /// The operation that failed (`"write"`, `"rename"`, `"read"`).
    pub op: &'static str,
    /// The path involved.
    pub path: String,
    /// The rendered cause.
    pub detail: String,
}

impl fmt::Display for MediumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.op, self.path, self.detail)
    }
}

impl std::error::Error for MediumError {}

/// The I/O surface checkpoint persistence goes through. The production
/// implementation is [`DiskMedium`]; the chaos suite substitutes a
/// fault-injecting one (`supervise::FaultyMedium`) to schedule write
/// failures and torn writes deterministically.
pub trait CheckpointMedium: fmt::Debug + Send + Sync {
    /// Write `bytes` to `path`, creating or truncating it.
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), MediumError>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> Result<(), MediumError>;
    /// Read the whole file at `path`.
    fn read(&self, path: &Path) -> Result<Vec<u8>, MediumError>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The real filesystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskMedium;

impl CheckpointMedium for DiskMedium {
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), MediumError> {
        fs::write(path, bytes).map_err(|e| MediumError {
            op: "write",
            path: path.display().to_string(),
            detail: e.to_string(),
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), MediumError> {
        fs::rename(from, to).map_err(|e| MediumError {
            op: "rename",
            path: format!("{} -> {}", from.display(), to.display()),
            detail: e.to_string(),
        })
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, MediumError> {
        fs::read(path).map_err(|e| MediumError {
            op: "read",
            path: path.display().to_string(),
            detail: e.to_string(),
        })
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// Where the previous checkpoint generation is kept: `<path>.prev`.
pub fn prev_checkpoint_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".prev");
    PathBuf::from(s)
}

/// Process-wide counter making concurrent temp names distinct.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A temp name unique to this process *and* this persist call:
/// `<path>.<pid>-<n>.ckpt-tmp`. Two runners sharing a checkpoint path
/// thus never clobber each other's in-flight temp file (the final
/// rename still races — see [`persist_checkpoint`]'s single-writer
/// contract — but a loser can no longer tear the winner's bytes).
fn unique_tmp_path(path: &Path) -> PathBuf {
    let n = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut s = path.as_os_str().to_os_string();
    s.push(format!(".{}-{n}.ckpt-tmp", std::process::id()));
    PathBuf::from(s)
}

/// Persist a checkpoint crash-safely: encode with the integrity
/// envelope, write to a uniquely-named temp file, roll the current file
/// (if any) to `<path>.prev`, then rename the temp into place. A crash
/// at any point leaves either the old generation, the old generation
/// plus a stray temp file, or the new generation — never a file with
/// mixed bytes (a *medium* may still lie about durability; that is
/// exactly the torn-write fault [`decode_checkpoint`] exists to catch).
///
/// Single-writer contract: generations assume one writer per checkpoint
/// path. Concurrent writers no longer tear each other's temp files, but
/// current/`.prev` would interleave arbitrarily — give each run its own
/// path.
pub fn persist_checkpoint(
    medium: &dyn CheckpointMedium,
    path: &Path,
    ckpt: &Checkpoint,
) -> Result<(), PipelineError> {
    let tmp = unique_tmp_path(path);
    let result = (|| {
        medium.write(&tmp, &encode_checkpoint(ckpt))?;
        if medium.exists(path) {
            medium.rename(path, &prev_checkpoint_path(path))?;
        }
        medium.rename(&tmp, path)
    })();
    result.map_err(|e| {
        // Best effort: do not leave the stray temp file behind.
        let _ = fs::remove_file(&tmp);
        PipelineError::CheckpointIo(e.to_string())
    })
}

/// Read, decode, and validate a checkpoint against the dataset and
/// configuration of the run asking to resume from it.
pub(crate) fn load_validated(
    medium: &dyn CheckpointMedium,
    path: &Path,
    dataset: &Dataset,
    config: &PipelineConfig,
) -> Result<Checkpoint, PipelineError> {
    let bytes = medium
        .read(path)
        .map_err(|e| PipelineError::CheckpointIo(e.to_string()))?;
    let ckpt =
        decode_checkpoint(&bytes).map_err(|d| PipelineError::CheckpointCorrupt(d.to_string()))?;
    let expect = dataset_fingerprint(dataset);
    if ckpt.dataset_fingerprint != expect {
        return Err(PipelineError::CheckpointMismatch(format!(
            "checkpoint was taken on a different dataset \
             (fingerprint {:#018x}, expected {expect:#018x})",
            ckpt.dataset_fingerprint
        )));
    }
    if ckpt.config != *config {
        return Err(PipelineError::CheckpointMismatch(
            "checkpoint was taken under a different pipeline configuration".into(),
        ));
    }
    Ok(ckpt)
}

// ---------------------------------------------------------------------
// fsck
// ---------------------------------------------------------------------

/// `memes fsck` verdict for one checkpoint file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsckClass {
    /// Envelope verifies; payload decodes; matches the expected dataset
    /// and configuration when those were supplied.
    Clean,
    /// Truncated/garbled bytes, CRC or length mismatch.
    Torn,
    /// A well-formed checkpoint from another schema version.
    Stale,
    /// Intact, but taken on a different dataset or configuration.
    Mismatched,
}

impl FsckClass {
    /// Stable lowercase label (CLI output, artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Self::Clean => "clean",
            Self::Torn => "torn",
            Self::Stale => "stale",
            Self::Mismatched => "mismatched",
        }
    }
}

impl fmt::Display for FsckClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of checking one checkpoint file.
#[derive(Debug, Clone)]
pub struct FsckReport {
    /// The verdict.
    pub class: FsckClass,
    /// Human-readable specifics (what failed, or what was completed).
    pub detail: String,
    /// Completed stages, when the payload decoded.
    pub completed: Vec<StageId>,
}

/// Classify checkpoint bytes. Pass the expected dataset fingerprint and
/// configuration to additionally detect [`FsckClass::Mismatched`]; with
/// `None`, an intact checkpoint from *any* run is [`FsckClass::Clean`].
pub fn fsck_bytes(bytes: &[u8], expect: Option<(u64, &PipelineConfig)>) -> FsckReport {
    let ckpt = match decode_checkpoint(bytes) {
        Ok(ckpt) => ckpt,
        Err(CheckpointDefect::Torn { detail }) => {
            return FsckReport {
                class: FsckClass::Torn,
                detail,
                completed: Vec::new(),
            }
        }
        Err(CheckpointDefect::Stale { detail }) => {
            return FsckReport {
                class: FsckClass::Stale,
                detail,
                completed: Vec::new(),
            }
        }
    };
    let completed = ckpt.completed.clone();
    if let Some((fingerprint, config)) = expect {
        if ckpt.dataset_fingerprint != fingerprint {
            return FsckReport {
                class: FsckClass::Mismatched,
                detail: format!(
                    "dataset fingerprint {:#018x}, expected {fingerprint:#018x}",
                    ckpt.dataset_fingerprint
                ),
                completed,
            };
        }
        if ckpt.config != *config {
            return FsckReport {
                class: FsckClass::Mismatched,
                detail: "configuration differs from the one supplied".to_string(),
                completed,
            };
        }
    }
    FsckReport {
        class: FsckClass::Clean,
        detail: format!(
            "{} of {} stage(s) completed",
            completed.len(),
            StageId::ALL.len()
        ),
        completed,
    }
}

/// [`fsck_bytes`] over a file on a medium; unreadable files are a
/// [`PipelineError::CheckpointIo`] (operational, not a verdict).
pub fn fsck_file(
    medium: &dyn CheckpointMedium,
    path: &Path,
    expect: Option<(u64, &PipelineConfig)>,
) -> Result<FsckReport, PipelineError> {
    let bytes = medium
        .read(path)
        .map_err(|e| PipelineError::CheckpointIo(e.to_string()))?;
    Ok(fsck_bytes(&bytes, expect))
}

/// What a runner invocation produced.
#[derive(Debug)]
pub enum RunnerOutcome {
    /// Every stage ran; here is the assembled output.
    Complete(Box<PipelineOutput>),
    /// The runner stopped after the requested stage (checkpoint saved).
    Halted {
        /// The last stage that completed before halting.
        after: StageId,
    },
}

impl RunnerOutcome {
    /// Unwrap the completed output; panics on [`RunnerOutcome::Halted`].
    pub fn expect_complete(self) -> PipelineOutput {
        match self {
            RunnerOutcome::Complete(out) => *out,
            RunnerOutcome::Halted { after } => {
                // lint:allow(panic-in-pipeline): documented panicking accessor, mirrors Option::expect
                panic!("pipeline halted after stage `{after}`, no output")
            }
        }
    }
}

/// Drives a [`Pipeline`] stage by stage with optional checkpointing.
#[derive(Debug, Clone)]
pub struct PipelineRunner {
    pipeline: Pipeline,
    checkpoint_path: Option<PathBuf>,
    halt_after: Option<StageId>,
}

impl PipelineRunner {
    /// A runner with no checkpointing.
    pub fn new(pipeline: Pipeline) -> Self {
        Self {
            pipeline,
            checkpoint_path: None,
            halt_after: None,
        }
    }

    /// Attach a metrics handle to the underlying pipeline; the runner
    /// additionally records one span per stage under `pipeline/<stage>`,
    /// a `degradation.<slug>` counter per recorded fallback, and
    /// per-stage throughput gauges.
    pub fn with_metrics(mut self, metrics: meme_metrics::Metrics) -> Self {
        self.pipeline = self.pipeline.with_metrics(metrics);
        self
    }

    /// Snapshot a checkpoint to `path` after every completed stage.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Stop (checkpoint saved) after the given stage completes — the
    /// test hook that simulates a run killed mid-pipeline.
    pub fn halt_after(mut self, stage: StageId) -> Self {
        self.halt_after = Some(stage);
        self
    }

    /// Run every stage from scratch, ignoring any existing checkpoint.
    pub fn run(&self, dataset: &Dataset) -> Result<RunnerOutcome, PipelineError> {
        if dataset.posts.is_empty() {
            return Err(PipelineError::EmptyDataset);
        }
        let ckpt = Checkpoint::fresh(dataset, self.pipeline.config().clone());
        self.drive(dataset, ckpt)
    }

    /// Continue from the checkpoint on disk (validated against this
    /// dataset and configuration), or start fresh when none exists.
    pub fn resume(&self, dataset: &Dataset) -> Result<RunnerOutcome, PipelineError> {
        if dataset.posts.is_empty() {
            return Err(PipelineError::EmptyDataset);
        }
        let ckpt = match &self.checkpoint_path {
            Some(path) if path.exists() => {
                load_validated(&DiskMedium, path, dataset, self.pipeline.config())?
            }
            _ => Checkpoint::fresh(dataset, self.pipeline.config().clone()),
        };
        self.drive(dataset, ckpt)
    }

    /// Run the stages the checkpoint has not yet completed.
    fn drive(
        &self,
        dataset: &Dataset,
        mut ckpt: Checkpoint,
    ) -> Result<RunnerOutcome, PipelineError> {
        let metrics = self.pipeline.metrics().clone();
        let run_span = metrics.span("pipeline");
        for (idx, stage) in StageId::ALL.into_iter().enumerate() {
            let is_last = idx + 1 == StageId::ALL.len();
            if ckpt.completed.contains(&stage) {
                continue;
            }
            let span = run_span.child(stage.name());
            let degradations_before = ckpt.state.degradations.len();
            self.pipeline.run_stage(stage, dataset, &mut ckpt.state)?;
            let elapsed = span.finish();
            for d in &ckpt.state.degradations[degradations_before..] {
                metrics.inc(&format!("degradation.{}", d.slug()));
            }
            record_throughput(&metrics, stage, elapsed);
            ckpt.completed.push(stage);
            self.save(&ckpt)?;
            if self.halt_after == Some(stage) && !is_last {
                return Ok(RunnerOutcome::Halted { after: stage });
            }
        }
        run_span.finish();
        ckpt.state
            .into_output()
            .map(|out| RunnerOutcome::Complete(Box::new(out)))
    }

    /// Persist the checkpoint crash-safely (see [`persist_checkpoint`]).
    fn save(&self, ckpt: &Checkpoint) -> Result<(), PipelineError> {
        let Some(path) = &self.checkpoint_path else {
            return Ok(());
        };
        persist_checkpoint(&DiskMedium, path, ckpt)
    }
}

/// Derive a stage's items-per-second gauge from its wall time and the
/// work counter the stage itself recorded. Gauges hold the last value,
/// so on a resumed run they reflect the stages that actually ran.
pub(crate) fn record_throughput(metrics: &meme_metrics::Metrics, stage: StageId, elapsed: f64) {
    if !metrics.is_enabled() || elapsed <= 0.0 {
        return;
    }
    let per_sec = |counter: &str| metrics.counter(counter) as f64 / elapsed;
    match stage {
        StageId::Hash => metrics.gauge("hash.images_per_sec", per_sec("hash.images")),
        StageId::Cluster => metrics.gauge(
            "cluster.neighbor_queries_per_sec",
            per_sec("cluster.neighbor_queries"),
        ),
        StageId::Associate => {
            metrics.gauge("associate.queries_per_sec", per_sec("associate.posts"));
        }
        StageId::Site | StageId::Annotate => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use meme_simweb::SimConfig;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "memes-runner-test-{}-{name}.json",
            std::process::id()
        ));
        p
    }

    #[test]
    fn stage_order_is_stable() {
        let names: Vec<&str> = StageId::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["hash", "cluster", "site", "annotate", "associate"]);
    }

    #[test]
    fn fingerprint_tracks_post_skeleton() {
        let a = SimConfig::tiny(21).generate();
        let b = SimConfig::tiny(22).generate();
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&b));
        assert_eq!(dataset_fingerprint(&a), dataset_fingerprint(&a));
    }

    #[test]
    fn crc32_matches_the_ieee_check_vector() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn envelope_roundtrips_and_verifies() {
        let dataset = SimConfig::tiny(21).generate();
        let ckpt = Checkpoint::fresh(&dataset, PipelineConfig::fast());
        let bytes = encode_checkpoint(&ckpt);
        let back = decode_checkpoint(&bytes).expect("clean envelope decodes");
        assert_eq!(back.dataset_fingerprint, ckpt.dataset_fingerprint);
        assert_eq!(back.to_json(), ckpt.to_json());
    }

    #[test]
    fn torn_envelopes_are_classified_torn_at_every_offset() {
        // Satellite regression: truncations at header, boundary, and
        // payload offsets — plus bit rot — must all classify as Torn.
        let dataset = SimConfig::tiny(21).generate();
        let ckpt = Checkpoint::fresh(&dataset, PipelineConfig::fast());
        let bytes = encode_checkpoint(&ckpt);
        let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let offsets = [
            0,
            1,
            header_len - 2,
            header_len,
            header_len + 1,
            bytes.len() / 2,
            bytes.len() - 1,
        ];
        for &cut in &offsets {
            let defect = decode_checkpoint(&bytes[..cut]).expect_err("truncation must not decode");
            assert!(
                matches!(defect, CheckpointDefect::Torn { .. }),
                "cut at {cut}: {defect}"
            );
        }
        // A flipped payload bit fails the CRC even when the length holds.
        let mut rotted = bytes.clone();
        let last = rotted.len() - 1;
        rotted[last] ^= 0x01;
        assert!(matches!(
            decode_checkpoint(&rotted),
            Err(CheckpointDefect::Torn { .. })
        ));
    }

    #[test]
    fn pre_envelope_checkpoints_are_stale_not_torn() {
        let dataset = SimConfig::tiny(21).generate();
        let ckpt = Checkpoint::fresh(&dataset, PipelineConfig::fast());
        // A v1 file was the bare JSON payload.
        let defect = decode_checkpoint(ckpt.to_json().as_bytes()).expect_err("v1 must not decode");
        assert!(matches!(defect, CheckpointDefect::Stale { .. }), "{defect}");
        // As is a well-formed envelope from a future schema version.
        let mut bytes = encode_checkpoint(&ckpt);
        let header = format!("{CKPT_MAGIC} v{}", CHECKPOINT_SCHEMA_VERSION + 1);
        let old = format!("{CKPT_MAGIC} v{CHECKPOINT_SCHEMA_VERSION}");
        let text = String::from_utf8(bytes.clone()).unwrap();
        bytes = text.replacen(&old, &header, 1).into_bytes();
        assert!(matches!(
            decode_checkpoint(&bytes),
            Err(CheckpointDefect::Stale { .. })
        ));
    }

    #[test]
    fn temp_names_are_unique_per_persist() {
        // Satellite regression: two runners sharing a checkpoint path
        // must not write through the same temp file.
        let path = tmp_path("unique");
        let a = unique_tmp_path(&path);
        let b = unique_tmp_path(&path);
        assert_ne!(a, b);
        for t in [&a, &b] {
            let name = t.file_name().unwrap().to_string_lossy().into_owned();
            assert!(name.ends_with(".ckpt-tmp"), "{name}");
            assert!(
                name.contains(&std::process::id().to_string()),
                "temp name must carry the pid: {name}"
            );
        }
    }

    #[test]
    fn persist_keeps_the_previous_generation() {
        let dataset = SimConfig::tiny(21).generate();
        let path = tmp_path("generations");
        let prev = prev_checkpoint_path(&path);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&prev);

        let mut ckpt = Checkpoint::fresh(&dataset, PipelineConfig::fast());
        persist_checkpoint(&DiskMedium, &path, &ckpt).unwrap();
        assert!(path.exists());
        assert!(!prev.exists(), "first persist has no previous generation");

        ckpt.completed.push(StageId::Hash);
        persist_checkpoint(&DiskMedium, &path, &ckpt).unwrap();
        let current = decode_checkpoint(&fs::read(&path).unwrap()).unwrap();
        let rolled = decode_checkpoint(&fs::read(&prev).unwrap()).unwrap();
        assert_eq!(current.completed, vec![StageId::Hash]);
        assert!(rolled.completed.is_empty(), "prev holds generation n-1");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(&prev);
    }

    #[test]
    fn fsck_classifies_all_four_states() {
        let dataset = SimConfig::tiny(21).generate();
        let other = SimConfig::tiny(22).generate();
        let config = PipelineConfig::fast();
        let ckpt = Checkpoint::fresh(&dataset, config.clone());
        let bytes = encode_checkpoint(&ckpt);
        let fp = dataset_fingerprint(&dataset);

        let clean = fsck_bytes(&bytes, Some((fp, &config)));
        assert_eq!(clean.class, FsckClass::Clean);

        let torn = fsck_bytes(&bytes[..bytes.len() / 2], Some((fp, &config)));
        assert_eq!(torn.class, FsckClass::Torn);

        let stale = fsck_bytes(ckpt.to_json().as_bytes(), Some((fp, &config)));
        assert_eq!(stale.class, FsckClass::Stale);

        let wrong_fp = dataset_fingerprint(&other);
        let mismatched = fsck_bytes(&bytes, Some((wrong_fp, &config)));
        assert_eq!(mismatched.class, FsckClass::Mismatched);

        let mut changed = config.clone();
        changed.theta = 5;
        let mismatched = fsck_bytes(&bytes, Some((fp, &changed)));
        assert_eq!(mismatched.class, FsckClass::Mismatched);

        // Without expectations, any intact checkpoint is clean.
        assert_eq!(fsck_bytes(&bytes, None).class, FsckClass::Clean);
    }

    #[test]
    fn runner_matches_plain_pipeline() {
        let dataset = SimConfig::tiny(23).generate();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let plain = pipeline.run(&dataset).unwrap();
        let staged = PipelineRunner::new(pipeline)
            .run(&dataset)
            .unwrap()
            .expect_complete();
        assert_eq!(plain.to_json(), staged.to_json());
    }

    #[test]
    fn halt_then_resume_equals_uninterrupted() {
        let dataset = SimConfig::tiny(24).generate();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let whole = pipeline.run(&dataset).unwrap();
        for stage in StageId::ALL {
            let path = tmp_path(&format!("halt-{stage}"));
            let _ = fs::remove_file(&path);
            let _ = fs::remove_file(prev_checkpoint_path(&path));
            let runner = PipelineRunner::new(pipeline.clone())
                .with_checkpoint(&path)
                .halt_after(stage);
            let outcome = runner.run(&dataset).unwrap();
            let resumed = match outcome {
                RunnerOutcome::Halted { after } => {
                    assert_eq!(after, stage);
                    let ckpt = decode_checkpoint(&fs::read(&path).unwrap()).unwrap();
                    assert!(ckpt.completed.contains(&stage));
                    assert!(!ckpt.is_complete());
                    PipelineRunner::new(pipeline.clone())
                        .with_checkpoint(&path)
                        .resume(&dataset)
                        .unwrap()
                        .expect_complete()
                }
                // Halting after the final stage just completes.
                RunnerOutcome::Complete(out) => *out,
            };
            assert_eq!(whole.to_json(), resumed.to_json(), "stage {stage}");
            let _ = fs::remove_file(&path);
            let _ = fs::remove_file(prev_checkpoint_path(&path));
        }
    }

    #[test]
    fn resume_under_different_thread_count_is_byte_identical() {
        // A checkpoint written by a serial run and resumed on 8 threads
        // (or vice versa) must reproduce the uninterrupted serial
        // output byte for byte: stage outputs may never encode thread
        // chunking or HashMap iteration order. The config fingerprint
        // intentionally includes `threads`, so the resuming runner gets
        // a same-threads config and the cross-thread comparison is done
        // against a separately-computed reference.
        let dataset = SimConfig::tiny(27).generate();
        let reference = Pipeline::new(PipelineConfig {
            threads: 1,
            ..PipelineConfig::fast()
        })
        .run(&dataset)
        .unwrap();
        for threads in [1usize, 8] {
            let config = PipelineConfig {
                threads,
                ..PipelineConfig::fast()
            };
            let path = tmp_path(&format!("threads-{threads}"));
            let _ = fs::remove_file(&path);
            let _ = fs::remove_file(prev_checkpoint_path(&path));
            let halted = PipelineRunner::new(Pipeline::new(config.clone()))
                .with_checkpoint(&path)
                .halt_after(StageId::Cluster)
                .run(&dataset)
                .unwrap();
            assert!(matches!(halted, RunnerOutcome::Halted { .. }));
            let resumed = PipelineRunner::new(Pipeline::new(config))
                .with_checkpoint(&path)
                .resume(&dataset)
                .unwrap()
                .expect_complete();
            assert_eq!(
                reference.to_json(),
                resumed.to_json(),
                "run/resume with {threads} threads diverged from serial reference"
            );
            let _ = fs::remove_file(&path);
            let _ = fs::remove_file(prev_checkpoint_path(&path));
        }
    }

    #[test]
    fn checkpoint_rejects_other_dataset_and_config() {
        let dataset = SimConfig::tiny(25).generate();
        let other = SimConfig::tiny(26).generate();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let path = tmp_path("mismatch");
        let _ = fs::remove_file(&path);
        let outcome = PipelineRunner::new(pipeline.clone())
            .with_checkpoint(&path)
            .halt_after(StageId::Hash)
            .run(&dataset)
            .unwrap();
        assert!(matches!(outcome, RunnerOutcome::Halted { .. }));

        let err = PipelineRunner::new(pipeline.clone())
            .with_checkpoint(&path)
            .resume(&other)
            .unwrap_err();
        assert!(matches!(err, PipelineError::CheckpointMismatch(_)), "{err}");

        let mut changed = PipelineConfig::fast();
        changed.theta = 5;
        let err = PipelineRunner::new(Pipeline::new(changed))
            .with_checkpoint(&path)
            .resume(&dataset)
            .unwrap_err();
        assert!(matches!(err, PipelineError::CheckpointMismatch(_)), "{err}");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(prev_checkpoint_path(&path));
    }

    #[test]
    fn empty_dataset_is_typed_error_for_run_and_resume() {
        // Regression: an empty dataset must surface as EmptyDataset from
        // both entry points (never a worker panic), with or without a
        // checkpoint path, at any thread count.
        let mut dataset = SimConfig::tiny(28).generate();
        dataset.posts.clear();
        for threads in [0usize, 1, 8] {
            let pipeline = Pipeline::new(PipelineConfig {
                threads,
                ..PipelineConfig::fast()
            });
            let runner = PipelineRunner::new(pipeline.clone());
            assert!(matches!(
                runner.run(&dataset),
                Err(PipelineError::EmptyDataset)
            ));
            let path = tmp_path(&format!("empty-{threads}"));
            let _ = fs::remove_file(&path);
            let runner = PipelineRunner::new(pipeline).with_checkpoint(&path);
            assert!(matches!(
                runner.resume(&dataset),
                Err(PipelineError::EmptyDataset)
            ));
            let _ = fs::remove_file(&path);
        }
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let dataset = SimConfig::tiny(27).generate();
        let path = tmp_path("corrupt");
        fs::write(&path, "{ not json").unwrap();
        let err = PipelineRunner::new(Pipeline::new(PipelineConfig::fast()))
            .with_checkpoint(&path)
            .resume(&dataset)
            .unwrap_err();
        assert!(matches!(err, PipelineError::CheckpointCorrupt(_)), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncated_checkpoint_resume_is_torn_corrupt_never_a_fresh_run() {
        // Satellite regression: resume on a torn checkpoint must return
        // CheckpointCorrupt with the torn classification — not a serde
        // panic, and *not* a silent fresh run.
        let dataset = SimConfig::tiny(24).generate();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let path = tmp_path("torn-resume");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(prev_checkpoint_path(&path));
        let outcome = PipelineRunner::new(pipeline.clone())
            .with_checkpoint(&path)
            .halt_after(StageId::Hash)
            .run(&dataset)
            .unwrap();
        assert!(matches!(outcome, RunnerOutcome::Halted { .. }));
        let bytes = fs::read(&path).unwrap();
        let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        for cut in [1, header_len - 2, header_len + 1, bytes.len() - 1] {
            fs::write(&path, &bytes[..cut]).unwrap();
            let err = PipelineRunner::new(pipeline.clone())
                .with_checkpoint(&path)
                .resume(&dataset)
                .unwrap_err();
            match err {
                PipelineError::CheckpointCorrupt(detail) => assert!(
                    detail.contains("torn"),
                    "cut at {cut}: classification missing from {detail:?}"
                ),
                other => panic!("cut at {cut}: expected CheckpointCorrupt, got {other}"),
            }
        }
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(prev_checkpoint_path(&path));
    }
}
