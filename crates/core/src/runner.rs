//! Checkpointed stage runner — fault tolerance for the Fig. 2 pipeline.
//!
//! [`PipelineRunner`] drives a [`Pipeline`] through its steps as named,
//! resumable **stages** ([`StageId`]). After every stage it snapshots a
//! [`Checkpoint`] — the accumulated [`StageState`], the configuration,
//! and a fingerprint of the dataset — to disk (atomically: a temp file
//! renamed into place), so a run killed after stage *k* can
//! [`PipelineRunner::resume`] from stage *k + 1* instead of starting
//! over. This mirrors the paper's own batch/one-time-task split (§3.3):
//! the expensive phases (hashing 160M images, pairwise distances) are
//! exactly the ones worth never redoing.
//!
//! A checkpoint is only honoured when it matches the dataset **and** the
//! configuration it was taken under; anything else is a
//! [`PipelineError::CheckpointMismatch`], because silently mixing stage
//! outputs across configs would corrupt every downstream figure.

use crate::pipeline::{Degradation, Pipeline, PipelineConfig, PipelineError, PipelineOutput};
use meme_annotate::annotator::ClusterAnnotation;
use meme_annotate::kym::KymSite;
use meme_annotate::screenshot::ClassifierMetrics;
use meme_cluster::Clustering;
use meme_phash::PHash;
use meme_simweb::Dataset;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// The named pipeline stages, in execution order.
///
/// Step 7 (Hawkes influence) is deliberately not a stage: it is computed
/// on demand from a completed [`PipelineOutput`] (see
/// [`PipelineOutput::estimate_influence_robust`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageId {
    /// Step 1 — pHash extraction over every post image.
    Hash,
    /// Steps 2–3 — pairwise distances, DBSCAN, medoid selection.
    Cluster,
    /// Step 4 — KYM site build with screenshot filtering.
    Site,
    /// Step 5 — cluster annotation against the KYM site.
    Annotate,
    /// Step 6 — association of all communities' posts to clusters.
    Associate,
}

impl StageId {
    /// All stages in execution order.
    pub const ALL: [StageId; 5] = [
        StageId::Hash,
        StageId::Cluster,
        StageId::Site,
        StageId::Annotate,
        StageId::Associate,
    ];

    /// Stable human-readable name (used by checkpoints and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            StageId::Hash => "hash",
            StageId::Cluster => "cluster",
            StageId::Site => "site",
            StageId::Annotate => "annotate",
            StageId::Associate => "associate",
        }
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Intermediate results accumulated stage by stage.
///
/// Every field starts `None` and is filled by exactly one stage; the
/// assembled [`PipelineOutput`] requires all of them. Degradations are
/// appended by whichever stage had to fall back.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StageState {
    /// Stage `hash`: pHash per post, aligned with `dataset.posts`.
    pub post_hashes: Option<Vec<PHash>>,
    /// Stage `cluster`: post indices of the clustered fringe images.
    pub fringe_posts: Option<Vec<usize>>,
    /// Stage `cluster`: the DBSCAN clustering over `fringe_posts`.
    pub clustering: Option<Clustering>,
    /// Stage `cluster`: medoid hash per cluster.
    pub medoid_hashes: Option<Vec<PHash>>,
    /// Stage `cluster`: medoid post index per cluster.
    pub medoid_posts: Option<Vec<usize>>,
    /// Stage `site`: the filtered, hashed KYM site.
    pub site: Option<KymSite>,
    /// Stage `site`: ground-truth meme id per site entry.
    pub entry_meme_ids: Option<Vec<Option<usize>>>,
    /// Stage `site`: classifier test metrics (Train mode only).
    pub screenshot_metrics: Option<ClassifierMetrics>,
    /// Stage `annotate`: one annotation per cluster.
    pub annotations: Option<Vec<ClusterAnnotation>>,
    /// Stage `associate`: annotated-cluster id per post.
    pub occurrences: Option<Vec<Option<usize>>>,
    /// Degradations recorded so far, in stage order.
    pub degradations: Vec<Degradation>,
}

impl StageState {
    /// Assemble the final output once every stage has run.
    pub(crate) fn into_output(self) -> Result<PipelineOutput, PipelineError> {
        fn take<T>(v: Option<T>, what: &str) -> Result<T, PipelineError> {
            v.ok_or_else(|| {
                PipelineError::CheckpointCorrupt(format!(
                    "checkpoint claims completion but stage output `{what}` is missing"
                ))
            })
        }
        Ok(PipelineOutput {
            post_hashes: take(self.post_hashes, "post_hashes")?,
            fringe_posts: take(self.fringe_posts, "fringe_posts")?,
            clustering: take(self.clustering, "clustering")?,
            medoid_hashes: take(self.medoid_hashes, "medoid_hashes")?,
            medoid_posts: take(self.medoid_posts, "medoid_posts")?,
            site: take(self.site, "site")?,
            entry_meme_ids: take(self.entry_meme_ids, "entry_meme_ids")?,
            annotations: take(self.annotations, "annotations")?,
            occurrences: take(self.occurrences, "occurrences")?,
            screenshot_metrics: self.screenshot_metrics,
            degradations: self.degradations,
        })
    }
}

/// A snapshot of a run after some prefix of completed stages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Fingerprint of the dataset the run was started on.
    pub dataset_fingerprint: u64,
    /// The configuration the run was started under.
    pub config: PipelineConfig,
    /// Stages completed so far, in execution order.
    pub completed: Vec<StageId>,
    /// Their accumulated outputs.
    pub state: StageState,
}

impl Checkpoint {
    /// An empty checkpoint for a fresh run.
    pub fn fresh(dataset: &Dataset, config: PipelineConfig) -> Self {
        Self {
            dataset_fingerprint: dataset_fingerprint(dataset),
            config,
            completed: Vec::new(),
            state: StageState::default(),
        }
    }

    /// Whether every stage has completed.
    pub fn is_complete(&self) -> bool {
        StageId::ALL.iter().all(|s| self.completed.contains(s))
    }

    /// The first stage that has not yet completed.
    pub fn next_stage(&self) -> Option<StageId> {
        StageId::ALL
            .into_iter()
            .find(|s| !self.completed.contains(s))
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        // lint:allow(panic-in-pipeline): vendored serde serialization of plain structs is infallible
        serde_json::to_string(self).expect("checkpoint serializes")
    }

    /// Restore a checkpoint saved with [`Checkpoint::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// FNV-1a fingerprint of a dataset's post skeleton (count, timestamps,
/// communities). Cheap, stable across runs, and sensitive to exactly
/// the inputs whose change would invalidate stage outputs.
pub fn dataset_fingerprint(dataset: &Dataset) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(mut h: u64, word: u64) -> u64 {
        for b in word.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h
    }
    let mut h = eat(OFFSET, dataset.posts.len() as u64);
    for p in &dataset.posts {
        h = eat(h, p.t.to_bits());
        h = eat(h, p.community.index() as u64);
    }
    h
}

/// What a runner invocation produced.
#[derive(Debug)]
pub enum RunnerOutcome {
    /// Every stage ran; here is the assembled output.
    Complete(Box<PipelineOutput>),
    /// The runner stopped after the requested stage (checkpoint saved).
    Halted {
        /// The last stage that completed before halting.
        after: StageId,
    },
}

impl RunnerOutcome {
    /// Unwrap the completed output; panics on [`RunnerOutcome::Halted`].
    pub fn expect_complete(self) -> PipelineOutput {
        match self {
            RunnerOutcome::Complete(out) => *out,
            RunnerOutcome::Halted { after } => {
                // lint:allow(panic-in-pipeline): documented panicking accessor, mirrors Option::expect
                panic!("pipeline halted after stage `{after}`, no output")
            }
        }
    }
}

/// Drives a [`Pipeline`] stage by stage with optional checkpointing.
#[derive(Debug, Clone)]
pub struct PipelineRunner {
    pipeline: Pipeline,
    checkpoint_path: Option<PathBuf>,
    halt_after: Option<StageId>,
}

impl PipelineRunner {
    /// A runner with no checkpointing.
    pub fn new(pipeline: Pipeline) -> Self {
        Self {
            pipeline,
            checkpoint_path: None,
            halt_after: None,
        }
    }

    /// Attach a metrics handle to the underlying pipeline; the runner
    /// additionally records one span per stage under `pipeline/<stage>`,
    /// a `degradation.<slug>` counter per recorded fallback, and
    /// per-stage throughput gauges.
    pub fn with_metrics(mut self, metrics: meme_metrics::Metrics) -> Self {
        self.pipeline = self.pipeline.with_metrics(metrics);
        self
    }

    /// Snapshot a checkpoint to `path` after every completed stage.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Stop (checkpoint saved) after the given stage completes — the
    /// test hook that simulates a run killed mid-pipeline.
    pub fn halt_after(mut self, stage: StageId) -> Self {
        self.halt_after = Some(stage);
        self
    }

    /// Run every stage from scratch, ignoring any existing checkpoint.
    pub fn run(&self, dataset: &Dataset) -> Result<RunnerOutcome, PipelineError> {
        if dataset.posts.is_empty() {
            return Err(PipelineError::EmptyDataset);
        }
        let ckpt = Checkpoint::fresh(dataset, self.pipeline.config().clone());
        self.drive(dataset, ckpt)
    }

    /// Continue from the checkpoint on disk (validated against this
    /// dataset and configuration), or start fresh when none exists.
    pub fn resume(&self, dataset: &Dataset) -> Result<RunnerOutcome, PipelineError> {
        if dataset.posts.is_empty() {
            return Err(PipelineError::EmptyDataset);
        }
        let ckpt = match &self.checkpoint_path {
            Some(path) if path.exists() => self.load(dataset, path)?,
            _ => Checkpoint::fresh(dataset, self.pipeline.config().clone()),
        };
        self.drive(dataset, ckpt)
    }

    /// Load and validate the checkpoint file.
    fn load(&self, dataset: &Dataset, path: &Path) -> Result<Checkpoint, PipelineError> {
        let text = fs::read_to_string(path)
            .map_err(|e| PipelineError::CheckpointIo(format!("read {}: {e}", path.display())))?;
        let ckpt = Checkpoint::from_json(&text)
            .map_err(|e| PipelineError::CheckpointCorrupt(e.to_string()))?;
        let expect = dataset_fingerprint(dataset);
        if ckpt.dataset_fingerprint != expect {
            return Err(PipelineError::CheckpointMismatch(format!(
                "checkpoint was taken on a different dataset \
                 (fingerprint {:#018x}, expected {expect:#018x})",
                ckpt.dataset_fingerprint
            )));
        }
        if ckpt.config != *self.pipeline.config() {
            return Err(PipelineError::CheckpointMismatch(
                "checkpoint was taken under a different pipeline configuration".into(),
            ));
        }
        Ok(ckpt)
    }

    /// Run the stages the checkpoint has not yet completed.
    fn drive(
        &self,
        dataset: &Dataset,
        mut ckpt: Checkpoint,
    ) -> Result<RunnerOutcome, PipelineError> {
        let metrics = self.pipeline.metrics().clone();
        let run_span = metrics.span("pipeline");
        for (idx, stage) in StageId::ALL.into_iter().enumerate() {
            let is_last = idx + 1 == StageId::ALL.len();
            if ckpt.completed.contains(&stage) {
                continue;
            }
            let span = run_span.child(stage.name());
            let degradations_before = ckpt.state.degradations.len();
            self.pipeline.run_stage(stage, dataset, &mut ckpt.state)?;
            let elapsed = span.finish();
            for d in &ckpt.state.degradations[degradations_before..] {
                metrics.inc(&format!("degradation.{}", d.slug()));
            }
            record_throughput(&metrics, stage, elapsed);
            ckpt.completed.push(stage);
            self.save(&ckpt)?;
            if self.halt_after == Some(stage) && !is_last {
                return Ok(RunnerOutcome::Halted { after: stage });
            }
        }
        run_span.finish();
        ckpt.state
            .into_output()
            .map(|out| RunnerOutcome::Complete(Box::new(out)))
    }

    /// Atomically persist the checkpoint (write temp file, then rename)
    /// so a crash mid-write never leaves a truncated checkpoint behind.
    fn save(&self, ckpt: &Checkpoint) -> Result<(), PipelineError> {
        let Some(path) = &self.checkpoint_path else {
            return Ok(());
        };
        let tmp = path.with_extension("ckpt-tmp");
        fs::write(&tmp, ckpt.to_json())
            .map_err(|e| PipelineError::CheckpointIo(format!("write {}: {e}", tmp.display())))?;
        fs::rename(&tmp, path).map_err(|e| {
            PipelineError::CheckpointIo(format!(
                "rename {} -> {}: {e}",
                tmp.display(),
                path.display()
            ))
        })?;
        Ok(())
    }
}

/// Derive a stage's items-per-second gauge from its wall time and the
/// work counter the stage itself recorded. Gauges hold the last value,
/// so on a resumed run they reflect the stages that actually ran.
fn record_throughput(metrics: &meme_metrics::Metrics, stage: StageId, elapsed: f64) {
    if !metrics.is_enabled() || elapsed <= 0.0 {
        return;
    }
    let per_sec = |counter: &str| metrics.counter(counter) as f64 / elapsed;
    match stage {
        StageId::Hash => metrics.gauge("hash.images_per_sec", per_sec("hash.images")),
        StageId::Cluster => metrics.gauge(
            "cluster.neighbor_queries_per_sec",
            per_sec("cluster.neighbor_queries"),
        ),
        StageId::Associate => {
            metrics.gauge("associate.queries_per_sec", per_sec("associate.posts"));
        }
        StageId::Site | StageId::Annotate => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use meme_simweb::SimConfig;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "memes-runner-test-{}-{name}.json",
            std::process::id()
        ));
        p
    }

    #[test]
    fn stage_order_is_stable() {
        let names: Vec<&str> = StageId::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["hash", "cluster", "site", "annotate", "associate"]);
    }

    #[test]
    fn fingerprint_tracks_post_skeleton() {
        let a = SimConfig::tiny(21).generate();
        let b = SimConfig::tiny(22).generate();
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&b));
        assert_eq!(dataset_fingerprint(&a), dataset_fingerprint(&a));
    }

    #[test]
    fn runner_matches_plain_pipeline() {
        let dataset = SimConfig::tiny(23).generate();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let plain = pipeline.run(&dataset).unwrap();
        let staged = PipelineRunner::new(pipeline)
            .run(&dataset)
            .unwrap()
            .expect_complete();
        assert_eq!(plain.to_json(), staged.to_json());
    }

    #[test]
    fn halt_then_resume_equals_uninterrupted() {
        let dataset = SimConfig::tiny(24).generate();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let whole = pipeline.run(&dataset).unwrap();
        for stage in StageId::ALL {
            let path = tmp_path(&format!("halt-{stage}"));
            let _ = fs::remove_file(&path);
            let runner = PipelineRunner::new(pipeline.clone())
                .with_checkpoint(&path)
                .halt_after(stage);
            let outcome = runner.run(&dataset).unwrap();
            let resumed = match outcome {
                RunnerOutcome::Halted { after } => {
                    assert_eq!(after, stage);
                    let ckpt = Checkpoint::from_json(&fs::read_to_string(&path).unwrap()).unwrap();
                    assert!(ckpt.completed.contains(&stage));
                    assert!(!ckpt.is_complete());
                    PipelineRunner::new(pipeline.clone())
                        .with_checkpoint(&path)
                        .resume(&dataset)
                        .unwrap()
                        .expect_complete()
                }
                // Halting after the final stage just completes.
                RunnerOutcome::Complete(out) => *out,
            };
            assert_eq!(whole.to_json(), resumed.to_json(), "stage {stage}");
            let _ = fs::remove_file(&path);
        }
    }

    #[test]
    fn resume_under_different_thread_count_is_byte_identical() {
        // A checkpoint written by a serial run and resumed on 8 threads
        // (or vice versa) must reproduce the uninterrupted serial
        // output byte for byte: stage outputs may never encode thread
        // chunking or HashMap iteration order. The config fingerprint
        // intentionally includes `threads`, so the resuming runner gets
        // a same-threads config and the cross-thread comparison is done
        // against a separately-computed reference.
        let dataset = SimConfig::tiny(27).generate();
        let reference = Pipeline::new(PipelineConfig {
            threads: 1,
            ..PipelineConfig::fast()
        })
        .run(&dataset)
        .unwrap();
        for threads in [1usize, 8] {
            let config = PipelineConfig {
                threads,
                ..PipelineConfig::fast()
            };
            let path = tmp_path(&format!("threads-{threads}"));
            let _ = fs::remove_file(&path);
            let halted = PipelineRunner::new(Pipeline::new(config.clone()))
                .with_checkpoint(&path)
                .halt_after(StageId::Cluster)
                .run(&dataset)
                .unwrap();
            assert!(matches!(halted, RunnerOutcome::Halted { .. }));
            let resumed = PipelineRunner::new(Pipeline::new(config))
                .with_checkpoint(&path)
                .resume(&dataset)
                .unwrap()
                .expect_complete();
            assert_eq!(
                reference.to_json(),
                resumed.to_json(),
                "run/resume with {threads} threads diverged from serial reference"
            );
            let _ = fs::remove_file(&path);
        }
    }

    #[test]
    fn checkpoint_rejects_other_dataset_and_config() {
        let dataset = SimConfig::tiny(25).generate();
        let other = SimConfig::tiny(26).generate();
        let pipeline = Pipeline::new(PipelineConfig::fast());
        let path = tmp_path("mismatch");
        let _ = fs::remove_file(&path);
        let outcome = PipelineRunner::new(pipeline.clone())
            .with_checkpoint(&path)
            .halt_after(StageId::Hash)
            .run(&dataset)
            .unwrap();
        assert!(matches!(outcome, RunnerOutcome::Halted { .. }));

        let err = PipelineRunner::new(pipeline.clone())
            .with_checkpoint(&path)
            .resume(&other)
            .unwrap_err();
        assert!(matches!(err, PipelineError::CheckpointMismatch(_)), "{err}");

        let mut changed = PipelineConfig::fast();
        changed.theta = 5;
        let err = PipelineRunner::new(Pipeline::new(changed))
            .with_checkpoint(&path)
            .resume(&dataset)
            .unwrap_err();
        assert!(matches!(err, PipelineError::CheckpointMismatch(_)), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn empty_dataset_is_typed_error_for_run_and_resume() {
        // Regression: an empty dataset must surface as EmptyDataset from
        // both entry points (never a worker panic), with or without a
        // checkpoint path, at any thread count.
        let mut dataset = SimConfig::tiny(28).generate();
        dataset.posts.clear();
        for threads in [0usize, 1, 8] {
            let pipeline = Pipeline::new(PipelineConfig {
                threads,
                ..PipelineConfig::fast()
            });
            let runner = PipelineRunner::new(pipeline.clone());
            assert!(matches!(
                runner.run(&dataset),
                Err(PipelineError::EmptyDataset)
            ));
            let path = tmp_path(&format!("empty-{threads}"));
            let _ = fs::remove_file(&path);
            let runner = PipelineRunner::new(pipeline).with_checkpoint(&path);
            assert!(matches!(
                runner.resume(&dataset),
                Err(PipelineError::EmptyDataset)
            ));
            let _ = fs::remove_file(&path);
        }
    }

    #[test]
    fn corrupt_checkpoint_is_a_typed_error() {
        let dataset = SimConfig::tiny(27).generate();
        let path = tmp_path("corrupt");
        fs::write(&path, "{ not json").unwrap();
        let err = PipelineRunner::new(Pipeline::new(PipelineConfig::fast()))
            .with_checkpoint(&path)
            .resume(&dataset)
            .unwrap_err();
        assert!(matches!(err, PipelineError::CheckpointCorrupt(_)), "{err}");
        let _ = fs::remove_file(&path);
    }
}
