//! The seven-step processing pipeline (Fig. 2).
//!
//! [`Pipeline::run`] drives a [`meme_simweb::Dataset`] through:
//!
//! 1. **pHash extraction** — render each post's image lazily, hash it,
//!    drop the pixels (the paper: "after computing the pHashes, we
//!    delete the images");
//! 2. **pairwise distances** — multi-index hashing over the fringe
//!    communities' hashes;
//! 3. **clustering** — DBSCAN at `eps = 8`, `minPts = 5`, then medoids;
//! 4. **screenshot removal** — the CNN filter over KYM galleries (or a
//!    ground-truth oracle for fast tests);
//! 5. **cluster annotation** — medoids vs KYM galleries at `θ = 8`,
//!    representative-entry selection;
//! 6. **association** — every post (all five communities) matched
//!    against annotated-cluster medoids at `θ`;
//! 7. **analysis & influence** — per-cluster event streams feeding the
//!    Hawkes influence estimator ([`PipelineOutput::cluster_events`],
//!    [`PipelineOutput::estimate_influence`]).

use crate::metric::ClusterDescriptor;
use crate::quarantine::{QuarantineEntry, QuarantineReason};
use crate::runner::{PipelineRunner, RunnerOutcome, StageId, StageState};
use crate::supervise::{ExecFaults, ItemFault, NoFaults, StageFault};
use meme_annotate::annotator::{annotate_clusters_with_stats, ClusterAnnotation};
use meme_annotate::kym::{KymEntry, KymSite};
use meme_annotate::nn::TrainConfig;
use meme_annotate::screenshot::{ClassifierMetrics, ScreenshotCorpus, ScreenshotFilter};
use meme_annotate::AnnotateError;
use meme_cluster::dbscan::{try_dbscan, ClusterError, Clustering, DbscanParams};
use meme_hawkes::{ClusterInfluence, Event, HawkesError, InfluenceEstimator};
use meme_index::{
    effective_threads, symmetric_neighbors, FallbackIndex, HammingIndex, HashGroups, IndexEngine,
    NeighborStats, QueryScratch,
};
use meme_metrics::Metrics;
use meme_phash::{HashScratch, ImageHasher, PHash, PerceptualHasher};
use meme_simweb::{Community, Dataset, RenderCache, RenderStats};
use meme_stats::dist::DistError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// How many times Step 4 retries CNN training (reseeding each attempt)
/// before falling back to the ground-truth oracle filter.
pub const MAX_TRAIN_ATTEMPTS: usize = 2;

/// How Step 4 decides what a screenshot is.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScreenshotFilterMode {
    /// Train the Appendix-C CNN on a synthetic corpus of the given
    /// scale (fraction of the paper's 28.8K images), then classify.
    Train {
        /// Corpus scale.
        corpus_scale: f64,
        /// CNN training configuration.
        config: TrainConfig,
    },
    /// Use the generator's ground truth (exact, instant) — for tests
    /// and ablations that are not about the classifier.
    Oracle,
    /// No filtering (ablation: how much do screenshots pollute
    /// annotation?).
    Off,
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// DBSCAN parameters for Step 3 (paper: eps 8, minPts 5).
    pub dbscan: DbscanParams,
    /// Annotation/association threshold θ (paper: 8).
    pub theta: u32,
    /// Step-4 mode.
    pub screenshot_filter: ScreenshotFilterMode,
    /// Worker threads for the parallel stages (0 = all cores).
    pub threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            dbscan: DbscanParams::default(),
            theta: 8,
            screenshot_filter: ScreenshotFilterMode::Train {
                corpus_scale: 0.01,
                config: TrainConfig::default(),
            },
            threads: 0,
        }
    }
}

impl PipelineConfig {
    /// A fast configuration for tests: oracle screenshot filter.
    pub fn fast() -> Self {
        Self {
            screenshot_filter: ScreenshotFilterMode::Oracle,
            ..Self::default()
        }
    }
}

/// The substrate failure that sank a stage (the leaf of a
/// [`PipelineError::Stage`]).
#[derive(Debug)]
pub enum StageError {
    /// A Hawkes fit failed.
    Hawkes(HawkesError),
    /// Clustering failed.
    Cluster(ClusterError),
    /// Annotation-side training failed.
    Annotate(AnnotateError),
    /// A statistical distribution was mis-parameterised.
    Stats(DistError),
    /// An I/O failure (rendering corpora, spilling intermediates).
    Io(String),
    /// A transient failure worth retrying (flaky I/O, injected faults);
    /// the supervisor retries these under its [`crate::supervise::StagePolicy`].
    Transient {
        /// What failed, rendered.
        detail: String,
    },
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Hawkes(e) => write!(f, "{e}"),
            Self::Cluster(e) => write!(f, "{e}"),
            Self::Annotate(e) => write!(f, "{e}"),
            Self::Stats(e) => write!(f, "{e}"),
            Self::Io(e) => write!(f, "{e}"),
            Self::Transient { detail } => write!(f, "transient failure: {detail}"),
        }
    }
}

impl std::error::Error for StageError {}

/// Pipeline failure.
#[derive(Debug)]
pub enum PipelineError {
    /// The dataset had no posts at all.
    EmptyDataset,
    /// Influence estimation failed.
    Hawkes(HawkesError),
    /// A stage failed; the tag records where and (when per-cluster
    /// work was involved) which cluster sank it.
    Stage {
        /// The stage that failed.
        stage: StageId,
        /// The cluster being processed, when the failure was per-cluster.
        cluster: Option<usize>,
        /// The underlying substrate error.
        source: StageError,
    },
    /// A stage panicked and the supervisor contained it
    /// (`catch_unwind`); retries were exhausted or disabled.
    StagePanicked {
        /// The stage whose worker panicked.
        stage: StageId,
        /// The panic payload, rendered.
        detail: String,
    },
    /// A checkpoint could not be read or written.
    CheckpointIo(String),
    /// A checkpoint file existed but could not be decoded, or claimed
    /// stages whose outputs it did not carry.
    CheckpointCorrupt(String),
    /// A checkpoint belongs to a different dataset or configuration.
    CheckpointMismatch(String),
    /// The quarantine dead-letter file could not be written.
    QuarantineIo(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyDataset => write!(f, "dataset contains no image posts"),
            Self::Hawkes(e) => write!(f, "influence estimation failed: {e}"),
            Self::Stage {
                stage,
                cluster: Some(c),
                source,
            } => write!(f, "stage `{stage}` failed on cluster {c}: {source}"),
            Self::Stage {
                stage,
                cluster: None,
                source,
            } => write!(f, "stage `{stage}` failed: {source}"),
            Self::StagePanicked { stage, detail } => {
                write!(f, "stage `{stage}` panicked (contained): {detail}")
            }
            Self::CheckpointIo(e) => write!(f, "checkpoint I/O failed: {e}"),
            Self::CheckpointCorrupt(e) => write!(f, "checkpoint is corrupt: {e}"),
            Self::CheckpointMismatch(e) => write!(f, "checkpoint mismatch: {e}"),
            Self::QuarantineIo(e) => write!(f, "quarantine I/O failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Hawkes(e) => Some(e),
            Self::Stage { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<HawkesError> for PipelineError {
    fn from(e: HawkesError) -> Self {
        Self::Hawkes(e)
    }
}

/// A recorded fallback: the pipeline kept going, but a component ran in
/// a degraded mode. Degradations ride along in the output (and thus in
/// checkpoints and reports) so no fallback is ever silent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Degradation {
    /// Step 7 skipped a cluster whose Hawkes fit failed; its influence
    /// contribution is an all-zero matrix.
    HawkesClusterSkipped {
        /// The cluster whose fit failed.
        cluster: usize,
        /// Why (the rendered [`HawkesError`]).
        reason: String,
    },
    /// Step 4 gave up on CNN training and used the ground-truth oracle.
    ScreenshotFilterFellBack {
        /// Training attempts made before falling back.
        attempts: usize,
        /// The last training error.
        reason: String,
    },
    /// A Hamming index degraded from MIH to a slower engine.
    IndexFellBack {
        /// The stage whose index degraded.
        stage: StageId,
        /// The engine actually used.
        engine: IndexEngine,
        /// Why the faster engines were rejected.
        reason: String,
    },
    /// A stage diverted poison items to the quarantine dead-letter file
    /// instead of failing; the run continued without them.
    ItemsQuarantined {
        /// The stage that quarantined the items.
        stage: StageId,
        /// How many items were diverted.
        items: usize,
    },
    /// Resume found the current checkpoint torn or stale and rolled
    /// back to the previous generation (`<path>.prev`).
    CheckpointRolledBack {
        /// Why the current generation was rejected.
        reason: String,
    },
}

impl Degradation {
    /// Short stable label for grouping in summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::HawkesClusterSkipped { .. } => "hawkes cluster skipped",
            Self::ScreenshotFilterFellBack { .. } => "screenshot filter fell back to oracle",
            Self::IndexFellBack { .. } => "hamming index fell back",
            Self::ItemsQuarantined { .. } => "poison items quarantined",
            Self::CheckpointRolledBack { .. } => "checkpoint rolled back",
        }
    }

    /// Stable machine-readable identifier (metric names, JSON keys).
    pub fn slug(&self) -> &'static str {
        match self {
            Self::HawkesClusterSkipped { .. } => "hawkes_cluster_skipped",
            Self::ScreenshotFilterFellBack { .. } => "screenshot_filter_fell_back",
            Self::IndexFellBack { .. } => "index_fell_back",
            Self::ItemsQuarantined { .. } => "items_quarantined",
            Self::CheckpointRolledBack { .. } => "checkpoint_rolled_back",
        }
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::HawkesClusterSkipped { cluster, reason } => {
                write!(
                    f,
                    "cluster {cluster} skipped in influence estimation: {reason}"
                )
            }
            Self::ScreenshotFilterFellBack { attempts, reason } => write!(
                f,
                "screenshot filter fell back to oracle after {attempts} attempts: {reason}"
            ),
            Self::IndexFellBack {
                stage,
                engine,
                reason,
            } => write!(f, "stage `{stage}` index fell back to {engine}: {reason}"),
            Self::ItemsQuarantined { stage, items } => {
                write!(f, "stage `{stage}` quarantined {items} poison item(s)")
            }
            Self::CheckpointRolledBack { reason } => {
                write!(f, "resumed from previous checkpoint generation: {reason}")
            }
        }
    }
}

/// Everything the pipeline produces (Steps 1–6); Step 7 is computed
/// from it on demand.
///
/// Serializable: a completed run can be saved with
/// [`PipelineOutput::to_json`] and resumed later without re-hashing
/// the corpus (the paper's own batch/one-time-task split, §3.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineOutput {
    /// pHash per post, aligned with `dataset.posts`.
    pub post_hashes: Vec<PHash>,
    /// Post indices (into `dataset.posts`) of the fringe-community
    /// images that were clustered, in clustering order.
    pub fringe_posts: Vec<usize>,
    /// The Step-3 clustering over `fringe_posts` positions.
    pub clustering: Clustering,
    /// Medoid hash per cluster.
    pub medoid_hashes: Vec<PHash>,
    /// Post index (into `dataset.posts`) of each cluster's medoid.
    pub medoid_posts: Vec<usize>,
    /// The filtered, hashed KYM site.
    pub site: KymSite,
    /// Ground-truth meme id per site entry (None for dormant entries).
    pub entry_meme_ids: Vec<Option<usize>>,
    /// Step-5 annotations, one per cluster.
    pub annotations: Vec<ClusterAnnotation>,
    /// Step-6 association: annotated-cluster id per post (None when the
    /// post matches no annotated cluster).
    pub occurrences: Vec<Option<usize>>,
    /// Test metrics of the screenshot classifier (Train mode only).
    pub screenshot_metrics: Option<ClassifierMetrics>,
    /// Fallbacks taken while producing this output, in stage order.
    pub degradations: Vec<Degradation>,
}

/// The pipeline driver.
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
    metrics: Metrics,
    /// Execution-fault oracle (chaos testing); [`NoFaults`] in
    /// production, where every consultation is skipped via
    /// [`ExecFaults::enabled`].
    faults: Arc<dyn ExecFaults>,
    /// Which supervised attempt of the current stage this is (0-based);
    /// only fault decisions depend on it, so clean runs are identical
    /// for any value.
    attempt: u32,
}

impl Pipeline {
    /// Create a pipeline with a configuration (metrics disabled).
    pub fn new(config: PipelineConfig) -> Self {
        Self {
            config,
            metrics: Metrics::disabled(),
            faults: Arc::new(NoFaults),
            attempt: 0,
        }
    }

    /// Attach a metrics handle; every stage records counters/spans into
    /// it. A disabled handle (the default) costs one branch per record.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Attach an execution-fault oracle (chaos testing only).
    pub fn with_exec_faults(mut self, faults: Arc<dyn ExecFaults>) -> Self {
        self.faults = faults;
        self
    }

    /// The supervised-attempt number fault decisions key on.
    pub(crate) fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt;
        self
    }

    /// The metrics handle.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Run Steps 1–6 over a dataset.
    ///
    /// Equivalent to driving a [`PipelineRunner`] without a checkpoint;
    /// use the runner directly for checkpointed / resumable runs.
    pub fn run(&self, dataset: &Dataset) -> Result<PipelineOutput, PipelineError> {
        match PipelineRunner::new(self.clone()).run(dataset)? {
            RunnerOutcome::Complete(out) => Ok(*out),
            RunnerOutcome::Halted { .. } => {
                // lint:allow(panic-in-pipeline): new() sets no halt_after, so Halted is unrepresentable
                unreachable!("runner without halt_after always completes")
            }
        }
    }

    /// Execute one stage against the accumulated state.
    pub(crate) fn run_stage(
        &self,
        stage: StageId,
        dataset: &Dataset,
        state: &mut StageState,
    ) -> Result<(), PipelineError> {
        if self.faults.enabled() {
            match self.faults.stage_fault(stage, self.attempt) {
                StageFault::Pass => {}
                StageFault::Panic => {
                    // lint:allow(panic-in-pipeline): deliberate injected fault — the supervisor's catch_unwind must contain it
                    panic!(
                        "injected fault: stage `{stage}` panicked on attempt {}",
                        self.attempt
                    )
                }
                StageFault::Transient => {
                    return Err(PipelineError::Stage {
                        stage,
                        cluster: None,
                        source: StageError::Transient {
                            detail: format!(
                                "injected transient stage fault on attempt {}",
                                self.attempt
                            ),
                        },
                    })
                }
            }
        }
        match stage {
            StageId::Hash => {
                // --- Step 1: pHash extraction (parallel render + hash).
                let (hashes, quarantined) = self.hash_posts(dataset)?;
                state.post_hashes = Some(hashes);
                record_quarantined(state, StageId::Hash, quarantined);
                Ok(())
            }
            StageId::Cluster => self.stage_cluster(dataset, state),
            StageId::Site => {
                // --- Step 4: screenshot filtering of KYM galleries.
                let (site, entry_meme_ids, metrics) =
                    self.build_site(dataset, &mut state.degradations);
                state.site = Some(site);
                state.entry_meme_ids = Some(entry_meme_ids);
                state.screenshot_metrics = metrics;
                Ok(())
            }
            StageId::Annotate => {
                // --- Step 5: cluster annotation.
                let medoid_hashes = req(&state.medoid_hashes, StageId::Annotate)?;
                let site = req(&state.site, StageId::Annotate)?;
                let (annotations, stats) =
                    annotate_clusters_with_stats(medoid_hashes, site, self.config.theta);
                self.metrics
                    .add("annotate.medoid_queries", stats.medoid_queries as u64);
                self.metrics
                    .add("annotate.gallery_hashes", stats.gallery_hashes as u64);
                self.metrics.add(
                    "annotate.annotated_clusters",
                    stats.annotated_clusters as u64,
                );
                state.annotations = Some(annotations);
                Ok(())
            }
            StageId::Associate => self.stage_associate(state),
        }
    }

    /// Steps 2–3: pairwise distances + DBSCAN + medoids over fringe
    /// images, with the index fallback chain.
    fn stage_cluster(
        &self,
        dataset: &Dataset,
        state: &mut StageState,
    ) -> Result<(), PipelineError> {
        let post_hashes = req(&state.post_hashes, StageId::Cluster)?;
        let fringe_posts: Vec<usize> = dataset
            .posts
            .iter()
            .filter(|p| p.community.is_fringe())
            .map(|p| p.id)
            .collect();
        let fringe_hashes: Vec<PHash> = fringe_posts.iter().map(|&i| post_hashes[i]).collect();
        // Collapse exact re-posts before indexing: the index holds one
        // entry per distinct hash, queries run once per distinct hash,
        // and the (engine-independent) item adjacency is recovered
        // through the owner lists.
        let groups = HashGroups::new(&fringe_hashes);
        self.metrics
            .gauge("cluster.dedup_collapse_ratio", groups.collapse_ratio());
        let index = self.build_index(groups.unique().to_vec(), self.config.dbscan.eps, "cluster");
        let fallback = degraded_engine(&index, StageId::Cluster);
        self.metrics
            .add("cluster.fringe_posts", fringe_posts.len() as u64);
        self.metrics
            .add("cluster.neighbor_queries", groups.len_unique() as u64);
        let (neighbors, nstats) =
            symmetric_neighbors(&index, &groups, self.config.dbscan.eps, self.config.threads);
        self.record_neighbor_stats(&nstats);
        let clustering = try_dbscan(&neighbors, self.config.dbscan.min_pts).map_err(|e| {
            PipelineError::Stage {
                stage: StageId::Cluster,
                cluster: None,
                source: StageError::Cluster(e),
            }
        })?;
        self.metrics
            .add("cluster.clusters", clustering.n_clusters() as u64);
        self.metrics
            .add("cluster.noise_posts", clustering.noise_count() as u64);
        let medoid_positions =
            clustering
                .try_medoids(&fringe_hashes)
                .map_err(|e| PipelineError::Stage {
                    stage: StageId::Cluster,
                    cluster: None,
                    source: StageError::Cluster(e),
                })?;
        state.medoid_hashes = Some(medoid_positions.iter().map(|&p| fringe_hashes[p]).collect());
        state.medoid_posts = Some(medoid_positions.iter().map(|&p| fringe_posts[p]).collect());
        state.fringe_posts = Some(fringe_posts);
        state.clustering = Some(clustering);
        state.degradations.extend(fallback);
        Ok(())
    }

    /// Build the fallback index for `radius` queries under a per-engine
    /// build-time span (`index/build/{slug}`, so `--metrics-out` shows
    /// which engine was built and how long it took), then record the
    /// `index.memory_bytes` gauges (global = most recent build; the
    /// stage-scoped variant keeps the cluster and associate indexes
    /// distinguishable) and the engine-choice counter.
    fn build_index(&self, hashes: Vec<PHash>, radius: u32, stage: &str) -> FallbackIndex {
        let (engine, _) = FallbackIndex::plan(&hashes, radius);
        let span = self.metrics.span(&format!("index/build/{}", engine.slug()));
        let index = FallbackIndex::build(hashes, radius);
        span.finish();
        self.metrics
            .inc(&format!("index.engine.{}", index.engine().slug()));
        let bytes = index.memory_bytes() as f64;
        self.metrics.gauge("index.memory_bytes", bytes);
        self.metrics
            .gauge(&format!("index.memory_bytes.{stage}"), bytes);
        index
    }

    /// Roll a pairwise sweep's work counters into the `index.*` family.
    /// All values are sums over per-worker counters, so they are
    /// identical for every thread count.
    fn record_neighbor_stats(&self, s: &NeighborStats) {
        self.metrics.add("index.items", s.items as u64);
        self.metrics.add("index.unique_hashes", s.unique as u64);
        self.metrics.add("index.probes", s.probes);
        self.metrics.add("index.candidates", s.candidates);
        self.metrics.add("index.verified", s.verified);
        self.metrics.add("index.unique_pairs", s.unique_pairs);
    }

    /// Step 6: associate every post to the nearest annotated cluster.
    ///
    /// Association depends only on the post's hash, so posts collapse to
    /// their distinct hashes first: one radius query per distinct hash
    /// (parallelized with the same contiguous-chunk split as
    /// [`Pipeline::hash_posts`], with per-worker [`QueryScratch`]
    /// reuse), then an expansion back to posts through the owner table.
    /// Byte-identical to querying per post, for any thread count.
    fn stage_associate(&self, state: &mut StageState) -> Result<(), PipelineError> {
        let post_hashes = req(&state.post_hashes, StageId::Associate)?;
        let medoid_hashes = req(&state.medoid_hashes, StageId::Associate)?;
        let annotations = req(&state.annotations, StageId::Associate)?;
        let annotated: Vec<usize> = annotations
            .iter()
            .filter(|a| a.is_annotated())
            .map(|a| a.cluster)
            .collect();
        let annotated_hashes: Vec<PHash> = annotated.iter().map(|&c| medoid_hashes[c]).collect();
        let assoc_index = self.build_index(annotated_hashes, self.config.theta, "associate");
        let fallback = degraded_engine(&assoc_index, StageId::Associate);
        let n = post_hashes.len();
        let mut occurrences: Vec<Option<usize>> = vec![None; n];
        let mut quarantined: Vec<QuarantineEntry> = Vec::new();
        if n > 0 && !annotated.is_empty() {
            let groups = HashGroups::new(post_hashes);
            self.metrics
                .gauge("associate.dedup_collapse_ratio", groups.collapse_ratio());
            let n_unique = groups.len_unique();
            self.metrics.add("associate.hash_queries", n_unique as u64);
            let mut unique_occ: Vec<Option<usize>> = vec![None; n_unique];
            let threads = effective_threads(self.config.threads, n_unique);
            let chunk_len = n_unique.div_ceil(threads);
            let theta = self.config.theta;
            let annotated = &annotated;
            let assoc_index = &assoc_index;
            let groups_ref = &groups;
            if !self.faults.enabled() {
                crossbeam::thread::scope(|s| {
                    for (chunk_id, slot_chunk) in unique_occ.chunks_mut(chunk_len).enumerate() {
                        s.spawn(move |_| {
                            let mut scratch = QueryScratch::new();
                            let mut hits = Vec::new();
                            for (off, slot) in slot_chunk.iter_mut().enumerate() {
                                let h = groups_ref.unique()[chunk_id * chunk_len + off];
                                assoc_index.radius_query_into(h, theta, &mut scratch, &mut hits);
                                *slot = hits
                                    .iter()
                                    .min_by_key(|&&pos| (h.distance(assoc_index.hash_at(pos)), pos))
                                    .map(|&pos| annotated[pos]);
                            }
                        });
                    }
                })
                // lint:allow(panic-in-pipeline): crossbeam scope re-raises a worker panic; nothing to recover
                .expect("association worker panicked");
            } else {
                // Fault-aware twin of the loop above: per-item verdicts
                // are collected positionally (chunked exactly like the
                // slots), so thread count cannot reorder them. Faulted
                // items keep the `None` sentinel — a poison hash simply
                // matches no cluster.
                let mut verdicts: Vec<ItemFault> = vec![ItemFault::Pass; n_unique];
                let faults = &*self.faults;
                let attempt = self.attempt;
                crossbeam::thread::scope(|s| {
                    for ((chunk_id, slot_chunk), verdict_chunk) in unique_occ
                        .chunks_mut(chunk_len)
                        .enumerate()
                        .zip(verdicts.chunks_mut(chunk_len))
                    {
                        s.spawn(move |_| {
                            let mut scratch = QueryScratch::new();
                            let mut hits = Vec::new();
                            for (off, (slot, verdict)) in slot_chunk
                                .iter_mut()
                                .zip(verdict_chunk.iter_mut())
                                .enumerate()
                            {
                                let k = chunk_id * chunk_len + off;
                                *verdict = faults.item_fault(StageId::Associate, k, attempt);
                                if *verdict != ItemFault::Pass {
                                    continue;
                                }
                                let h = groups_ref.unique()[k];
                                assoc_index.radius_query_into(h, theta, &mut scratch, &mut hits);
                                *slot = hits
                                    .iter()
                                    .min_by_key(|&&pos| (h.distance(assoc_index.hash_at(pos)), pos))
                                    .map(|&pos| annotated[pos]);
                            }
                        });
                    }
                })
                // lint:allow(panic-in-pipeline): crossbeam scope re-raises a worker panic; nothing to recover
                .expect("association worker panicked");
                // Quarantine coordinates are post indices: map each
                // poisoned unique hash to its first owning post.
                let mut first_owner = vec![usize::MAX; n_unique];
                for i in (0..n).rev() {
                    first_owner[groups.owner_of(i)] = i;
                }
                quarantined = collect_item_verdicts(StageId::Associate, &verdicts, attempt, |k| {
                    first_owner[k]
                })?;
            }
            for (i, slot) in occurrences.iter_mut().enumerate() {
                *slot = unique_occ[groups.owner_of(i)];
            }
        }
        self.metrics.add("associate.posts", n as u64);
        self.metrics.add(
            "associate.matched",
            occurrences.iter().flatten().count() as u64,
        );
        self.metrics
            .add("associate.annotated_medoids", annotated.len() as u64);
        state.occurrences = Some(occurrences);
        state.degradations.extend(fallback);
        record_quarantined(state, StageId::Associate, quarantined);
        Ok(())
    }

    /// Step 1 worker: hash every post's image in parallel.
    ///
    /// Under an active fault oracle, every item's verdict is collected
    /// (deterministically, in a pre-chunked verdict table so thread
    /// count cannot reorder anything): transient item faults abort the
    /// stage with a retryable [`StageError::Transient`]; poison items
    /// keep the `PHash::default()` sentinel and come back as quarantine
    /// entries. The clean path is the original loop, untouched.
    fn hash_posts(
        &self,
        dataset: &Dataset,
    ) -> Result<(Vec<PHash>, Vec<QuarantineEntry>), PipelineError> {
        let n = dataset.posts.len();
        if n == 0 {
            // `.clamp(1, n)` with n = 0 panics (min > max), and a zero
            // chunk length would panic `chunks_mut`; an empty corpus
            // simply has no hashes.
            return Ok((Vec::new(), Vec::new()));
        }
        let threads = effective_threads(self.config.threads, n);
        let chunk_len = n.div_ceil(threads);
        self.metrics.add("hash.images", n as u64);
        // Canonical renders are memoized once and shared read-only by
        // every worker; per-post work is then jitter + the scratch-reuse
        // hash kernel, which steady state allocates nothing.
        // lint:allow(panic-reachable): the cache renders at fixed non-zero IMAGE_SIZE, so Image::filled's contract holds
        let cache = RenderCache::build(dataset);
        let n_chunks = n.div_ceil(chunk_len);
        let mut worker_stats = vec![RenderStats::default(); n_chunks];
        let mut hashes = vec![PHash::default(); n];
        if !self.faults.enabled() {
            crossbeam::thread::scope(|s| {
                for ((chunk_id, slot_chunk), stats) in hashes
                    .chunks_mut(chunk_len)
                    .enumerate()
                    .zip(worker_stats.iter_mut())
                {
                    let cache = &cache;
                    s.spawn(move |_| {
                        // lint:allow(panic-reachable): new() uses the default hash/DCT sizes, which satisfy with_sizes' contract
                        let hasher = PerceptualHasher::new();
                        let mut scratch = HashScratch::new();
                        for (off, slot) in slot_chunk.iter_mut().enumerate() {
                            let post = &dataset.posts[chunk_id * chunk_len + off];
                            // lint:allow(panic-reachable): post canvases render at fixed non-zero dimensions, so Image::filled's contract holds
                            let img = dataset.render_post_cached(post, cache, stats);
                            *slot = hasher.hash_into(img.as_image(), &mut scratch);
                        }
                    });
                }
            })
            // lint:allow(panic-in-pipeline): crossbeam scope re-raises a worker panic; nothing to recover
            .expect("hashing worker panicked");
            self.record_render_stats(&cache, &worker_stats);
            return Ok((hashes, Vec::new()));
        }
        let mut verdicts: Vec<ItemFault> = vec![ItemFault::Pass; n];
        let faults = &*self.faults;
        let attempt = self.attempt;
        crossbeam::thread::scope(|s| {
            for (((chunk_id, slot_chunk), verdict_chunk), stats) in hashes
                .chunks_mut(chunk_len)
                .enumerate()
                .zip(verdicts.chunks_mut(chunk_len))
                .zip(worker_stats.iter_mut())
            {
                let cache = &cache;
                s.spawn(move |_| {
                    // lint:allow(panic-reachable): new() uses the default hash/DCT sizes, which satisfy with_sizes' contract
                    let hasher = PerceptualHasher::new();
                    let mut scratch = HashScratch::new();
                    for (off, (slot, verdict)) in slot_chunk
                        .iter_mut()
                        .zip(verdict_chunk.iter_mut())
                        .enumerate()
                    {
                        let i = chunk_id * chunk_len + off;
                        *verdict = faults.item_fault(StageId::Hash, i, attempt);
                        if *verdict == ItemFault::Pass {
                            let post = &dataset.posts[i];
                            // lint:allow(panic-reachable): post canvases render at fixed non-zero dimensions, so Image::filled's contract holds
                            let img = dataset.render_post_cached(post, cache, stats);
                            *slot = hasher.hash_into(img.as_image(), &mut scratch);
                        }
                        // Faulted items keep the PHash::default() sentinel.
                    }
                });
            }
        })
        // lint:allow(panic-in-pipeline): crossbeam scope re-raises a worker panic; nothing to recover
        .expect("hashing worker panicked");
        self.record_render_stats(&cache, &worker_stats);
        collect_item_verdicts(StageId::Hash, &verdicts, attempt, |i| i).map(|q| (hashes, q))
    }

    /// Publish the hash stage's render-cache accounting: hit/miss and
    /// per-`ImageRef`-kind counters plus cache-size gauges, merged from
    /// the per-worker [`RenderStats`] after the parallel section.
    fn record_render_stats(&self, cache: &RenderCache, worker_stats: &[RenderStats]) {
        let mut stats = RenderStats::default();
        for s in worker_stats {
            stats.merge(s);
        }
        self.metrics.add("hash.render_cache.hits", stats.hits);
        self.metrics.add("hash.render_cache.misses", stats.misses);
        self.metrics
            .gauge("hash.render_cache.entries", cache.entries() as f64);
        self.metrics
            .gauge("hash.render_cache.bytes", cache.bytes() as f64);
        self.metrics
            .add("hash.rendered.meme_variant", stats.meme_variant);
        self.metrics.add("hash.rendered.one_off", stats.one_off);
        self.metrics
            .add("hash.rendered.screenshot", stats.screenshot);
        self.metrics.add("hash.rendered.blank", stats.blank);
    }

    /// Step 4 worker: filter galleries, hash survivors, build the site.
    ///
    /// In Train mode, CNN training is retried [`MAX_TRAIN_ATTEMPTS`]
    /// times with perturbed seeds; if every attempt diverges, the stage
    /// falls back to the ground-truth oracle and records the fallback
    /// rather than failing the run.
    fn build_site(
        &self,
        dataset: &Dataset,
        degradations: &mut Vec<Degradation>,
    ) -> (KymSite, Vec<Option<usize>>, Option<ClassifierMetrics>) {
        let filter = match &self.config.screenshot_filter {
            ScreenshotFilterMode::Train {
                corpus_scale,
                config,
            } => {
                let mut trained = None;
                let mut last_err = String::new();
                for attempt in 0..MAX_TRAIN_ATTEMPTS {
                    self.metrics.inc("site.cnn_train_attempts");
                    let mut cfg = *config;
                    cfg.seed = config.seed.wrapping_add(attempt as u64);
                    let corpus = ScreenshotCorpus::generate(*corpus_scale, cfg.seed);
                    match ScreenshotFilter::try_train(&corpus, &cfg) {
                        Ok(fm) => {
                            trained = Some(fm);
                            break;
                        }
                        Err(e) => {
                            self.metrics.inc("site.cnn_train_failures");
                            last_err = e.to_string();
                        }
                    }
                }
                match trained {
                    Some((filter, metrics)) => Some((Some(filter), Some(metrics))),
                    None => {
                        degradations.push(Degradation::ScreenshotFilterFellBack {
                            attempts: MAX_TRAIN_ATTEMPTS,
                            reason: last_err,
                        });
                        Some((None, None)) // degrade to the oracle
                    }
                }
            }
            ScreenshotFilterMode::Oracle => Some((None, None)),
            ScreenshotFilterMode::Off => None,
        };
        // lint:allow(panic-reachable): new() uses the default hash/DCT sizes, which satisfy with_sizes' contract
        let hasher = PerceptualHasher::new();
        let mut entries = Vec::with_capacity(dataset.kym_raw.entries.len());
        let mut meme_ids = Vec::with_capacity(dataset.kym_raw.entries.len());
        for raw in &dataset.kym_raw.entries {
            let mut gallery = Vec::new();
            for g in &raw.images {
                let keep = match &filter {
                    None => true,                          // Off: keep everything
                    Some((None, _)) => !g.is_screenshot(), // Oracle
                    // lint:allow(panic-reachable): gallery canvases render at fixed non-zero dimensions with validated jitter fractions
                    Some((Some(f), _)) => !f.is_screenshot(&dataset.render_gallery_image(g)),
                };
                if keep {
                    // lint:allow(panic-reachable): gallery canvases render at fixed non-zero dimensions with validated jitter fractions
                    gallery.push(hasher.hash(&dataset.render_gallery_image(g)));
                }
            }
            entries.push(KymEntry {
                id: 0,
                name: raw.name.clone(),
                category: raw.category,
                tags: raw.tags.clone(),
                origin: raw.origin.clone(),
                gallery,
                people: raw.people.clone(),
                cultures: raw.cultures.clone(),
            });
            meme_ids.push(raw.meme_id);
        }
        self.metrics.add("site.entries", entries.len() as u64);
        self.metrics.add(
            "site.gallery_images_kept",
            entries.iter().map(|e| e.gallery.len() as u64).sum(),
        );
        let metrics = filter.and_then(|(_, m)| m);
        (KymSite::new(entries), meme_ids, metrics)
    }
}

/// Fetch a prior stage's output, or report the checkpoint as corrupt
/// (a hand-edited or stale checkpoint can claim stages it never ran).
fn req<T>(slot: &Option<T>, stage: StageId) -> Result<&T, PipelineError> {
    slot.as_ref().ok_or_else(|| {
        PipelineError::CheckpointCorrupt(format!(
            "stage `{stage}` needs output from an earlier stage that is missing"
        ))
    })
}

/// Fold a stage's quarantine batch into the run state: one degradation
/// summarising the batch plus the individual dead-letter entries (the
/// supervisor persists the latter to `quarantine.jsonl`).
fn record_quarantined(state: &mut StageState, stage: StageId, entries: Vec<QuarantineEntry>) {
    if entries.is_empty() {
        return;
    }
    state.degradations.push(Degradation::ItemsQuarantined {
        stage,
        items: entries.len(),
    });
    state.quarantined.extend(entries);
}

/// Turn a stage's per-item fault verdicts into either a retryable
/// [`StageError::Transient`] (any transient verdict aborts the attempt;
/// the supervisor re-runs the whole stage deterministically) or the
/// batch of quarantine entries for the poison verdicts. `coord` maps a
/// verdict index to its post index (identity for the hash stage; the
/// first-owner table for deduplicated association).
fn collect_item_verdicts(
    stage: StageId,
    verdicts: &[ItemFault],
    attempt: u32,
    coord: impl Fn(usize) -> usize,
) -> Result<Vec<QuarantineEntry>, PipelineError> {
    let transient = verdicts
        .iter()
        .filter(|v| **v == ItemFault::Transient)
        .count();
    if transient > 0 {
        let first = verdicts
            .iter()
            .position(|v| *v == ItemFault::Transient)
            .unwrap_or(0);
        return Err(PipelineError::Stage {
            stage,
            cluster: None,
            source: StageError::Transient {
                detail: format!(
                    "{transient} item(s) failed transiently (first: post {})",
                    coord(first)
                ),
            },
        });
    }
    Ok(verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| **v == ItemFault::Poison)
        .map(|(k, _)| QuarantineEntry {
            stage,
            item: coord(k),
            reason: QuarantineReason::PoisonItem {
                attempts: attempt + 1,
                detail: "item failed on every attempt".to_string(),
            },
        })
        .collect())
}

/// The degradation record for an index that fell back, if it did.
fn degraded_engine(index: &FallbackIndex, stage: StageId) -> Option<Degradation> {
    if index.engine() == IndexEngine::Mih {
        return None;
    }
    let reason = index
        .rejections()
        .iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join("; ");
    Some(Degradation::IndexFellBack {
        stage,
        engine: index.engine(),
        reason,
    })
}

impl PipelineOutput {
    /// Ids of clusters that received KYM annotations.
    pub fn annotated_clusters(&self) -> Vec<usize> {
        self.annotations
            .iter()
            .filter(|a| a.is_annotated())
            .map(|a| a.cluster)
            .collect()
    }

    /// The representative KYM entry of a cluster, when annotated.
    pub fn representative_entry(&self, cluster: usize) -> Option<&KymEntry> {
        self.annotations[cluster]
            .representative
            .map(|id| self.site.entry(id))
    }

    /// Whether the cluster's representative entry is politics-related.
    pub fn cluster_is_political(&self, cluster: usize) -> bool {
        self.representative_entry(cluster)
            .is_some_and(|e| e.is_political())
    }

    /// Whether the cluster's representative entry is racism-related.
    pub fn cluster_is_racist(&self, cluster: usize) -> bool {
        self.representative_entry(cluster)
            .is_some_and(|e| e.is_racist())
    }

    /// Step-7 input: the time-sorted event stream of one annotated
    /// cluster across the five communities, from the Step-6
    /// association.
    pub fn cluster_events(&self, dataset: &Dataset, cluster: usize) -> Vec<Event> {
        let mut events: Vec<Event> = dataset
            .posts
            .iter()
            .zip(&self.occurrences)
            .filter(|(_, occ)| **occ == Some(cluster))
            .map(|(p, _)| Event::new(p.t, p.community.index()))
            .collect();
        // total_cmp: NaN times (fault-injected data) must not panic the
        // sort — the Hawkes layer rejects them with a typed error later.
        events.sort_by(|a, b| a.t.total_cmp(&b.t));
        events
    }

    /// Event streams for all annotated clusters, in
    /// [`PipelineOutput::annotated_clusters`] order.
    ///
    /// # Panics
    /// Panics when an annotation or occurrence references a cluster
    /// outside the medoid table — impossible for a pipeline-produced
    /// output, but reachable through a corrupt checkpoint;
    /// [`PipelineOutput::try_all_cluster_events`] returns a typed error
    /// instead.
    pub fn all_cluster_events(&self, dataset: &Dataset) -> Vec<Vec<Event>> {
        match self.try_all_cluster_events(dataset) {
            Ok(streams) => streams,
            // lint:allow(panic-in-pipeline): documented panicking convenience over try_all_cluster_events
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`PipelineOutput::all_cluster_events`]: cluster ids that
    /// point outside the medoid table surface as
    /// [`PipelineError::CheckpointCorrupt`] instead of an index panic.
    pub fn try_all_cluster_events(
        &self,
        dataset: &Dataset,
    ) -> Result<Vec<Vec<Event>>, PipelineError> {
        // One pass over posts, bucketed by cluster.
        let annotated = self.annotated_clusters();
        let n_clusters = self.medoid_hashes.len();
        let mut slot_of = vec![usize::MAX; n_clusters];
        for (slot, &c) in annotated.iter().enumerate() {
            match slot_of.get_mut(c) {
                Some(s) => *s = slot,
                None => {
                    return Err(PipelineError::CheckpointCorrupt(format!(
                        "annotation names cluster {c}, but there are only {n_clusters} medoids"
                    )))
                }
            }
        }
        let mut streams: Vec<Vec<Event>> = vec![Vec::new(); annotated.len()];
        for (p, occ) in dataset.posts.iter().zip(&self.occurrences) {
            if let Some(c) = occ {
                let slot = *slot_of.get(*c).ok_or_else(|| {
                    PipelineError::CheckpointCorrupt(format!(
                        "post {} occurs in cluster {c}, but there are only {n_clusters} medoids",
                        p.id
                    ))
                })?;
                if slot != usize::MAX {
                    streams[slot].push(Event::new(p.t, p.community.index()));
                }
            }
        }
        for s in &mut streams {
            s.sort_by(|a, b| a.t.total_cmp(&b.t));
        }
        Ok(streams)
    }

    /// Step 7: fit a Hawkes model per annotated cluster and aggregate
    /// influence. Returns the per-cluster and total matrices, in
    /// [`PipelineOutput::annotated_clusters`] order.
    pub fn estimate_influence(
        &self,
        dataset: &Dataset,
        estimator: &InfluenceEstimator,
        threads: usize,
    ) -> Result<ClusterInfluence, PipelineError> {
        let streams = self.try_all_cluster_events(dataset)?;
        Ok(estimator.estimate(&streams, dataset.horizon(), threads)?)
    }

    /// Step 7, fault-tolerantly: clusters whose Hawkes fit fails (NaN
    /// times, foreign community ids, non-stationary or diverged EM) are
    /// skipped — contributing zero influence — and each skip comes back
    /// as a [`Degradation::HawkesClusterSkipped`] naming the cluster.
    pub fn estimate_influence_robust(
        &self,
        dataset: &Dataset,
        estimator: &InfluenceEstimator,
        threads: usize,
    ) -> (ClusterInfluence, Vec<Degradation>) {
        self.estimate_influence_instrumented(dataset, estimator, threads, &Metrics::disabled())
    }

    /// [`PipelineOutput::estimate_influence_robust`] with observability:
    /// records the Step-7 span (`pipeline/influence`), per-run EM
    /// iteration counts (total + histogram), final log-likelihood per
    /// fitted cluster, and a `degradation.hawkes_cluster_skipped`
    /// counter per skip.
    pub fn estimate_influence_instrumented(
        &self,
        dataset: &Dataset,
        estimator: &InfluenceEstimator,
        threads: usize,
        metrics: &Metrics,
    ) -> (ClusterInfluence, Vec<Degradation>) {
        let span = metrics.span("pipeline/influence");
        // lint:allow(panic-reachable): this output was produced by the running pipeline, not a deserialized checkpoint; cluster ids are in range
        let streams = self.all_cluster_events(dataset);
        let robust = estimator.estimate_robust(&streams, dataset.horizon(), threads);
        let elapsed = span.finish();
        let annotated = self.annotated_clusters();
        metrics.add("hawkes.clusters_total", streams.len() as u64);
        metrics.add("hawkes.clusters_fitted", robust.fit_stats.len() as u64);
        metrics.add("hawkes.clusters_skipped", robust.skipped.len() as u64);
        let mut iterations_total = 0u64;
        let mut ll_total = 0.0f64;
        for fit in &robust.fit_stats {
            iterations_total += fit.iterations as u64;
            metrics.observe(
                "hawkes.em_iterations",
                &meme_metrics::ITERATION_BUCKETS,
                fit.iterations as f64,
            );
            metrics.gauge(
                &format!("hawkes.cluster.{}.log_likelihood", annotated[fit.cluster]),
                fit.log_likelihood,
            );
            if fit.log_likelihood.is_finite() {
                ll_total += fit.log_likelihood;
            }
        }
        metrics.add("hawkes.em_iterations_total", iterations_total);
        metrics.gauge("hawkes.log_likelihood_total", ll_total);
        if elapsed > 0.0 && !streams.is_empty() {
            metrics.gauge("hawkes.clusters_per_sec", streams.len() as f64 / elapsed);
        }
        let degradations: Vec<Degradation> = robust
            .skipped
            .iter()
            .map(|s| Degradation::HawkesClusterSkipped {
                cluster: annotated[s.cluster],
                reason: s.error.to_string(),
            })
            .collect();
        for d in &degradations {
            metrics.inc(&format!("degradation.{}", d.slug()));
        }
        (robust.influence, degradations)
    }

    /// Degradation counts grouped by kind, in first-seen order — the
    /// report/CLI surface for "what fell back during this run".
    pub fn degradation_summary(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for d in &self.degradations {
            match counts.iter_mut().find(|(k, _)| *k == d.kind()) {
                Some((_, n)) => *n += 1,
                None => counts.push((d.kind(), 1)),
            }
        }
        counts
    }

    /// Custom-metric descriptors plus representative-entry names for
    /// every annotated cluster (in [`PipelineOutput::annotated_clusters`]
    /// order) — the shared input of the Fig. 6 dendrograms, the Fig. 7
    /// graph, and the `memes graph` CLI.
    pub fn annotated_descriptors(&self) -> (Vec<ClusterDescriptor>, Vec<String>) {
        match self.try_annotated_descriptors() {
            Ok(r) => r,
            // lint:allow(panic-in-pipeline): documented panicking convenience over try_annotated_descriptors
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`PipelineOutput::annotated_descriptors`]: annotations
    /// whose cluster id falls outside the medoid table, or whose matched
    /// entry ids fall outside the KYM site — shapes the pipeline never
    /// emits, but a corrupt or stale-schema checkpoint can — surface as
    /// [`PipelineError::CheckpointCorrupt`] instead of an index panic.
    pub fn try_annotated_descriptors(
        &self,
    ) -> Result<(Vec<ClusterDescriptor>, Vec<String>), PipelineError> {
        let mut descriptors = Vec::new();
        let mut labels = Vec::new();
        for ann in self.annotations.iter().filter(|a| a.is_annotated()) {
            let Some(rep_id) = ann.representative else {
                continue; // is_annotated() implies Some, but do not panic on a corrupt checkpoint
            };
            let rep = self.site.get(rep_id).ok_or_else(|| {
                PipelineError::CheckpointCorrupt(format!(
                    "cluster {} has representative entry {rep_id}, but the site has only {} entries",
                    ann.cluster,
                    self.site.len()
                ))
            })?;
            if let Some(m) = ann.matches.iter().find(|m| m.entry_id >= self.site.len()) {
                return Err(PipelineError::CheckpointCorrupt(format!(
                    "cluster {} matched entry {}, but the site has only {} entries",
                    ann.cluster,
                    m.entry_id,
                    self.site.len()
                )));
            }
            let medoid = *self.medoid_hashes.get(ann.cluster).ok_or_else(|| {
                PipelineError::CheckpointCorrupt(format!(
                    "annotation names cluster {}, but there are only {} medoids",
                    ann.cluster,
                    self.medoid_hashes.len()
                ))
            })?;
            descriptors.push(ClusterDescriptor::from_annotation(medoid, ann, &self.site));
            labels.push(rep.name.clone());
        }
        Ok((descriptors, labels))
    }

    /// Serialize a completed run to JSON.
    pub fn to_json(&self) -> String {
        // lint:allow(panic-in-pipeline): vendored serde serialization of plain structs is infallible
        serde_json::to_string(self).expect("pipeline output serializes")
    }

    /// Restore a run saved with [`PipelineOutput::to_json`].
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Number of unique hashes per community (Table 1's last column).
    pub fn unique_hashes(&self, dataset: &Dataset, community: Community) -> usize {
        use std::collections::HashSet;
        let set: HashSet<PHash> = dataset
            .posts
            .iter()
            .filter(|p| p.community == community)
            .map(|p| self.post_hashes[p.id])
            .collect();
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_simweb::SimConfig;

    fn run_tiny() -> (Dataset, PipelineOutput) {
        let dataset = SimConfig::tiny(17).generate();
        let out = Pipeline::new(PipelineConfig::fast()).run(&dataset).unwrap();
        (dataset, out)
    }

    #[test]
    fn pipeline_end_to_end_shapes() {
        let (dataset, out) = run_tiny();
        assert_eq!(out.post_hashes.len(), dataset.posts.len());
        assert_eq!(out.occurrences.len(), dataset.posts.len());
        assert_eq!(out.annotations.len(), out.clustering.n_clusters());
        assert_eq!(out.medoid_hashes.len(), out.clustering.n_clusters());
        assert!(
            out.clustering.n_clusters() > 5,
            "clusters {}",
            out.clustering.n_clusters()
        );
        // Noise exists but is not everything.
        let nf = out.clustering.noise_fraction();
        assert!((0.2..0.95).contains(&nf), "noise fraction {nf}");
    }

    #[test]
    fn some_clusters_are_annotated_some_not() {
        let (_, out) = run_tiny();
        let annotated = out.annotated_clusters().len();
        let total = out.clustering.n_clusters();
        assert!(annotated > 0, "no annotated clusters");
        assert!(
            annotated < total,
            "all {total} clusters annotated — uncatalogued mass missing"
        );
    }

    #[test]
    fn clustering_recovers_ground_truth_memes() {
        use meme_cluster::purity::majority_purity;
        let (dataset, out) = run_tiny();
        // Image-family truth (the paper's audit granularity): variants
        // of one meme merging at eps = 8 is not a false positive, and a
        // screenshot family is a legitimate (if meme-less) cluster.
        let truth: Vec<Option<meme_simweb::PostTruth>> = out
            .fringe_posts
            .iter()
            .map(|&i| dataset.posts[i].truth_key())
            .collect();
        let purity = majority_purity(&out.clustering, &truth);
        assert!(purity > 0.95, "cluster purity {purity}");
    }

    #[test]
    fn annotations_match_ground_truth_memes() {
        // For annotated clusters, the representative entry should
        // usually be the true meme of the cluster's medoid post.
        let (dataset, out) = run_tiny();
        let mut correct = 0usize;
        let mut total = 0usize;
        for ann in out.annotations.iter().filter(|a| a.is_annotated()) {
            let medoid_post = out.medoid_posts[ann.cluster];
            let Some((true_meme, _)) = dataset.posts[medoid_post].true_variant() else {
                continue;
            };
            total += 1;
            let rep = ann.representative.unwrap();
            if out.entry_meme_ids[rep] == Some(true_meme) {
                correct += 1;
            }
        }
        assert!(total > 0);
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.8, "annotation accuracy {acc} over {total}");
    }

    #[test]
    fn association_covers_mainstream_communities() {
        let (dataset, out) = run_tiny();
        for c in [Community::Twitter, Community::Reddit] {
            let matched = dataset
                .posts
                .iter()
                .zip(&out.occurrences)
                .filter(|(p, occ)| p.community == c && occ.is_some())
                .count();
            assert!(matched > 0, "{} has no meme matches", c.name());
        }
    }

    #[test]
    fn association_is_mostly_correct() {
        // Posts whose image is a meme variant should map to a cluster
        // whose medoid is the same variant (when that variant was
        // clustered + annotated).
        let (dataset, out) = run_tiny();
        let mut good = 0usize;
        let mut bad = 0usize;
        for (post, occ) in dataset.posts.iter().zip(&out.occurrences) {
            let (Some(cluster), Some((meme, variant))) = (occ, post.true_variant()) else {
                continue;
            };
            let medoid_post = out.medoid_posts[*cluster];
            match dataset.posts[medoid_post].true_variant() {
                Some((m, v)) if m == meme && v == variant => good += 1,
                _ => bad += 1,
            }
        }
        assert!(good > 0);
        let precision = good as f64 / (good + bad) as f64;
        assert!(precision > 0.9, "association precision {precision}");
    }

    #[test]
    fn cluster_events_are_sorted_and_complete() {
        let (dataset, out) = run_tiny();
        let annotated = out.annotated_clusters();
        let streams = out.all_cluster_events(&dataset);
        assert_eq!(streams.len(), annotated.len());
        let total: usize = streams.iter().map(|s| s.len()).sum();
        let matched = out.occurrences.iter().flatten().count();
        assert_eq!(total, matched);
        for s in &streams {
            for w in s.windows(2) {
                assert!(w[0].t <= w[1].t);
            }
        }
        // Spot-check one stream against the per-cluster accessor.
        if let Some(&c) = annotated.first() {
            assert_eq!(streams[0], out.cluster_events(&dataset, c));
        }
    }

    #[test]
    fn influence_estimation_runs_end_to_end() {
        let (dataset, out) = run_tiny();
        let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
        let inf = out.estimate_influence(&dataset, &estimator, 2).unwrap();
        let events: f64 = inf.total.events_per_community().iter().sum();
        let matched = out.occurrences.iter().flatten().count() as f64;
        assert!((events - matched).abs() < 1e-6);
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let mut dataset = SimConfig::tiny(18).generate();
        dataset.posts.clear();
        let err = Pipeline::new(PipelineConfig::fast()).run(&dataset);
        assert!(matches!(err, Err(PipelineError::EmptyDataset)));
    }

    #[test]
    fn hash_posts_handles_empty_dataset_without_panicking() {
        // Regression: `.clamp(1, 0)` panics with min > max; the hash
        // stage must instead return an empty vector (the runner's typed
        // EmptyDataset error guards the public entry points, but the
        // worker itself must stay total).
        let mut dataset = SimConfig::tiny(18).generate();
        dataset.posts.clear();
        for threads in [0usize, 1, 8] {
            let pipeline = Pipeline::new(PipelineConfig {
                threads,
                ..PipelineConfig::fast()
            });
            let (hashes, quarantined) = pipeline.hash_posts(&dataset).unwrap();
            assert!(hashes.is_empty());
            assert!(quarantined.is_empty());
        }
    }

    #[test]
    fn associate_output_is_byte_identical_across_thread_counts() {
        let dataset = SimConfig::tiny(31).generate();
        let reference = Pipeline::new(PipelineConfig {
            threads: 1,
            ..PipelineConfig::fast()
        })
        .run(&dataset)
        .unwrap();
        for threads in [2usize, 8] {
            let out = Pipeline::new(PipelineConfig {
                threads,
                ..PipelineConfig::fast()
            })
            .run(&dataset)
            .unwrap();
            // Field-level checks first, so a determinism regression
            // names the stage that drifted instead of dumping two JSON
            // blobs: cluster ID assignment order (Step 3), medoid
            // selection (Step 3/5 input), annotations (Step 5), and
            // per-post association (Step 6).
            assert_eq!(
                reference.clustering.labels(),
                out.clustering.labels(),
                "{threads} threads changed cluster ID assignment order"
            );
            assert_eq!(
                reference.medoid_posts, out.medoid_posts,
                "{threads} threads changed medoid selection"
            );
            assert_eq!(
                reference.medoid_hashes, out.medoid_hashes,
                "{threads} threads changed medoid hashes"
            );
            assert_eq!(
                reference.annotations, out.annotations,
                "{threads} threads changed stage_annotate output"
            );
            assert_eq!(
                reference.occurrences, out.occurrences,
                "{threads} threads changed per-post associations"
            );
            assert_eq!(
                reference.to_json(),
                out.to_json(),
                "{threads} threads diverged from serial output"
            );
        }
    }

    #[test]
    fn metrics_capture_stage_counters_and_influence_stats() {
        use meme_metrics::Registry;
        use std::sync::Arc;

        let dataset = SimConfig::tiny(17).generate();
        let registry = Arc::new(Registry::new());
        let metrics = Metrics::from_registry(Arc::clone(&registry));
        let pipeline = Pipeline::new(PipelineConfig::fast()).with_metrics(metrics.clone());
        let out = PipelineRunner::new(pipeline)
            .run(&dataset)
            .unwrap()
            .expect_complete();
        let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
        let (_inf, _deg) = out.estimate_influence_instrumented(&dataset, &estimator, 2, &metrics);

        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["hash.images"],
            dataset.posts.len() as u64,
            "hash counter"
        );
        assert_eq!(snap.counters["associate.posts"], dataset.posts.len() as u64);
        assert_eq!(
            snap.counters["cluster.clusters"],
            out.clustering.n_clusters() as u64
        );
        assert_eq!(
            snap.counters["annotate.annotated_clusters"],
            out.annotated_clusters().len() as u64
        );
        assert!(snap.counters.keys().any(|k| k.starts_with("index.engine.")));
        assert!(snap.counters["hawkes.clusters_fitted"] > 0);
        assert!(snap.counters["hawkes.em_iterations_total"] > 0);
        // One span per stage plus the run parent and the influence span.
        for name in [
            "pipeline",
            "pipeline/hash",
            "pipeline/cluster",
            "pipeline/site",
            "pipeline/annotate",
            "pipeline/associate",
            "pipeline/influence",
        ] {
            assert!(snap.spans.contains_key(name), "missing span {name}");
        }
        assert!(snap.gauges.contains_key("hash.images_per_sec"));
        assert!(snap.histograms.contains_key("hawkes.em_iterations"));
    }

    #[test]
    fn metrics_counters_are_deterministic_across_thread_counts() {
        use meme_metrics::Registry;
        use std::sync::Arc;

        let dataset = SimConfig::tiny(32).generate();
        let count_with = |threads: usize| {
            let registry = Arc::new(Registry::new());
            let pipeline = Pipeline::new(PipelineConfig {
                threads,
                ..PipelineConfig::fast()
            })
            .with_metrics(Metrics::from_registry(Arc::clone(&registry)));
            pipeline.run(&dataset).unwrap();
            registry.snapshot().counters
        };
        let reference = count_with(1);
        assert_eq!(reference, count_with(2));
        assert_eq!(reference, count_with(8));
    }

    #[test]
    fn screenshot_posts_form_unannotated_clusters() {
        use meme_simweb::ImageRef;
        let (dataset, out) = run_tiny();
        // Screenshot families cluster (the paper's §4.1.1 observation)…
        let screenshot_clusters: Vec<usize> = (0..out.clustering.n_clusters())
            .filter(|&c| {
                matches!(
                    dataset.posts[out.medoid_posts[c]].image,
                    ImageRef::Screenshot { .. }
                )
            })
            .collect();
        assert!(
            !screenshot_clusters.is_empty(),
            "no screenshot clusters formed"
        );
        // …and with the screenshot filter active, none of them carries a
        // KYM annotation (their only possible gallery matches were
        // filtered in Step 4).
        for &c in &screenshot_clusters {
            assert!(
                !out.annotations[c].is_annotated(),
                "screenshot cluster {c} spuriously annotated"
            );
        }
    }

    #[test]
    fn filter_off_mode_keeps_screenshots_in_galleries() {
        let dataset = SimConfig::tiny(19).generate();
        let with = Pipeline::new(PipelineConfig::fast()).run(&dataset).unwrap();
        let without = Pipeline::new(PipelineConfig {
            screenshot_filter: ScreenshotFilterMode::Off,
            ..PipelineConfig::fast()
        })
        .run(&dataset)
        .unwrap();
        assert!(without.site.total_gallery_images() > with.site.total_gallery_images());
    }

    #[test]
    fn influence_with_zero_annotated_clusters_is_zero_not_an_abort() {
        // Regression: a run where no cluster earned a KYM annotation
        // used to abort the process inside the Hawkes estimator
        // (`chunks_mut(0)`); through the robust entry point it must be
        // the zero result with no degradations.
        let (dataset, mut out) = run_tiny();
        for ann in &mut out.annotations {
            ann.matches.clear();
            ann.representative = None;
        }
        assert!(out.annotated_clusters().is_empty());
        let estimator = InfluenceEstimator::new(Community::COUNT, 2.0);
        let (influence, degradations) = out.estimate_influence_robust(&dataset, &estimator, 2);
        assert!(influence.per_cluster.is_empty());
        assert!(degradations.is_empty());
        let strict = out.estimate_influence(&dataset, &estimator, 2).unwrap();
        assert!(strict.per_cluster.is_empty());
    }

    #[test]
    fn mangled_artifact_accessors_return_typed_errors() {
        // A pipeline never emits these shapes, but a corrupt or
        // stale-schema checkpoint can; each accessor must answer with
        // `CheckpointCorrupt`, not an index panic.
        let (dataset, out) = run_tiny();
        assert!(!out.annotated_clusters().is_empty());

        // Annotation cluster id past the medoid table.
        let mut bad = out.clone();
        let victim = bad
            .annotations
            .iter()
            .position(|a| a.is_annotated())
            .unwrap();
        bad.annotations[victim].cluster = bad.medoid_hashes.len() + 7;
        assert!(matches!(
            bad.try_all_cluster_events(&dataset),
            Err(PipelineError::CheckpointCorrupt(_))
        ));
        assert!(matches!(
            bad.try_annotated_descriptors(),
            Err(PipelineError::CheckpointCorrupt(_))
        ));

        // Occurrence pointing past the medoid table.
        let mut bad = out.clone();
        bad.occurrences[0] = Some(bad.medoid_hashes.len() + 7);
        assert!(matches!(
            bad.try_all_cluster_events(&dataset),
            Err(PipelineError::CheckpointCorrupt(_))
        ));

        // Representative / matched entry ids past the KYM site.
        let mut bad = out.clone();
        bad.annotations[victim].representative = Some(bad.site.len() + 7);
        assert!(matches!(
            bad.try_annotated_descriptors(),
            Err(PipelineError::CheckpointCorrupt(_))
        ));
        let mut bad = out.clone();
        if let Some(m) = bad.annotations[victim].matches.first_mut() {
            m.entry_id = bad.site.len() + 7;
        }
        assert!(matches!(
            bad.try_annotated_descriptors(),
            Err(PipelineError::CheckpointCorrupt(_))
        ));

        // The intact output still satisfies both accessors.
        assert!(out.try_all_cluster_events(&dataset).is_ok());
        assert!(out.try_annotated_descriptors().is_ok());
    }
}
