//! Meme phylogenies — the Fig. 6 dendrogram machinery (§4.1.2).
//!
//! "Intuitively, clusters that look alike and/or are part of the same
//! meme are grouped together under the same branch of an evolutionary
//! tree. We use the custom distance metric … aiming to infer the
//! phylogenetic relationship between variants of memes." The paper's
//! worked example is the frog-meme family: 525 clusters falling into
//! four large branches (Apu Apustaja, Sad Frog, Pepe, Smug Frog).

use crate::metric::{ClusterDescriptor, ClusterDistance};
use meme_cluster::hier::{Dendrogram, Linkage};
use serde::{Deserialize, Serialize};

/// A phylogeny over a set of labeled clusters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phylogeny {
    /// Display label per leaf (e.g. `4@smug-frog` in the paper's
    /// community@meme notation).
    pub labels: Vec<String>,
    /// The dendrogram (leaves in `labels` order).
    pub dendrogram: Dendrogram,
}

impl Phylogeny {
    /// Build from descriptors under the custom metric with average
    /// linkage (the paper's choice). Returns `None` for fewer than two
    /// clusters.
    pub fn build(
        descriptors: &[ClusterDescriptor],
        labels: Vec<String>,
        metric: &ClusterDistance,
    ) -> Option<Self> {
        if descriptors.len() < 2 || descriptors.len() != labels.len() {
            return None;
        }
        let condensed = metric.condensed_matrix(descriptors);
        let dendrogram = Dendrogram::build(descriptors.len(), &condensed, Linkage::Average)?;
        Some(Self { labels, dendrogram })
    }

    /// Cut into families at a threshold (the paper cuts the frog tree
    /// at ≈ 0.45) and return `(family id per leaf, family count)`.
    pub fn families(&self, threshold: f64) -> (Vec<usize>, usize) {
        let labels = self.dendrogram.cut(threshold);
        let count = labels.iter().copied().max().map_or(0, |m| m + 1);
        (labels, count)
    }

    /// Group leaf labels by family at a threshold, largest family
    /// first — the textual rendering of Fig. 6 used by `repro-fig6`.
    pub fn family_listing(&self, threshold: f64) -> Vec<Vec<&str>> {
        let (fams, count) = self.families(threshold);
        let mut out: Vec<Vec<&str>> = vec![Vec::new(); count];
        for (leaf, &f) in fams.iter().enumerate() {
            out[f].push(self.labels[leaf].as_str());
        }
        out.sort_by_key(|v| std::cmp::Reverse(v.len()));
        out
    }

    /// Newick serialization of the tree (heights as branch lengths),
    /// for external dendrogram renderers.
    pub fn to_newick(&self) -> String {
        let n = self.dendrogram.n_leaves();
        let merges = self.dendrogram.merges();
        // node id -> newick string and height at which it was created.
        let mut repr: Vec<(String, f64)> = self
            .labels
            .iter()
            .map(|l| (l.replace([',', '(', ')', ':', ';'], "_"), 0.0))
            .collect();
        for m in merges {
            let (sa, ha) = repr[m.a].clone();
            let (sb, hb) = repr[m.b].clone();
            let branch_a = (m.height - ha).max(0.0);
            let branch_b = (m.height - hb).max(0.0);
            repr.push((format!("({sa}:{branch_a:.4},{sb}:{branch_b:.4})"), m.height));
        }
        // An empty dendrogram (no labels, no merges) renders as the
        // empty tree `;` instead of panicking.
        let root = repr.last().map(|(s, _)| s.clone()).unwrap_or_default();
        let _ = n;
        format!("{root};")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_phash::PHash;
    use std::collections::HashSet;

    fn frog(medoid: PHash, meme: &str) -> ClusterDescriptor {
        ClusterDescriptor {
            medoid,
            annotated: true,
            memes: HashSet::from([meme.to_string()]),
            people: HashSet::new(),
            cultures: HashSet::from(["Frog Memes".to_string()]),
        }
    }

    /// Two frog memes, three clusters each; within-meme medoids are
    /// close, across-meme medoids are far.
    fn frog_fixture() -> (Vec<ClusterDescriptor>, Vec<String>) {
        let smug = PHash(0x0F0F_0F0F_0F0F_0F0F);
        let sad = PHash(0xF0F0_0000_FFFF_AAAA);
        let mut ds = Vec::new();
        let mut labels = Vec::new();
        for k in 0..3u8 {
            ds.push(frog(smug.with_flipped_bits(&[k]), "Smug Frog"));
            labels.push(format!("4@smug-frog-{k}"));
            ds.push(frog(sad.with_flipped_bits(&[k]), "Sad Frog"));
            labels.push(format!("D@sad-frog-{k}"));
        }
        (ds, labels)
    }

    #[test]
    fn needs_at_least_two_leaves() {
        let (ds, labels) = frog_fixture();
        assert!(
            Phylogeny::build(&ds[..1], labels[..1].to_vec(), &ClusterDistance::default()).is_none()
        );
        assert!(Phylogeny::build(&ds, labels[..2].to_vec(), &ClusterDistance::default()).is_none());
    }

    #[test]
    fn memes_separate_into_families() {
        let (ds, labels) = frog_fixture();
        let p = Phylogeny::build(&ds, labels, &ClusterDistance::default()).unwrap();
        let (fams, count) = p.families(0.45);
        assert_eq!(count, 2, "families {fams:?}");
        // All smug leaves share a family distinct from sad leaves.
        assert_eq!(fams[0], fams[2]);
        assert_eq!(fams[1], fams[3]);
        assert_ne!(fams[0], fams[1]);
    }

    #[test]
    fn family_listing_groups_labels() {
        let (ds, labels) = frog_fixture();
        let p = Phylogeny::build(&ds, labels, &ClusterDistance::default()).unwrap();
        let listing = p.family_listing(0.45);
        assert_eq!(listing.len(), 2);
        for family in &listing {
            let smug = family.iter().filter(|l| l.contains("smug")).count();
            assert!(smug == 0 || smug == family.len(), "mixed family {family:?}");
        }
    }

    #[test]
    fn newick_is_well_formed() {
        let (ds, labels) = frog_fixture();
        let p = Phylogeny::build(&ds, labels, &ClusterDistance::default()).unwrap();
        let nw = p.to_newick();
        assert!(nw.ends_with(';'));
        assert_eq!(nw.matches('(').count(), nw.matches(')').count());
        assert_eq!(nw.matches('(').count(), 5); // n-1 internal nodes
        assert!(nw.contains("4@smug-frog-0"));
    }

    #[test]
    fn cut_extremes() {
        let (ds, labels) = frog_fixture();
        let p = Phylogeny::build(&ds, labels, &ClusterDistance::default()).unwrap();
        let (_, all_separate) = p.families(-0.1);
        assert_eq!(all_separate, 6);
        let (_, all_joined) = p.families(1.1);
        assert_eq!(all_joined, 1);
    }
}
