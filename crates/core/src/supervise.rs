//! Supervised stage execution (DESIGN.md §11).
//!
//! [`SupervisedRunner`] wraps the bare [`PipelineRunner`] loop with the
//! survival machinery a production batch run needs:
//!
//! * **Bounded, deterministic retry/backoff** — each stage attempt runs
//!   under a [`StagePolicy`]; retryable failures (transient stage and
//!   item faults, I/O errors, contained panics) are retried up to
//!   `max_attempts`, with exponential backoff measured in **logical
//!   ticks** derived from the policy seed (never wall-clock: backoff is
//!   accounting, not sleeping, so runs stay deterministic and the
//!   `wallclock-outside-metrics` lint stays green).
//! * **Panic containment** — every attempt runs under `catch_unwind`;
//!   a panicking stage becomes a typed
//!   [`PipelineError::StagePanicked`], never an abort. A failed attempt
//!   is rolled back field-by-field (each [`StageState`] field is owned
//!   by exactly one stage, and the ledgers are append-only), so a
//!   half-finished attempt can never leak into the next — without
//!   cloning the accumulated state on the happy path.
//! * **Poison-item quarantine** — items the pipeline diverts to
//!   [`StageState::quarantined`] are persisted to a `quarantine.jsonl`
//!   dead-letter file after every stage.
//! * **Checkpoint write retries and rollback** — persistence failures
//!   are retried under the same policy; on resume, a torn or stale
//!   current checkpoint automatically falls back to the previous
//!   generation (`<path>.prev`), recording a
//!   [`Degradation::CheckpointRolledBack`] — never a silent fresh run.
//!
//! Every decision is deterministic: a retried, resumed, or rolled-back
//! run produces output byte-identical to an uninterrupted clean run
//! (the chaos suite in `tests/chaos_exec.rs` holds this line).

use crate::pipeline::{Degradation, Pipeline, PipelineError, PipelineOutput, StageError};
use crate::quarantine::write_quarantine;
use crate::runner::{
    load_validated, persist_checkpoint, prev_checkpoint_path, record_throughput, Checkpoint,
    CheckpointMedium, DiskMedium, MediumError, RunnerOutcome, StageId, StageState,
};
use meme_simweb::{Dataset, ExecFaultSpec, ExecItemFault, ExecStageFault, ExecWriteFault};
use meme_stats::child_seed;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// What an execution-fault oracle does to one stage attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageFault {
    /// Run normally.
    Pass,
    /// Panic mid-stage (containment exercise).
    Panic,
    /// Fail with a retryable transient error.
    Transient,
}

/// What an execution-fault oracle does to one item of a stage attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemFault {
    /// Process normally.
    Pass,
    /// Fail this attempt; succeed on a later one.
    Transient,
    /// Fail every attempt — quarantine material.
    Poison,
}

/// The execution-fault oracle the pipeline consults at its fault
/// points. Production uses [`NoFaults`]; the chaos suite adapts a
/// [`meme_simweb::ExecFaultSpec`] through [`SpecFaults`].
pub trait ExecFaults: fmt::Debug + Send + Sync {
    /// Whether any fault can ever fire (lets hot loops skip per-item
    /// consultation entirely).
    fn enabled(&self) -> bool;
    /// The fault for one attempt of a stage.
    fn stage_fault(&self, stage: StageId, attempt: u32) -> StageFault;
    /// The fault for one item of a stage on one attempt.
    fn item_fault(&self, stage: StageId, item: usize, attempt: u32) -> ItemFault;
}

/// The production oracle: injects nothing, costs one `bool` check.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl ExecFaults for NoFaults {
    fn enabled(&self) -> bool {
        false
    }

    fn stage_fault(&self, _stage: StageId, _attempt: u32) -> StageFault {
        StageFault::Pass
    }

    fn item_fault(&self, _stage: StageId, _item: usize, _attempt: u32) -> ItemFault {
        ItemFault::Pass
    }
}

/// Adapts the simulator's substrate-free [`ExecFaultSpec`] (stages
/// addressed by name) to the pipeline's typed fault points.
#[derive(Debug, Clone)]
pub struct SpecFaults(pub ExecFaultSpec);

impl ExecFaults for SpecFaults {
    fn enabled(&self) -> bool {
        self.0.is_active()
    }

    fn stage_fault(&self, stage: StageId, attempt: u32) -> StageFault {
        match self.0.stage_fault(stage.name(), attempt) {
            ExecStageFault::Pass => StageFault::Pass,
            ExecStageFault::Panic => StageFault::Panic,
            ExecStageFault::Transient => StageFault::Transient,
        }
    }

    fn item_fault(&self, stage: StageId, item: usize, attempt: u32) -> ItemFault {
        match self.0.item_fault(stage.name(), item, attempt) {
            ExecItemFault::Pass => ItemFault::Pass,
            ExecItemFault::Transient => ItemFault::Transient,
            ExecItemFault::Poison => ItemFault::Poison,
        }
    }
}

/// A [`CheckpointMedium`] that injects the write faults an
/// [`ExecFaultSpec`] schedules: write *k* can fail outright or be torn
/// (a prefix lands on disk and the call still reports success — the
/// lying-fsync crash). Reads and renames pass through to disk.
#[derive(Debug)]
pub struct FaultyMedium {
    spec: ExecFaultSpec,
    writes: AtomicUsize,
    disk: DiskMedium,
}

impl FaultyMedium {
    /// Wrap the disk with a write-fault schedule.
    pub fn new(spec: ExecFaultSpec) -> Self {
        Self {
            spec,
            writes: AtomicUsize::new(0),
            disk: DiskMedium,
        }
    }

    /// How many writes have been attempted through this medium.
    pub fn writes(&self) -> usize {
        self.writes.load(Ordering::Relaxed)
    }
}

impl CheckpointMedium for FaultyMedium {
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), MediumError> {
        let k = self.writes.fetch_add(1, Ordering::Relaxed);
        match self.spec.write_fault(k) {
            ExecWriteFault::Pass => self.disk.write(path, bytes),
            ExecWriteFault::Fail => Err(MediumError {
                op: "write",
                path: path.display().to_string(),
                detail: format!("injected write failure (write #{k})"),
            }),
            ExecWriteFault::Torn { keep_fraction } => {
                let keep = ((bytes.len() as f64) * keep_fraction.clamp(0.0, 1.0)) as usize;
                // The torn write *reports success*: the bytes are gone
                // but nobody knows yet. decode_checkpoint finds out.
                self.disk.write(path, &bytes[..keep.min(bytes.len())])
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), MediumError> {
        self.disk.rename(from, to)
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>, MediumError> {
        self.disk.read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.disk.exists(path)
    }
}

/// Per-stage retry/backoff policy. All schedule decisions are pure
/// functions of `(seed, stage, attempt)` — deterministic, wall-clock
/// free.
#[derive(Debug, Clone)]
pub struct StagePolicy {
    /// Attempts per stage before the last error is returned (≥ 1).
    pub max_attempts: u32,
    /// Attempts per checkpoint write before giving up (≥ 1).
    pub save_attempts: u32,
    /// Base backoff in logical ticks; attempt *a* backs off
    /// `base << a` ticks plus seeded jitter in `[0, base << a)`.
    pub base_backoff_ticks: u64,
    /// Seed for the jitter draws.
    pub seed: u64,
}

impl Default for StagePolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            save_attempts: 3,
            base_backoff_ticks: 2,
            seed: 0x5EED,
        }
    }
}

impl StagePolicy {
    /// The logical backoff before retrying `stage` after failed attempt
    /// `attempt` (0-based): truncated exponential plus deterministic
    /// jitter. Ticks are accounting units recorded in metrics and the
    /// supervision report — nothing sleeps.
    pub fn backoff_ticks(&self, stage: StageId, attempt: u32) -> u64 {
        let scale = self
            .base_backoff_ticks
            .saturating_mul(1u64 << attempt.min(20));
        if scale == 0 {
            return 0;
        }
        let stage_tag = StageId::ALL
            .iter()
            .position(|s| *s == stage)
            .unwrap_or(StageId::ALL.len()) as u64;
        let jitter = child_seed(child_seed(self.seed, stage_tag), u64::from(attempt)) % scale;
        scale + jitter
    }
}

/// Retry/backoff bookkeeping for one stage that needed retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRetries {
    /// The stage.
    pub stage: StageId,
    /// Retries performed (attempts beyond the first).
    pub retries: u32,
    /// Logical backoff ticks accumulated before its retries.
    pub backoff_ticks: u64,
}

/// What the supervisor did to keep a run alive.
#[derive(Debug, Clone, Default)]
pub struct SupervisionReport {
    /// Stages that needed retries, in execution order.
    pub retries: Vec<StageRetries>,
    /// Panics contained by `catch_unwind` across all attempts.
    pub panics_contained: u32,
    /// Total logical backoff ticks across all retries.
    pub total_backoff_ticks: u64,
    /// Items sitting in quarantine at the end of the run.
    pub quarantined_items: usize,
    /// Whether resume rolled back to the previous checkpoint generation.
    pub rolled_back: bool,
    /// Checkpoint generations successfully persisted.
    pub checkpoint_writes: u32,
    /// Checkpoint persist attempts that failed and were retried.
    pub checkpoint_write_retries: u32,
}

impl SupervisionReport {
    /// Total retries across all stages.
    pub fn total_retries(&self) -> u32 {
        self.retries.iter().map(|r| r.retries).sum()
    }
}

/// A supervised run's outcome plus its supervision bookkeeping.
#[derive(Debug)]
pub struct SupervisedRun {
    /// What the runner produced.
    pub outcome: RunnerOutcome,
    /// What supervision had to do along the way.
    pub report: SupervisionReport,
}

impl SupervisedRun {
    /// Unwrap the completed output; panics on a halted run (mirrors
    /// [`RunnerOutcome::expect_complete`]).
    pub fn expect_complete(self) -> PipelineOutput {
        self.outcome.expect_complete()
    }
}

/// Drives a [`Pipeline`] stage by stage under a [`StagePolicy`]: retry
/// with deterministic backoff, contain panics, quarantine poison items,
/// persist checkpoints through a (possibly fault-injected) medium, and
/// roll back to the previous checkpoint generation when the current one
/// is damaged.
#[derive(Debug)]
pub struct SupervisedRunner {
    pipeline: Pipeline,
    policy: StagePolicy,
    checkpoint_path: Option<PathBuf>,
    quarantine_path: Option<PathBuf>,
    halt_after: Option<StageId>,
    medium: Arc<dyn CheckpointMedium>,
}

impl SupervisedRunner {
    /// A supervised runner with the default policy, the real disk, and
    /// no checkpoint or quarantine files.
    pub fn new(pipeline: Pipeline) -> Self {
        Self {
            pipeline,
            policy: StagePolicy::default(),
            checkpoint_path: None,
            quarantine_path: None,
            halt_after: None,
            medium: Arc::new(DiskMedium),
        }
    }

    /// Attach a metrics handle (also wired into the pipeline's stages).
    pub fn with_metrics(mut self, metrics: meme_metrics::Metrics) -> Self {
        self.pipeline = self.pipeline.with_metrics(metrics);
        self
    }

    /// Snapshot a checkpoint to `path` after every completed stage.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Persist quarantined items to `path` (JSON Lines) after every
    /// stage that quarantined anything.
    pub fn with_quarantine(mut self, path: impl Into<PathBuf>) -> Self {
        self.quarantine_path = Some(path.into());
        self
    }

    /// Override the retry/backoff policy.
    pub fn with_policy(mut self, policy: StagePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Route checkpoint persistence through a custom medium (chaos
    /// testing: [`FaultyMedium`]).
    pub fn with_medium(mut self, medium: Arc<dyn CheckpointMedium>) -> Self {
        self.medium = medium;
        self
    }

    /// Attach an execution-fault oracle to the pipeline's fault points.
    pub fn with_exec_faults(mut self, faults: Arc<dyn ExecFaults>) -> Self {
        self.pipeline = self.pipeline.with_exec_faults(faults);
        self
    }

    /// Stop (checkpoint saved) after the given stage completes.
    pub fn halt_after(mut self, stage: StageId) -> Self {
        self.halt_after = Some(stage);
        self
    }

    /// Run every stage from scratch, ignoring any existing checkpoint.
    pub fn run(&self, dataset: &Dataset) -> Result<SupervisedRun, PipelineError> {
        if dataset.posts.is_empty() {
            return Err(PipelineError::EmptyDataset);
        }
        let ckpt = Checkpoint::fresh(dataset, self.pipeline.config().clone());
        self.drive(dataset, ckpt, SupervisionReport::default())
    }

    /// Continue from the checkpoint on disk. A torn or stale current
    /// generation falls back to `<path>.prev` when that previous
    /// generation is intact and matches this run — recording a
    /// [`Degradation::CheckpointRolledBack`] — and is otherwise the
    /// original typed error. Never a silent fresh run.
    pub fn resume(&self, dataset: &Dataset) -> Result<SupervisedRun, PipelineError> {
        if dataset.posts.is_empty() {
            return Err(PipelineError::EmptyDataset);
        }
        let mut report = SupervisionReport::default();
        let ckpt = match &self.checkpoint_path {
            Some(path) if self.medium.exists(path) => {
                match load_validated(&*self.medium, path, dataset, self.pipeline.config()) {
                    Ok(ckpt) => ckpt,
                    Err(PipelineError::CheckpointCorrupt(detail)) => {
                        self.roll_back(dataset, path, detail, &mut report)?
                    }
                    Err(e) => return Err(e),
                }
            }
            _ => Checkpoint::fresh(dataset, self.pipeline.config().clone()),
        };
        self.drive(dataset, ckpt, report)
    }

    /// Attempt rollback to the previous checkpoint generation.
    fn roll_back(
        &self,
        dataset: &Dataset,
        path: &Path,
        detail: String,
        report: &mut SupervisionReport,
    ) -> Result<Checkpoint, PipelineError> {
        let prev = prev_checkpoint_path(path);
        if !self.medium.exists(&prev) {
            return Err(PipelineError::CheckpointCorrupt(format!(
                "{detail} (no previous generation to roll back to)"
            )));
        }
        let mut ckpt = match load_validated(&*self.medium, &prev, dataset, self.pipeline.config()) {
            Ok(ckpt) => ckpt,
            // The current generation's defect is the primary error;
            // the unusable prev only annotates it.
            Err(e) => {
                return Err(PipelineError::CheckpointCorrupt(format!(
                    "{detail} (previous generation unusable too: {e})"
                )))
            }
        };
        let metrics = self.pipeline.metrics();
        metrics.inc("checkpoint.rollbacks");
        report.rolled_back = true;
        ckpt.state
            .degradations
            .push(Degradation::CheckpointRolledBack { reason: detail });
        Ok(ckpt)
    }

    /// Run the stages the checkpoint has not yet completed, each under
    /// the retry/backoff/containment policy.
    fn drive(
        &self,
        dataset: &Dataset,
        mut ckpt: Checkpoint,
        mut report: SupervisionReport,
    ) -> Result<SupervisedRun, PipelineError> {
        let metrics = self.pipeline.metrics().clone();
        let run_span = metrics.span("pipeline");
        for (idx, stage) in StageId::ALL.into_iter().enumerate() {
            let is_last = idx + 1 == StageId::ALL.len();
            if ckpt.completed.contains(&stage) {
                continue;
            }
            let mut attempt: u32 = 0;
            let mut stage_retries: u32 = 0;
            let mut stage_ticks: u64 = 0;
            loop {
                let pipeline = self.pipeline.clone().with_attempt(attempt);
                let span = run_span.child(stage.name());
                let degradations_before = ckpt.state.degradations.len();
                let quarantined_before = ckpt.state.quarantined.len();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    pipeline.run_stage(stage, dataset, &mut ckpt.state)
                }));
                let error = match outcome {
                    Ok(Ok(())) => {
                        let elapsed = span.finish();
                        for d in &ckpt.state.degradations[degradations_before..] {
                            metrics.inc(&format!("degradation.{}", d.slug()));
                        }
                        record_throughput(&metrics, stage, elapsed);
                        break;
                    }
                    Ok(Err(e)) => e,
                    Err(payload) => {
                        metrics.inc("supervise.panics_contained");
                        report.panics_contained += 1;
                        PipelineError::StagePanicked {
                            stage,
                            detail: panic_text(payload),
                        }
                    }
                };
                span.finish();
                // A failed attempt may have half-filled the state;
                // roll its writes back so retries start clean.
                reset_stage(
                    stage,
                    &mut ckpt.state,
                    degradations_before,
                    quarantined_before,
                );
                if !retryable(&error) || attempt + 1 >= self.policy.max_attempts {
                    return Err(error);
                }
                let ticks = self.policy.backoff_ticks(stage, attempt);
                metrics.inc("supervise.retries");
                metrics.inc(&format!("supervise.retries.{stage}"));
                metrics.add("supervise.backoff_ticks", ticks);
                stage_retries += 1;
                stage_ticks += ticks;
                attempt += 1;
            }
            if stage_retries > 0 {
                report.total_backoff_ticks += stage_ticks;
                report.retries.push(StageRetries {
                    stage,
                    retries: stage_retries,
                    backoff_ticks: stage_ticks,
                });
            }
            ckpt.completed.push(stage);
            self.flush_quarantine(&ckpt.state, &metrics, &mut report)?;
            self.save(&ckpt, &metrics, &mut report)?;
            metrics.gauge("checkpoint.generation", ckpt.completed.len() as f64);
            if self.halt_after == Some(stage) && !is_last {
                return Ok(SupervisedRun {
                    outcome: RunnerOutcome::Halted { after: stage },
                    report,
                });
            }
        }
        run_span.finish();
        report.quarantined_items = ckpt.state.quarantined.len();
        ckpt.state.into_output().map(|out| SupervisedRun {
            outcome: RunnerOutcome::Complete(Box::new(out)),
            report,
        })
    }

    /// Persist the accumulated quarantine to the dead-letter file.
    fn flush_quarantine(
        &self,
        state: &StageState,
        metrics: &meme_metrics::Metrics,
        report: &mut SupervisionReport,
    ) -> Result<(), PipelineError> {
        report.quarantined_items = state.quarantined.len();
        metrics.gauge(
            "supervise.quarantined_items",
            state.quarantined.len() as f64,
        );
        let Some(path) = &self.quarantine_path else {
            return Ok(());
        };
        if state.quarantined.is_empty() {
            return Ok(());
        }
        write_quarantine(path, &state.quarantined)
            .map_err(|e| PipelineError::QuarantineIo(e.to_string()))
    }

    /// Persist the checkpoint, retrying failures under the policy.
    fn save(
        &self,
        ckpt: &Checkpoint,
        metrics: &meme_metrics::Metrics,
        report: &mut SupervisionReport,
    ) -> Result<(), PipelineError> {
        let Some(path) = &self.checkpoint_path else {
            return Ok(());
        };
        let mut attempt: u32 = 0;
        loop {
            match persist_checkpoint(&*self.medium, path, ckpt) {
                Ok(()) => {
                    metrics.inc("checkpoint.writes");
                    report.checkpoint_writes += 1;
                    return Ok(());
                }
                Err(e) => {
                    if attempt + 1 >= self.policy.save_attempts {
                        return Err(e);
                    }
                    metrics.inc("checkpoint.write_retries");
                    report.checkpoint_write_retries += 1;
                    let ticks = self
                        .policy
                        .backoff_ticks(ckpt.next_stage().unwrap_or(StageId::Associate), attempt);
                    metrics.add("supervise.backoff_ticks", ticks);
                    report.total_backoff_ticks += ticks;
                    attempt += 1;
                }
            }
        }
    }
}

/// Undo a failed attempt's partial writes.
///
/// Each [`StageState`] field is filled by exactly one stage and the
/// degradation/quarantine ledgers are append-only, so clearing the
/// stage's own fields and truncating the ledgers to their pre-attempt
/// lengths restores the state exactly — without the supervisor having
/// to clone the (potentially large) accumulated state on every attempt.
fn reset_stage(stage: StageId, state: &mut StageState, degradations: usize, quarantined: usize) {
    state.degradations.truncate(degradations);
    state.quarantined.truncate(quarantined);
    match stage {
        StageId::Hash => state.post_hashes = None,
        StageId::Cluster => {
            state.fringe_posts = None;
            state.clustering = None;
            state.medoid_hashes = None;
            state.medoid_posts = None;
        }
        StageId::Site => {
            state.site = None;
            state.entry_meme_ids = None;
            state.screenshot_metrics = None;
        }
        StageId::Annotate => state.annotations = None,
        StageId::Associate => state.occurrences = None,
    }
}

/// Whether the supervisor should retry after this error.
fn retryable(e: &PipelineError) -> bool {
    match e {
        PipelineError::StagePanicked { .. } => true,
        PipelineError::Stage { source, .. } => {
            matches!(source, StageError::Transient { .. } | StageError::Io(_))
        }
        _ => false,
    }
}

/// Render a panic payload (`&str` and `String` payloads carry the
/// message; anything else is labelled opaquely).
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_exponentially_bounded() {
        let policy = StagePolicy::default();
        for stage in StageId::ALL {
            for attempt in 0..6 {
                let a = policy.backoff_ticks(stage, attempt);
                let b = policy.backoff_ticks(stage, attempt);
                assert_eq!(a, b, "backoff must be deterministic");
                let scale = policy.base_backoff_ticks * (1 << attempt);
                assert!(
                    (scale..2 * scale).contains(&a),
                    "attempt {attempt}: {a} outside [{scale}, {})",
                    2 * scale
                );
            }
        }
        // Different stages see different jitter (the draws are keyed).
        let hash0 = policy.backoff_ticks(StageId::Hash, 3);
        let any_differs = StageId::ALL[1..]
            .iter()
            .any(|&s| policy.backoff_ticks(s, 3) != hash0);
        assert!(any_differs, "jitter must be stage-keyed");
    }

    #[test]
    fn zero_base_backoff_is_zero_ticks() {
        let policy = StagePolicy {
            base_backoff_ticks: 0,
            ..StagePolicy::default()
        };
        assert_eq!(policy.backoff_ticks(StageId::Hash, 0), 0);
        assert_eq!(policy.backoff_ticks(StageId::Hash, 5), 0);
    }

    #[test]
    fn no_faults_is_inert() {
        let f = NoFaults;
        assert!(!f.enabled());
        assert_eq!(f.stage_fault(StageId::Hash, 0), StageFault::Pass);
        assert_eq!(f.item_fault(StageId::Associate, 7, 0), ItemFault::Pass);
    }

    #[test]
    fn spec_faults_adapt_stage_names() {
        let f = SpecFaults(ExecFaultSpec::persistent_panic(1, "cluster"));
        assert!(f.enabled());
        assert_eq!(f.stage_fault(StageId::Cluster, 4), StageFault::Panic);
        assert_eq!(f.stage_fault(StageId::Hash, 0), StageFault::Pass);
    }

    #[test]
    fn panic_text_renders_common_payloads() {
        assert_eq!(panic_text(Box::new("boom")), "boom");
        assert_eq!(panic_text(Box::new("boom".to_string())), "boom");
        assert_eq!(panic_text(Box::new(17u32)), "non-string panic payload");
    }

    #[test]
    fn retryable_covers_the_taxonomy() {
        assert!(retryable(&PipelineError::StagePanicked {
            stage: StageId::Hash,
            detail: String::new(),
        }));
        assert!(retryable(&PipelineError::Stage {
            stage: StageId::Hash,
            cluster: None,
            source: StageError::Transient {
                detail: String::new(),
            },
        }));
        assert!(retryable(&PipelineError::Stage {
            stage: StageId::Site,
            cluster: None,
            source: StageError::Io(String::new()),
        }));
        assert!(!retryable(&PipelineError::EmptyDataset));
        assert!(!retryable(&PipelineError::CheckpointCorrupt(String::new())));
    }

    #[test]
    fn reset_stage_undoes_only_the_failed_stages_writes() {
        let mut state = StageState {
            post_hashes: Some(Vec::new()),
            ..StageState::default()
        };
        let degradations = state.degradations.len();
        let quarantined = state.quarantined.len();

        // A half-finished Cluster attempt: partial fields plus a ledger
        // entry that must not survive the rollback.
        state.fringe_posts = Some(vec![1, 2]);
        state.medoid_posts = Some(vec![1]);
        state.degradations.push(Degradation::CheckpointRolledBack {
            reason: "attempt residue".to_string(),
        });
        reset_stage(StageId::Cluster, &mut state, degradations, quarantined);

        assert!(state.fringe_posts.is_none());
        assert!(state.clustering.is_none());
        assert!(state.medoid_hashes.is_none());
        assert!(state.medoid_posts.is_none());
        assert!(state.degradations.is_empty());
        assert!(state.quarantined.is_empty());
        assert!(
            state.post_hashes.is_some(),
            "completed earlier stages must be untouched"
        );
    }
}
