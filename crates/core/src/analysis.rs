//! Analysis functions behind every table and figure of §3–§4.
//!
//! Each function consumes the [`PipelineOutput`] (plus the generating
//! [`Dataset`]) and returns typed rows; the `meme-bench` repro binaries
//! render them with [`crate::report`].

use crate::pipeline::PipelineOutput;
use meme_annotate::annotator::{annotate_clusters, clusters_per_entry, ClusterAnnotation};
use meme_annotate::kym::KymCategory;
use meme_cluster::dbscan::{dbscan, Clustering, DbscanParams};
use meme_cluster::purity::cluster_false_positive_fractions;
use meme_index::{symmetric_neighbors, HashGroups, MihIndex};
use meme_phash::PHash;
use meme_simweb::{Community, Dataset, SUBREDDITS};
use meme_stats::timeseries::DailySeries;
use serde::{Deserialize, Serialize};

/// Meme-group filter used across Figs. 8–16 and Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemeFilter {
    /// Every annotated meme.
    All,
    /// Racism-group memes only.
    Racist,
    /// Politics-group memes only.
    Political,
}

impl MemeFilter {
    /// Whether a cluster passes this filter.
    pub fn accepts(self, output: &PipelineOutput, cluster: usize) -> bool {
        match self {
            MemeFilter::All => true,
            MemeFilter::Racist => output.cluster_is_racist(cluster),
            MemeFilter::Political => output.cluster_is_political(cluster),
        }
    }
}

// ---------------------------------------------------------------- Table 1

/// One row of Table 1 (dataset overview).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Platform name.
    pub platform: String,
    /// Total posts (text + image).
    pub posts: u64,
    /// Posts carrying an image.
    pub posts_with_images: u64,
    /// Images collected.
    pub images: u64,
    /// Unique pHashes.
    pub unique_phashes: u64,
}

/// Build Table 1. The paper folds The_Donald into Reddit's platform
/// row; we do the same and append the KYM row.
pub fn table1(dataset: &Dataset, output: &PipelineOutput) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for (label, members) in [
        ("Twitter", vec![Community::Twitter]),
        ("Reddit", vec![Community::Reddit, Community::TheDonald]),
        ("/pol/", vec![Community::Pol]),
        ("Gab", vec![Community::Gab]),
    ] {
        let posts: u64 = members.iter().map(|&c| dataset.total_posts(c)).sum();
        let with_images: u64 = members
            .iter()
            .map(|&c| dataset.posts_of(c).count() as u64)
            .sum();
        let unique: usize = {
            use std::collections::HashSet;
            let set: HashSet<PHash> = dataset
                .posts
                .iter()
                .filter(|p| members.contains(&p.community))
                .map(|p| output.post_hashes[p.id])
                .collect();
            set.len()
        };
        rows.push(Table1Row {
            platform: label.to_string(),
            posts,
            posts_with_images: with_images,
            images: with_images,
            unique_phashes: unique as u64,
        });
    }
    // KYM row: every entry "post" carries its gallery.
    let kym_images = output.site.total_gallery_images() as u64;
    let unique_kym: usize = {
        use std::collections::HashSet;
        let set: HashSet<PHash> = output
            .site
            .entries
            .iter()
            .flat_map(|e| e.gallery.iter().copied())
            .collect();
        set.len()
    };
    rows.push(Table1Row {
        platform: "KYM".to_string(),
        posts: output.site.len() as u64,
        posts_with_images: output.site.len() as u64,
        images: kym_images,
        unique_phashes: unique_kym as u64,
    });
    rows
}

// ----------------------------------------------- Per-community clustering

/// A per-community Steps-2–5 run: the paper clusters /pol/,
/// The_Donald, and Gab separately for Tables 2 and 3.
#[derive(Debug, Clone)]
pub struct CommunityClustering {
    /// The community.
    pub community: Community,
    /// Post indices (into `dataset.posts`) in clustering order.
    pub post_indices: Vec<usize>,
    /// The DBSCAN result.
    pub clustering: Clustering,
    /// Medoid hash per cluster.
    pub medoid_hashes: Vec<PHash>,
    /// Medoid post index per cluster.
    pub medoid_posts: Vec<usize>,
    /// Step-5 annotations against the pipeline's filtered site.
    pub annotations: Vec<ClusterAnnotation>,
}

/// Run Steps 2–5 for a single fringe community, reusing the pipeline's
/// hashes and filtered KYM site.
pub fn cluster_community(
    dataset: &Dataset,
    output: &PipelineOutput,
    community: Community,
    params: DbscanParams,
    theta: u32,
    threads: usize,
) -> CommunityClustering {
    let post_indices: Vec<usize> = dataset.posts_of(community).map(|p| p.id).collect();
    let hashes: Vec<PHash> = post_indices
        .iter()
        .map(|&i| output.post_hashes[i])
        .collect();
    // Same collapsed path as the pipeline's cluster stage: index the
    // distinct hashes only, expand through the owner table.
    let groups = HashGroups::new(&hashes);
    // lint:allow(panic-reachable): eps is a hash-distance threshold far below MihIndex::new's 64-band limit
    let index = MihIndex::new(groups.unique().to_vec(), params.eps);
    let (neighbors, _) = symmetric_neighbors(&index, &groups, params.eps, threads);
    // lint:allow(panic-reachable): min_pts >= 1 comes from validated clustering parameters; dbscan's contract holds
    let clustering = dbscan(&neighbors, params.min_pts);
    // lint:allow(panic-reachable): the clustering comes straight from dbscan, so every cluster id has members
    let medoid_positions = clustering.medoids(&hashes);
    let medoid_hashes: Vec<PHash> = medoid_positions.iter().map(|&p| hashes[p]).collect();
    let medoid_posts: Vec<usize> = medoid_positions.iter().map(|&p| post_indices[p]).collect();
    let annotations = annotate_clusters(&medoid_hashes, &output.site, theta);
    CommunityClustering {
        community,
        post_indices,
        clustering,
        medoid_hashes,
        medoid_posts,
        annotations,
    }
}

// ---------------------------------------------------------------- Table 2

/// One row of Table 2 (clustering statistics per fringe community).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Platform name.
    pub platform: String,
    /// Images clustered.
    pub images: u64,
    /// Percent labeled noise.
    pub noise_pct: f64,
    /// Clusters found.
    pub clusters: u64,
    /// Clusters with KYM annotations.
    pub annotated: u64,
    /// Percent of clusters annotated.
    pub annotated_pct: f64,
}

/// Build Table 2 from per-community clusterings.
pub fn table2(community_runs: &[CommunityClustering]) -> Vec<Table2Row> {
    community_runs
        .iter()
        .map(|run| {
            let clusters = run.clustering.n_clusters() as u64;
            let annotated = run.annotations.iter().filter(|a| a.is_annotated()).count() as u64;
            Table2Row {
                platform: run.community.name().to_string(),
                images: run.post_indices.len() as u64,
                noise_pct: 100.0 * run.clustering.noise_fraction(),
                clusters,
                annotated,
                annotated_pct: if clusters > 0 {
                    100.0 * annotated as f64 / clusters as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

// --------------------------------------------------------- Tables 3, 4, 5

/// A top-entry row (Tables 3–5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopEntryRow {
    /// KYM entry name.
    pub entry: String,
    /// Entry category name.
    pub category: String,
    /// Count (clusters for Table 3, posts for Tables 4/5).
    pub count: u64,
    /// Percent of the community total.
    pub pct: f64,
}

/// Table 3: top KYM entries by number of annotated clusters in one
/// community's clustering.
pub fn top_entries_by_clusters(
    run: &CommunityClustering,
    output: &PipelineOutput,
    n: usize,
) -> Vec<TopEntryRow> {
    use std::collections::HashMap;
    let total_clusters = run.clustering.n_clusters().max(1) as f64;
    let mut counts: HashMap<usize, u64> = HashMap::new();
    for ann in &run.annotations {
        if let Some(rep) = ann.representative {
            *counts.entry(rep).or_insert(0) += 1;
        }
    }
    let mut rows: Vec<TopEntryRow> = counts
        .into_iter()
        .map(|(entry_id, count)| {
            let e = output.site.entry(entry_id);
            TopEntryRow {
                entry: e.name.clone(),
                category: e.category.name().to_string(),
                count,
                pct: 100.0 * count as f64 / total_clusters,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.entry.cmp(&b.entry)));
    rows.truncate(n);
    rows
}

/// Tables 4/5: top entries by number of matched posts in one community
/// (optionally restricted to a KYM category, e.g. `Person` for
/// Table 5). Percentages are over all matched posts of the community.
pub fn top_entries_by_posts(
    dataset: &Dataset,
    output: &PipelineOutput,
    community: Community,
    category: Option<KymCategory>,
    n: usize,
) -> Vec<TopEntryRow> {
    use std::collections::HashMap;
    let mut counts: HashMap<usize, u64> = HashMap::new();
    let mut total = 0u64;
    for (post, occ) in dataset.posts.iter().zip(&output.occurrences) {
        if post.community != community {
            continue;
        }
        let Some(cluster) = occ else { continue };
        let Some(rep) = output.annotations[*cluster].representative else {
            continue;
        };
        total += 1;
        *counts.entry(rep).or_insert(0) += 1;
    }
    let total = total.max(1) as f64;
    let mut rows: Vec<TopEntryRow> = counts
        .into_iter()
        .filter(|(entry_id, _)| category.is_none_or(|c| output.site.entry(*entry_id).category == c))
        .map(|(entry_id, count)| {
            let e = output.site.entry(entry_id);
            TopEntryRow {
                entry: e.name.clone(),
                category: e.category.name().to_string(),
                count,
                pct: 100.0 * count as f64 / total,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.entry.cmp(&b.entry)));
    rows.truncate(n);
    rows
}

// ---------------------------------------------------------------- Table 6

/// One row of Table 6 (top subreddits).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubredditRow {
    /// Subreddit name.
    pub subreddit: String,
    /// Matched meme posts in the subreddit.
    pub posts: u64,
    /// Percent over all matched Reddit meme posts.
    pub pct: f64,
}

/// Table 6: subreddits ranked by meme posts under a filter. Reddit and
/// The_Donald posts are combined (the paper analyzes the Reddit
/// platform as a whole here).
pub fn table6(
    dataset: &Dataset,
    output: &PipelineOutput,
    filter: MemeFilter,
    n: usize,
) -> Vec<SubredditRow> {
    let mut counts = vec![0u64; SUBREDDITS.len()];
    let mut total = 0u64;
    for (post, occ) in dataset.posts.iter().zip(&output.occurrences) {
        if !matches!(post.community, Community::Reddit | Community::TheDonald) {
            continue;
        }
        let Some(cluster) = occ else { continue };
        if !filter.accepts(output, *cluster) {
            continue;
        }
        total += 1;
        if let Some(s) = post.subreddit {
            counts[s] += 1;
        }
    }
    let total = total.max(1) as f64;
    let mut rows: Vec<SubredditRow> = counts
        .into_iter()
        .enumerate()
        .filter(|(_, c)| *c > 0)
        .map(|(i, posts)| SubredditRow {
            subreddit: SUBREDDITS[i].to_string(),
            posts,
            pct: 100.0 * posts as f64 / total,
        })
        .collect();
    rows.sort_by(|a, b| b.posts.cmp(&a.posts).then(a.subreddit.cmp(&b.subreddit)));
    rows.truncate(n);
    rows
}

// ---------------------------------------------------------------- Table 7

/// Table 7: matched meme events per community.
pub fn table7(dataset: &Dataset, output: &PipelineOutput) -> Vec<(String, u64)> {
    let mut counts = [0u64; Community::COUNT];
    for (post, occ) in dataset.posts.iter().zip(&output.occurrences) {
        if occ.is_some() {
            counts[post.community.index()] += 1;
        }
    }
    Community::ALL
        .iter()
        .map(|c| (c.name().to_string(), counts[c.index()]))
        .collect()
}

// ------------------------------------------------------------------ Fig 8

/// Fig. 8: per-community daily percentage of posts containing memes
/// under a filter. Returns `(community name, per-day percents)`.
pub fn fig8_series(
    dataset: &Dataset,
    output: &PipelineOutput,
    filter: MemeFilter,
) -> Vec<(String, Vec<f64>)> {
    let horizon = dataset.horizon_days;
    // The paper plots /pol/, Reddit (incl. T_D), Twitter, Gab.
    let groups: [(&str, Vec<Community>); 4] = [
        ("/pol/", vec![Community::Pol]),
        ("Reddit", vec![Community::Reddit, Community::TheDonald]),
        ("Twitter", vec![Community::Twitter]),
        ("Gab", vec![Community::Gab]),
    ];
    groups
        .iter()
        .map(|(label, members)| {
            let mut meme_series = DailySeries::new(horizon);
            for (post, occ) in dataset.posts.iter().zip(&output.occurrences) {
                if !members.contains(&post.community) {
                    continue;
                }
                let Some(cluster) = occ else { continue };
                if filter.accepts(output, *cluster) {
                    meme_series.record(post.t);
                }
            }
            let mut totals = vec![0u64; horizon];
            for &c in members {
                for (day, &count) in dataset.daily_totals[c.index()].iter().enumerate() {
                    totals[day] += count;
                }
            }
            let percents: Vec<f64> = meme_series
                .counts()
                .iter()
                .zip(&totals)
                .map(|(&m, &t)| {
                    if t == 0 {
                        0.0
                    } else {
                        100.0 * m as f64 / t as f64
                    }
                })
                .collect();
            (label.to_string(), percents)
        })
        .collect()
}

// ------------------------------------------------------------------ Fig 9

/// Score samples for the Fig. 9 CDFs of one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreSamples {
    /// All matched meme posts' scores.
    pub all: Vec<f64>,
    /// Politics-group meme scores.
    pub political: Vec<f64>,
    /// Non-political meme scores.
    pub non_political: Vec<f64>,
    /// Racism-group meme scores.
    pub racist: Vec<f64>,
    /// Non-racist meme scores.
    pub non_racist: Vec<f64>,
}

/// Fig. 9: collect score samples for a platform (Reddit folds in
/// The_Donald).
pub fn fig9_scores(
    dataset: &Dataset,
    output: &PipelineOutput,
    platform: Community,
) -> ScoreSamples {
    let members: Vec<Community> = match platform {
        Community::Reddit => vec![Community::Reddit, Community::TheDonald],
        c => vec![c],
    };
    let mut s = ScoreSamples {
        all: vec![],
        political: vec![],
        non_political: vec![],
        racist: vec![],
        non_racist: vec![],
    };
    for (post, occ) in dataset.posts.iter().zip(&output.occurrences) {
        if !members.contains(&post.community) {
            continue;
        }
        let (Some(cluster), Some(score)) = (occ, post.score) else {
            continue;
        };
        let score = score.max(0) as f64 + 1.0; // log-scale friendly
        s.all.push(score);
        if output.cluster_is_political(*cluster) {
            s.political.push(score);
        } else {
            s.non_political.push(score);
        }
        if output.cluster_is_racist(*cluster) {
            s.racist.push(score);
        } else {
            s.non_racist.push(score);
        }
    }
    s
}

// ------------------------------------------------------------------ Fig 5

/// Fig. 5 samples: KYM entries per annotated cluster, and clusters per
/// KYM entry.
pub fn fig5_samples(output: &PipelineOutput) -> (Vec<u64>, Vec<u64>) {
    let entries_per_cluster: Vec<u64> = output
        .annotations
        .iter()
        .filter(|a| a.is_annotated())
        .map(|a| a.entry_count() as u64)
        .collect();
    let cpe = clusters_per_entry(&output.annotations, output.site.len());
    (entries_per_cluster, cpe)
}

// ------------------------------------------------- Table 8 and Fig 17

/// One row of the Appendix-A eps sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpsSweepRow {
    /// DBSCAN distance threshold.
    pub eps: u32,
    /// Clusters found.
    pub clusters: u64,
    /// Percent noise.
    pub noise_pct: f64,
    /// Per-cluster false-positive fractions vs ground truth (the
    /// Fig. 17 CDF sample).
    pub fp_fractions: Vec<f64>,
    /// Overall true-positive share among clustered images (the paper's
    /// 99.4% at eps = 8).
    pub purity: f64,
}

/// Appendix A: sweep the DBSCAN distance over the fringe images.
pub fn eps_sweep(
    dataset: &Dataset,
    output: &PipelineOutput,
    eps_values: &[u32],
    min_pts: usize,
    threads: usize,
) -> Vec<EpsSweepRow> {
    let hashes: Vec<PHash> = output
        .fringe_posts
        .iter()
        .map(|&i| output.post_hashes[i])
        .collect();
    // Truth at *image family* granularity (meme or screenshot family):
    // the paper's manual audit counted an image as a false positive when
    // it did not belong to the cluster's image family — two close
    // variants of one meme merging is not an error in that sense.
    let truth: Vec<Option<meme_simweb::PostTruth>> = output
        .fringe_posts
        .iter()
        .map(|&i| dataset.posts[i].truth_key())
        .collect();
    let max_eps = eps_values.iter().copied().max().unwrap_or(8);
    // One collapse + one index (at the sweep's largest radius) serve
    // every eps value; only the pair sweep reruns per row.
    let groups = HashGroups::new(&hashes);
    // lint:allow(panic-reachable): max_eps is a hash-distance threshold far below MihIndex::new's 64-band limit
    let index = MihIndex::new(groups.unique().to_vec(), max_eps);
    eps_values
        .iter()
        .map(|&eps| {
            let (neighbors, _) = symmetric_neighbors(&index, &groups, eps, threads);
            // lint:allow(panic-reachable): min_pts >= 1 comes from validated sweep parameters; dbscan's contract holds
            let clustering = dbscan(&neighbors, min_pts);
            let fp = cluster_false_positive_fractions(&clustering, &truth);
            let purity = meme_cluster::purity::majority_purity(&clustering, &truth);
            EpsSweepRow {
                eps,
                clusters: clustering.n_clusters() as u64,
                noise_pct: 100.0 * clustering.noise_fraction(),
                fp_fractions: fp,
                purity,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use meme_simweb::SimConfig;
    use std::sync::OnceLock;

    fn fixture() -> &'static (Dataset, PipelineOutput) {
        static FIXTURE: OnceLock<(Dataset, PipelineOutput)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let dataset = SimConfig::tiny(23).generate();
            let out = Pipeline::new(PipelineConfig::fast()).run(&dataset).unwrap();
            (dataset, out)
        })
    }

    #[test]
    fn table1_ordering_and_kym_row() {
        let (dataset, out) = fixture();
        let rows = table1(dataset, out);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].platform, "Twitter");
        assert!(rows[0].posts > rows[1].posts); // Twitter > Reddit
        assert!(rows[1].posts > rows[2].posts); // Reddit > /pol/
        assert_eq!(rows[4].platform, "KYM");
        for r in &rows {
            assert!(r.unique_phashes <= r.images.max(1));
            assert!(r.posts_with_images <= r.posts);
        }
    }

    #[test]
    fn table2_per_community_shapes() {
        let (dataset, out) = fixture();
        let runs: Vec<CommunityClustering> = Community::FRINGE
            .iter()
            .map(|&c| cluster_community(dataset, out, c, DbscanParams::default(), 8, 2))
            .collect();
        let rows = table2(&runs);
        assert_eq!(rows.len(), 3);
        let pol = &rows[0];
        let gab = rows.iter().find(|r| r.platform == "Gab").unwrap();
        assert!(
            pol.clusters > gab.clusters,
            "pol {} gab {}",
            pol.clusters,
            gab.clusters
        );
        for r in &rows {
            assert!(
                r.noise_pct > 20.0 && r.noise_pct < 95.0,
                "{}: {}",
                r.platform,
                r.noise_pct
            );
            assert!(r.annotated <= r.clusters);
            assert!(r.annotated > 0, "{} has no annotated clusters", r.platform);
            assert!(
                r.annotated_pct < 80.0,
                "{} coverage suspiciously high",
                r.platform
            );
        }
    }

    #[test]
    fn top_entries_tables_are_ranked() {
        let (dataset, out) = fixture();
        let run = cluster_community(dataset, out, Community::Pol, DbscanParams::default(), 8, 2);
        let t3 = top_entries_by_clusters(&run, out, 10);
        assert!(!t3.is_empty());
        for w in t3.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
        let t4 = top_entries_by_posts(dataset, out, Community::Pol, None, 10);
        assert!(!t4.is_empty());
        for w in t4.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
        let t5 = top_entries_by_posts(dataset, out, Community::Pol, Some(KymCategory::Person), 10);
        for r in &t5 {
            assert_eq!(r.category, "People");
        }
    }

    #[test]
    fn table6_the_donald_leads() {
        let (dataset, out) = fixture();
        let rows = table6(dataset, out, MemeFilter::All, 10);
        assert!(!rows.is_empty());
        assert_eq!(rows[0].subreddit, "The_Donald");
        let political = table6(dataset, out, MemeFilter::Political, 10);
        if !political.is_empty() {
            assert_eq!(political[0].subreddit, "The_Donald");
        }
    }

    #[test]
    fn table7_counts_match_occurrences() {
        let (dataset, out) = fixture();
        let rows = table7(dataset, out);
        let total: u64 = rows.iter().map(|(_, c)| c).sum();
        let matched = out.occurrences.iter().flatten().count() as u64;
        assert_eq!(total, matched);
        // /pol/ dominates meme event volume (Table 7).
        let pol = rows.iter().find(|(n, _)| n == "/pol/").unwrap().1;
        let gab = rows.iter().find(|(n, _)| n == "Gab").unwrap().1;
        assert!(pol > gab);
    }

    #[test]
    fn fig8_series_shapes() {
        let (dataset, out) = fixture();
        let all = fig8_series(dataset, out, MemeFilter::All);
        assert_eq!(all.len(), 4);
        for (name, series) in &all {
            assert_eq!(series.len(), dataset.horizon_days, "{name}");
            assert!(series.iter().all(|p| (0.0..=100.0).contains(p)));
        }
        // Gab's pre-launch days are zero.
        let gab = &all.iter().find(|(n, _)| n == "Gab").unwrap().1;
        assert!(gab[0] == 0.0);
        // Racist series is a subset of all.
        let racist = fig8_series(dataset, out, MemeFilter::Racist);
        let total_all: f64 = all.iter().flat_map(|(_, s)| s).sum();
        let total_racist: f64 = racist.iter().flat_map(|(_, s)| s).sum();
        assert!(total_racist <= total_all);
    }

    #[test]
    fn fig9_scores_partition() {
        let (dataset, out) = fixture();
        let s = fig9_scores(dataset, out, Community::Reddit);
        assert!(!s.all.is_empty());
        assert_eq!(s.all.len(), s.political.len() + s.non_political.len());
        assert_eq!(s.all.len(), s.racist.len() + s.non_racist.len());
        // Twitter has no scores.
        let t = fig9_scores(dataset, out, Community::Twitter);
        assert!(t.all.is_empty());
    }

    #[test]
    fn fig5_samples_consistent() {
        let (_, out) = fixture();
        let (epc, cpe) = fig5_samples(out);
        assert_eq!(epc.len(), out.annotated_clusters().len());
        assert!(epc.iter().all(|&c| c >= 1));
        assert_eq!(cpe.len(), out.site.len());
        // Total matches must agree between the two views.
        let from_clusters: u64 = out.annotations.iter().map(|a| a.matches.len() as u64).sum();
        let from_entries: u64 = cpe.iter().sum();
        assert_eq!(from_clusters, from_entries);
    }

    #[test]
    fn eps_sweep_reproduces_appendix_a_shape() {
        let (dataset, out) = fixture();
        let rows = eps_sweep(dataset, out, &[2, 8, 10], 5, 2);
        assert_eq!(rows.len(), 3);
        // Noise decreases with eps (Table 8); the tail can flatten out
        // once every jittered re-post is already reachable.
        assert!(rows[0].noise_pct > rows[1].noise_pct);
        assert!(rows[1].noise_pct >= rows[2].noise_pct);
        // Tight eps is pure; loose eps merges (purity non-increasing).
        assert!(rows[0].purity >= rows[2].purity - 1e-9);
        assert!(rows[1].purity > 0.95, "purity at eps 8: {}", rows[1].purity);
    }
}
