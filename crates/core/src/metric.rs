//! The custom cluster distance metric (§2.3, Eq. 1–2).
//!
//! `distance(c_i, c_j) = 1 − Σ_f w_f · r_f(c_i, c_j)` over four features:
//! perceptual similarity of the medoids, and Jaccard similarity of the
//! clusters' KYM `meme`, `people` and `culture` annotation sets.
//!
//! **Full mode** (both clusters annotated) uses
//! `w = (0.4, 0.4, 0.1, 0.1)`; **partial mode** (at most one annotated)
//! uses only the perceptual feature.
//!
//! ## A note on Eq. 2
//!
//! The paper typesets the perceptual similarity as
//! `r(d) = 1 − d / (τ · e^{max/τ})`, which is *linear* in `d` and
//! contradicts the surrounding text ("an exponential decay function"),
//! Fig. 3's curves, and both quoted values (τ=1: r(1) ≈ 0.4;
//! τ=64: r(1) ≈ 0.98). The function consistent with all of those is the
//! plain exponential decay `r(d) = e^{−d/τ}` (τ=1 ⇒ e^{−1} ≈ 0.37;
//! τ=64 ⇒ e^{−1/64} ≈ 0.984; near-linear decay for τ = max). We
//! implement that and record the discrepancy in EXPERIMENTS.md.

use meme_annotate::annotator::ClusterAnnotation;
use meme_annotate::kym::{KymCategory, KymSite};
use meme_phash::PHash;
use meme_stats::sets::jaccard;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Feature weights for Eq. 1. Must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricWeights {
    /// Weight of the perceptual feature.
    pub perceptual: f64,
    /// Weight of the meme-name Jaccard feature.
    pub meme: f64,
    /// Weight of the people Jaccard feature.
    pub people: f64,
    /// Weight of the culture Jaccard feature.
    pub culture: f64,
}

impl MetricWeights {
    /// The paper's full-mode weights (0.4 / 0.4 / 0.1 / 0.1).
    pub const FULL: MetricWeights = MetricWeights {
        perceptual: 0.4,
        meme: 0.4,
        people: 0.1,
        culture: 0.1,
    };

    /// The paper's partial-mode weights (perceptual only).
    pub const PARTIAL: MetricWeights = MetricWeights {
        perceptual: 1.0,
        meme: 0.0,
        people: 0.0,
        culture: 0.0,
    };

    /// Validate that the weights are non-negative and sum to 1.
    pub fn is_valid(&self) -> bool {
        let vals = [self.perceptual, self.meme, self.people, self.culture];
        vals.iter().all(|w| *w >= 0.0 && w.is_finite())
            && (vals.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }
}

/// Everything the metric needs to know about one cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterDescriptor {
    /// The cluster's medoid hash.
    pub medoid: PHash,
    /// Whether the cluster carries KYM annotations.
    pub annotated: bool,
    /// Names of matched meme-category entries.
    pub memes: HashSet<String>,
    /// People annotations (union over matched entries).
    pub people: HashSet<String>,
    /// Culture annotations (union over matched entries).
    pub cultures: HashSet<String>,
}

impl ClusterDescriptor {
    /// An unannotated cluster (partial-mode only).
    pub fn unannotated(medoid: PHash) -> Self {
        Self {
            medoid,
            annotated: false,
            memes: HashSet::new(),
            people: HashSet::new(),
            cultures: HashSet::new(),
        }
    }

    /// Build from a Step-5 annotation. Uses **all** matched entries, not
    /// only the representative one ("we use all the annotations for each
    /// category and not only the representative one", §2.3).
    pub fn from_annotation(medoid: PHash, annotation: &ClusterAnnotation, site: &KymSite) -> Self {
        let mut memes = HashSet::new();
        let mut people = HashSet::new();
        let mut cultures = HashSet::new();
        for m in &annotation.matches {
            let entry = site.entry(m.entry_id);
            match entry.category {
                KymCategory::Meme | KymCategory::Subculture => {
                    memes.insert(entry.name.clone());
                }
                KymCategory::Person => {
                    people.insert(entry.name.clone());
                }
                KymCategory::Culture => {
                    cultures.insert(entry.name.clone());
                }
                KymCategory::Event | KymCategory::Site => {
                    memes.insert(entry.name.clone());
                }
            }
            for p in &entry.people {
                people.insert(p.clone());
            }
            for c in &entry.cultures {
                cultures.insert(c.clone());
            }
        }
        Self {
            medoid,
            annotated: annotation.is_annotated(),
            memes,
            people,
            cultures,
        }
    }
}

/// The metric itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterDistance {
    /// The smoother τ of Eq. 2 (the paper sets 25).
    pub tau: f64,
    /// Full-mode weights.
    pub full: MetricWeights,
    /// Partial-mode weights.
    pub partial: MetricWeights,
}

impl Default for ClusterDistance {
    fn default() -> Self {
        Self {
            tau: 25.0,
            full: MetricWeights::FULL,
            partial: MetricWeights::PARTIAL,
        }
    }
}

impl ClusterDistance {
    /// A metric with a custom smoother.
    ///
    /// # Panics
    /// Panics when `tau <= 0` or a weight set is invalid.
    pub fn with_tau(tau: f64) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        Self {
            tau,
            ..Self::default()
        }
    }

    /// Eq. 2: perceptual similarity of two medoids at Hamming distance
    /// `d` (see the module docs for the exact functional form).
    pub fn r_perceptual(&self, d: u32) -> f64 {
        (-(d as f64) / self.tau).exp()
    }

    /// Eq. 1: distance between two described clusters in `[0, 1]`.
    /// Full mode when both are annotated, partial mode otherwise.
    pub fn distance(&self, a: &ClusterDescriptor, b: &ClusterDescriptor) -> f64 {
        debug_assert!(self.full.is_valid() && self.partial.is_valid());
        let d = a.medoid.distance(b.medoid);
        let rp = self.r_perceptual(d);
        let w = if a.annotated && b.annotated {
            self.full
        } else {
            self.partial
        };
        let mut sim = w.perceptual * rp;
        if w.meme > 0.0 {
            sim += w.meme * jaccard(&a.memes, &b.memes);
        }
        if w.people > 0.0 {
            sim += w.people * jaccard(&a.people, &b.people);
        }
        if w.culture > 0.0 {
            sim += w.culture * jaccard(&a.cultures, &b.cultures);
        }
        (1.0 - sim).clamp(0.0, 1.0)
    }

    /// Condensed pairwise distance matrix over descriptors, in the
    /// layout `meme_cluster::hier::condensed_index` expects.
    pub fn condensed_matrix(&self, descriptors: &[ClusterDescriptor]) -> Vec<f64> {
        let n = descriptors.len();
        let mut out = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                out.push(self.distance(&descriptors[i], &descriptors[j]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descriptor(
        medoid: PHash,
        memes: &[&str],
        people: &[&str],
        cultures: &[&str],
    ) -> ClusterDescriptor {
        ClusterDescriptor {
            medoid,
            annotated: true,
            memes: memes.iter().map(|s| s.to_string()).collect(),
            people: people.iter().map(|s| s.to_string()).collect(),
            cultures: cultures.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn weights_validate() {
        assert!(MetricWeights::FULL.is_valid());
        assert!(MetricWeights::PARTIAL.is_valid());
        let bad = MetricWeights {
            perceptual: 0.5,
            meme: 0.5,
            people: 0.5,
            culture: 0.0,
        };
        assert!(!bad.is_valid());
    }

    #[test]
    fn r_perceptual_matches_paper_quotes() {
        // τ = 1: similarity drops to ~0.4 at d = 1.
        let m1 = ClusterDistance::with_tau(1.0);
        assert!((m1.r_perceptual(1) - 0.368).abs() < 0.05);
        assert_eq!(m1.r_perceptual(0), 1.0);
        // τ = 64: r(1) ≈ 0.98, near-linear decay.
        let m64 = ClusterDistance::with_tau(64.0);
        assert!((m64.r_perceptual(1) - 0.98).abs() < 0.01);
        // τ = 25 (production): high values up to d = 8.
        let m25 = ClusterDistance::default();
        assert!(m25.r_perceptual(8) > 0.7);
        assert!(m25.r_perceptual(30) < 0.35);
    }

    #[test]
    fn r_perceptual_is_monotone_decreasing() {
        let m = ClusterDistance::default();
        for d in 0..64 {
            assert!(m.r_perceptual(d) > m.r_perceptual(d + 1));
        }
    }

    #[test]
    fn identical_annotated_clusters_have_zero_distance() {
        let a = descriptor(PHash(7), &["Smug Frog"], &["Donald Trump"], &["Alt-Right"]);
        let m = ClusterDistance::default();
        assert!(m.distance(&a, &a) < 1e-9);
    }

    #[test]
    fn same_meme_similar_image_is_close() {
        // Paper: "it will be at most 0.2 if people and culture do not
        // match, and 0.0 if they also match".
        let a = descriptor(PHash(0), &["Smug Frog"], &["X"], &["C1"]);
        let b = ClusterDescriptor {
            medoid: PHash(0).with_flipped_bits(&[1]),
            ..descriptor(PHash(0), &["Smug Frog"], &["Y"], &["C2"])
        };
        let m = ClusterDistance::default();
        let d = m.distance(&a, &b);
        assert!(d <= 0.25, "distance {d}");
        assert!(d > 0.0);
    }

    #[test]
    fn same_image_different_meme_is_moderately_close() {
        // "our metric also assigns small distance values … when two
        // clusters use the same image for different memes".
        let a = descriptor(PHash(0), &["A"], &[], &[]);
        let b = descriptor(PHash(0), &["B"], &[], &[]);
        let m = ClusterDistance::default();
        let d = m.distance(&a, &b);
        // Perceptual 0.4 preserved; meme Jaccard 0; people/culture both
        // empty -> Jaccard 1 by convention.
        assert!((d - (1.0 - 0.4 - 0.2)).abs() < 1e-9, "distance {d}");
    }

    #[test]
    fn unannotated_pair_uses_partial_mode() {
        let a = ClusterDescriptor::unannotated(PHash(0));
        let b = ClusterDescriptor::unannotated(PHash(0).with_flipped_bits(&[0, 1, 2]));
        let m = ClusterDistance::default();
        let d = m.distance(&a, &b);
        let expected = 1.0 - m.r_perceptual(3);
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn mixed_pair_uses_partial_mode() {
        let a = descriptor(PHash(0), &["Smug Frog"], &[], &[]);
        let b = ClusterDescriptor::unannotated(PHash(0));
        let m = ClusterDistance::default();
        // Identical medoids, partial mode: distance 0 regardless of
        // annotations.
        assert!(m.distance(&a, &b) < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let a = descriptor(PHash(123), &["A", "B"], &["P"], &[]);
        let b = descriptor(PHash(456), &["B"], &[], &["C"]);
        let m = ClusterDistance::default();
        assert_eq!(m.distance(&a, &b), m.distance(&b, &a));
        let d = m.distance(&a, &b);
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn condensed_matrix_layout() {
        let ds: Vec<ClusterDescriptor> = (0..4)
            .map(|i| ClusterDescriptor::unannotated(PHash(i)))
            .collect();
        let m = ClusterDistance::default();
        let c = m.condensed_matrix(&ds);
        assert_eq!(c.len(), 6);
        use meme_cluster::hier::condensed_index;
        assert_eq!(c[condensed_index(4, 1, 3)], m.distance(&ds[1], &ds[3]));
    }

    #[test]
    fn from_annotation_collects_all_matched_entries() {
        use meme_annotate::annotator::{ClusterAnnotation, EntryMatch};
        use meme_annotate::kym::KymEntry;
        let site = KymSite::new(vec![
            KymEntry {
                id: 0,
                name: "Smug Frog".into(),
                category: KymCategory::Meme,
                tags: vec![],
                origin: "4chan".into(),
                gallery: vec![],
                people: vec!["Donald Trump".into()],
                cultures: vec!["Frog Memes".into()],
            },
            KymEntry {
                id: 1,
                name: "Alt-Right".into(),
                category: KymCategory::Culture,
                tags: vec![],
                origin: "4chan".into(),
                gallery: vec![],
                people: vec![],
                cultures: vec![],
            },
        ]);
        let ann = ClusterAnnotation {
            cluster: 0,
            matches: vec![
                EntryMatch {
                    entry_id: 0,
                    matched_images: 2,
                    gallery_size: 2,
                    avg_distance: 1.0,
                },
                EntryMatch {
                    entry_id: 1,
                    matched_images: 1,
                    gallery_size: 4,
                    avg_distance: 3.0,
                },
            ],
            representative: Some(0),
        };
        let d = ClusterDescriptor::from_annotation(PHash(9), &ann, &site);
        assert!(d.annotated);
        assert!(d.memes.contains("Smug Frog"));
        assert!(d.cultures.contains("Alt-Right"));
        assert!(d.cultures.contains("Frog Memes"));
        assert!(d.people.contains("Donald Trump"));
    }
}
