//! Plain-text table rendering for the repro binaries.
//!
//! Every table/figure binary prints its rows through [`ascii_table`] so
//! the regenerated output reads like the paper's tables.

/// Render an ASCII table with a header row.
///
/// Column widths adapt to content; numeric-looking cells are
/// right-aligned.
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let numeric: Vec<bool> = (0..cols)
        .map(|i| {
            rows.iter().all(|r| {
                r.get(i).is_none_or(|c| {
                    c.is_empty()
                        || c.chars()
                            .all(|ch| ch.is_ascii_digit() || "+-.,%()* ".contains(ch))
                })
            }) && !rows.is_empty()
        })
        .collect();
    let render_row = |cells: &[String]| -> String {
        let mut line = String::from("|");
        for i in 0..cols {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            let pad = widths[i].saturating_sub(cell.chars().count());
            if numeric[i] {
                line.push_str(&format!(" {}{} |", " ".repeat(pad), cell));
            } else {
                line.push_str(&format!(" {}{} |", cell, " ".repeat(pad)));
            }
        }
        line.push('\n');
        line
    };
    let sep = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s.push('\n');
        s
    };
    let mut out = String::new();
    out.push_str(&sep);
    out.push_str(&render_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row));
    }
    out.push_str(&sep);
    out
}

/// Format a count with thousands separators (paper style: `1,469,582`).
pub fn thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Format a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Render a compact sparkline-ish series for figure binaries: pairs of
/// `(x, y)` printed as aligned columns.
pub fn series_table(x_label: &str, y_label: &str, points: &[(f64, f64)]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(x, y)| vec![format!("{x:.2}"), format!("{y:.4}")])
        .collect();
    ascii_table(&[x_label, y_label], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_cells() {
        let out = ascii_table(
            &["Platform", "#Posts"],
            &[
                vec!["Twitter".into(), "1,469".into()],
                vec!["Gab".into(), "12".into()],
            ],
        );
        assert!(out.contains("Twitter"));
        assert!(out.contains("1,469"));
        // Header + separator lines present.
        assert!(out.matches("+--").count() >= 3);
    }

    #[test]
    fn numeric_columns_right_align() {
        let out = ascii_table(
            &["N", "Name"],
            &[vec!["5".into(), "x".into()], vec!["500".into(), "y".into()]],
        );
        // "  5" right-aligned against "500".
        assert!(out.contains("|   5 |"));
    }

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1_000), "1,000");
        assert_eq!(thousands(1_469_582_378), "1,469,582,378");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(63.25), "63.2%");
        assert_eq!(pct(4.0), "4.0%");
    }

    #[test]
    fn empty_rows_ok() {
        let out = ascii_table(&["A"], &[]);
        assert!(out.contains("| A |"));
    }

    #[test]
    fn series_renders() {
        let out = series_table("d", "r", &[(0.0, 1.0), (8.0, 0.7261)]);
        assert!(out.contains("0.7261"));
    }
}
