//! Golden-hash regression corpus — the hash stage's byte-identity
//! contract.
//!
//! The kernel rebuild (render cache, scratch-reuse pHash, truncated
//! DCT) promises output **byte-identical** to the original
//! render → resize → DCT → threshold path. These tests pin the exact
//! 64-bit fingerprints of a seeded corpus covering every [`ImageRef`]
//! kind, jittered and unjittered, so any kernel or cache change that
//! perturbs even one bit fails loudly — the same swap-determinism
//! discipline the Hamming engine (PR 4) and serving layer (PR 7) live
//! under. A second suite asserts the cached render path equals the
//! uncached one bit-for-bit at 1, 2, and 8 threads.
//!
//! If a change *intends* to alter the hash function itself, regenerate
//! the constants with `print_golden_hashes` (`--ignored --nocapture`)
//! and say so in the PR.

use meme_phash::{HashScratch, ImageHasher, PHash, PerceptualHasher};
use meme_simweb::{Dataset, ImageRef, Post, RenderCache, RenderStats, SimConfig, IMAGE_SIZE};

fn dataset() -> Dataset {
    SimConfig::tiny(7).generate()
}

/// The first post of each kind in corpus order, so the pinned hashes
/// are stable against unrelated generator changes only if the corpus
/// itself is unchanged — which is exactly the point.
fn sample_posts(d: &Dataset) -> Vec<(&'static str, Post)> {
    let first = |pred: fn(&ImageRef) -> bool| -> Post {
        d.posts
            .iter()
            .find(|p| pred(&p.image))
            .expect("tiny corpus covers every kind")
            .clone()
    };
    let mut samples = vec![
        (
            "meme_variant",
            first(|r| matches!(r, ImageRef::MemeVariant { .. })),
        ),
        ("one_off", first(|r| matches!(r, ImageRef::OneOff { .. }))),
        (
            "screenshot",
            first(|r| matches!(r, ImageRef::Screenshot { .. })),
        ),
    ];
    // The generator never emits blank posts (they are a fault-injection
    // shape), so construct one on a real post's chassis.
    let blank = Post {
        image: ImageRef::Blank,
        ..d.posts[0].clone()
    };
    samples.push(("blank", blank));
    samples
}

/// Pinned fingerprints for `SimConfig::tiny(7)`, corpus order as
/// produced by [`sample_posts`], plus the unjittered canonical render
/// of meme 0 / variant 0 and its bare template.
const GOLDEN: [(&str, &str); 6] = [
    ("meme_variant", "9f75d04ae0cab8c9"),
    ("one_off", "cec4393d9b9cd418"),
    ("screenshot", "bf47407852252f67"),
    ("blank", "0000000000000000"),
    // Meme 0's variant 0 is the base variant (no structural ops), so
    // its canonical render pins to the same bits as the bare template.
    ("canonical_variant", "d6fe3811c9c160e7"),
    ("template_base", "d6fe3811c9c160e7"),
];

/// Hash every sample through the production path (render cache +
/// scratch kernel), in pinned order.
fn current_hashes(d: &Dataset) -> Vec<(&'static str, PHash)> {
    let cache = RenderCache::build(d);
    let hasher = PerceptualHasher::new();
    let mut scratch = HashScratch::new();
    let mut stats = RenderStats::default();
    let mut out: Vec<(&'static str, PHash)> = sample_posts(d)
        .into_iter()
        .map(|(kind, post)| {
            let img = d.render_post_cached(&post, &cache, &mut stats);
            (kind, hasher.hash_into(img.as_image(), &mut scratch))
        })
        .collect();
    let canonical = d.universe.specs[0].variants[0].render(IMAGE_SIZE);
    out.push((
        "canonical_variant",
        hasher.hash_into(&canonical, &mut scratch),
    ));
    let template = d.universe.specs[0].variants[0].template.render(IMAGE_SIZE);
    out.push(("template_base", hasher.hash_into(&template, &mut scratch)));
    out
}

#[test]
fn golden_hashes_are_unchanged() {
    let d = dataset();
    let got = current_hashes(&d);
    assert_eq!(got.len(), GOLDEN.len());
    for ((kind, hash), (golden_kind, golden_hex)) in got.iter().zip(GOLDEN) {
        assert_eq!(*kind, golden_kind, "sample order drifted");
        let want: PHash = golden_hex
            .parse()
            .expect("golden constants are valid hex fingerprints");
        assert_eq!(
            *hash, want,
            "{kind}: hash {hash} diverged from pinned {want}"
        );
    }
}

#[test]
fn cached_and_uncached_hashes_agree_for_every_sample() {
    let d = dataset();
    let cache = RenderCache::build(&d);
    let hasher = PerceptualHasher::new();
    let mut scratch = HashScratch::new();
    let mut stats = RenderStats::default();
    for (kind, post) in sample_posts(&d) {
        let cached = d.render_post_cached(&post, &cache, &mut stats);
        let through_cache = hasher.hash_into(cached.as_image(), &mut scratch);
        let direct = hasher.hash(&d.render_post_image(&post));
        assert_eq!(through_cache, direct, "{kind} diverged through the cache");
    }
}

/// The cached chunked driver, as `hash_posts` runs it (clean loop).
fn hash_all_cached(d: &Dataset, cache: &RenderCache, threads: usize) -> Vec<PHash> {
    let n = d.posts.len();
    let chunk_len = n.div_ceil(threads);
    let mut hashes = vec![PHash::default(); n];
    crossbeam::thread::scope(|s| {
        for (chunk_id, slot_chunk) in hashes.chunks_mut(chunk_len).enumerate() {
            s.spawn(move |_| {
                let hasher = PerceptualHasher::new();
                let mut scratch = HashScratch::new();
                let mut stats = RenderStats::default();
                for (off, slot) in slot_chunk.iter_mut().enumerate() {
                    let post = &d.posts[chunk_id * chunk_len + off];
                    let img = d.render_post_cached(post, cache, &mut stats);
                    *slot = hasher.hash_into(img.as_image(), &mut scratch);
                }
            });
        }
    })
    .expect("hashing worker panicked");
    hashes
}

#[test]
fn cache_is_byte_identical_across_thread_counts() {
    let d = dataset();
    let cache = RenderCache::build(&d);
    // Uncached single-threaded reference: the pre-change semantics.
    let hasher = PerceptualHasher::new();
    let reference: Vec<PHash> = d
        .posts
        .iter()
        .map(|p| hasher.hash(&d.render_post_image(p)))
        .collect();
    for threads in [1usize, 2, 8] {
        let got = hash_all_cached(&d, &cache, threads);
        assert_eq!(
            got, reference,
            "cached hash stage at {threads} threads diverged from the uncached reference"
        );
    }
}

/// Regenerates the `GOLDEN` constants. Run with
/// `cargo test -p meme-core --test golden_hash -- --ignored --nocapture`.
#[test]
#[ignore]
fn print_golden_hashes() {
    let d = dataset();
    for (kind, hash) in current_hashes(&d) {
        println!("    (\"{kind}\", \"{hash}\"),");
    }
}
