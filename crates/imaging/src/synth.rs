//! Procedural meme-image synthesis.
//!
//! The simulator needs images whose ground-truth identity is known: which
//! *meme template* an image comes from, which *variant* of that meme it
//! is, and which within-variant re-post jitter it carries. This mirrors
//! the paper's Figure 1: a meme (Smug Frog) has several visually distinct
//! clusters of variants, each containing perceptually near-identical
//! images.
//!
//! * [`TemplateGenome`] — a seed. Rendering produces a distinctive base
//!   image: a mixture of random low-frequency cosine fields (which is
//!   exactly the structure pHash fingerprints) plus soft blobs.
//! * [`VariantGenome`] — a template plus a list of structural
//!   [`VariantOp`]s (caption bands, overlays, region inversion, mirror).
//!   Structural edits move the pHash a *moderate* distance, so each
//!   variant forms its own DBSCAN cluster, exactly as in the paper.
//! * [`VariantGenome::render_jittered`] — adds photometric re-post jitter
//!   (brightness/contrast/gamma/noise/rescale) that pHash is robust to,
//!   so images of one variant stay within the clustering threshold.

use crate::image::Image;
use crate::transform;
use meme_stats::{child_seed, seeded_rng};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Seed-only genome of a meme template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TemplateGenome {
    /// Seed that fully determines the rendered base image.
    pub seed: u64,
}

impl TemplateGenome {
    /// Create a genome from a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Render the template's base image at `size × size`.
    ///
    /// The image is a mixture of 6 random low-frequency 2-D cosine modes
    /// (frequencies 1..=5 in each axis) plus 3 soft elliptical blobs,
    /// normalized into `[0, 1]`. Different seeds produce images whose
    /// pHashes are far apart with overwhelming probability because the
    /// sign pattern of the low-frequency DCT coefficients *is* the hash.
    pub fn render(&self, size: usize) -> Image {
        assert!(size >= 8, "template images need at least 8x8 pixels");
        let mut rng = seeded_rng(child_seed(self.seed, 0xC0DE));
        let mut img = Image::new(size, size);

        // Low-frequency cosine mixture.
        let modes: Vec<(usize, usize, f64, f64)> = (0..6)
            .map(|_| {
                let u = rng.random_range(1..=5usize);
                let v = rng.random_range(1..=5usize);
                let amp =
                    rng.random_range(0.35..1.0f64) * if rng.random_bool(0.5) { 1.0 } else { -1.0 };
                let phase = rng.random_range(0.0..std::f64::consts::TAU);
                (u, v, amp, phase)
            })
            .collect();
        let n = size as f64;
        // The field is separable: the x-cosine depends only on (x, u)
        // and the y-cosine only on (y, v, phase), so the per-pixel
        // `cos` calls collapse into two modes × size tables. The table
        // entries and the per-pixel `amp * cx * cy` expression keep the
        // exact operand order of the direct form, so the rendered image
        // is bit-identical to evaluating `cos` per pixel.
        let mut cx_tab = vec![0.0f64; modes.len() * size];
        let mut cy_tab = vec![0.0f64; modes.len() * size];
        for (m, &(u, v, _, phase)) in modes.iter().enumerate() {
            for x in 0..size {
                cx_tab[m * size + x] =
                    (std::f64::consts::PI * (x as f64 + 0.5) * u as f64 / n).cos();
            }
            for y in 0..size {
                cy_tab[m * size + y] =
                    (std::f64::consts::PI * (y as f64 + 0.5) * v as f64 / n + phase).cos();
            }
        }
        for y in 0..size {
            for x in 0..size {
                let mut acc = 0.0f64;
                for (m, &(_, _, amp, _)) in modes.iter().enumerate() {
                    acc += amp * cx_tab[m * size + x] * cy_tab[m * size + y];
                }
                img.set(x, y, acc as f32);
            }
        }

        // Normalize the cosine field into [0.15, 0.85] so blobs and
        // captions have headroom.
        let (mut lo, mut hi) = (f32::MAX, f32::MIN);
        for &p in img.data() {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        let span = (hi - lo).max(1e-6);
        img.map_in_place(|p| 0.15 + 0.7 * (p - lo) / span);

        // Seeded soft blobs give each template mid-frequency character.
        for _ in 0..3 {
            let cx = rng.random_range(0.2..0.8) * n;
            let cy = rng.random_range(0.2..0.8) * n;
            let r = rng.random_range(0.08..0.22) * n;
            let tone = if rng.random_bool(0.5) { 0.95 } else { 0.05 };
            img.blend_ellipse(cx, cy, r, r * rng.random_range(0.6..1.4), tone, 0.8);
        }
        img.clamp();
        img
    }
}

/// A structural edit that defines a meme *variant*.
///
/// Positions and sizes are fractions of the image side so the same genome
/// renders consistently at any resolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VariantOp {
    /// Caption band across the top (the classic image-macro top text).
    CaptionTop {
        /// Band height as a fraction of the image height, in `(0, 0.5]`.
        height_frac: f32,
        /// Band luminance.
        tone: f32,
    },
    /// Caption band across the bottom.
    CaptionBottom {
        /// Band height as a fraction of the image height, in `(0, 0.5]`.
        height_frac: f32,
        /// Band luminance.
        tone: f32,
    },
    /// A soft elliptical overlay (sticker / watermark / pasted face).
    Overlay {
        /// Center x as a fraction of width.
        cx: f32,
        /// Center y as a fraction of height.
        cy: f32,
        /// Radius as a fraction of the side.
        r: f32,
        /// Overlay luminance.
        tone: f32,
    },
    /// Invert the luminance of an axis-aligned region.
    InvertRegion {
        /// Left edge (fraction of width).
        x0: f32,
        /// Top edge (fraction of height).
        y0: f32,
        /// Right edge (fraction of width).
        x1: f32,
        /// Bottom edge (fraction of height).
        y1: f32,
    },
    /// Mirror the image horizontally.
    FlipH,
}

impl VariantOp {
    fn apply(&self, img: &Image) -> Image {
        let side = img.width() as f32;
        match *self {
            VariantOp::CaptionTop { height_frac, tone } => {
                transform::caption_band(img, true, height_frac, tone)
            }
            VariantOp::CaptionBottom { height_frac, tone } => {
                transform::caption_band(img, false, height_frac, tone)
            }
            VariantOp::Overlay { cx, cy, r, tone } => {
                let mut out = img.clone();
                out.blend_ellipse(
                    (cx * side) as f64,
                    (cy * img.height() as f32) as f64,
                    (r * side) as f64,
                    (r * side) as f64,
                    tone,
                    0.9,
                );
                out
            }
            VariantOp::InvertRegion { x0, y0, x1, y1 } => {
                let mut out = img.clone();
                let w = img.width() as f32;
                let h = img.height() as f32;
                let (ax, ay) = ((x0 * w) as usize, (y0 * h) as usize);
                let (bx, by) = ((x1 * w) as usize, (y1 * h) as usize);
                for y in ay..by.min(img.height()) {
                    for x in ax..bx.min(img.width()) {
                        let p = out.get(x, y);
                        out.set(x, y, 1.0 - p);
                    }
                }
                out
            }
            VariantOp::FlipH => transform::flip_horizontal(img),
        }
    }

    /// Draw a random structural op from a seeded RNG.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        match rng.random_range(0..5u8) {
            0 => VariantOp::CaptionTop {
                height_frac: rng.random_range(0.15..0.3),
                tone: if rng.random_bool(0.5) { 0.97 } else { 0.03 },
            },
            1 => VariantOp::CaptionBottom {
                height_frac: rng.random_range(0.15..0.3),
                tone: if rng.random_bool(0.5) { 0.97 } else { 0.03 },
            },
            2 => VariantOp::Overlay {
                cx: rng.random_range(0.25..0.75),
                cy: rng.random_range(0.25..0.75),
                r: rng.random_range(0.15..0.3),
                tone: if rng.random_bool(0.5) { 0.95 } else { 0.05 },
            },
            3 => VariantOp::InvertRegion {
                x0: rng.random_range(0.0..0.4),
                y0: rng.random_range(0.0..0.4),
                x1: rng.random_range(0.6..1.0),
                y1: rng.random_range(0.6..1.0),
            },
            _ => VariantOp::FlipH,
        }
    }
}

/// Strength of within-variant photometric jitter applied per posted
/// image; calibrated so pHash stays within the paper's clustering
/// threshold for the default.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterConfig {
    /// Max absolute brightness shift.
    pub brightness: f32,
    /// Max relative contrast change.
    pub contrast: f32,
    /// Gaussian pixel-noise sigma.
    pub noise_sigma: f32,
    /// Probability of a rescale (thumbnail) cycle.
    pub rescale_prob: f64,
    /// Probability of a border crop (re-screenshot of a re-post).
    pub crop_prob: f64,
    /// Max border-crop fraction per side.
    pub crop_max: f32,
}

impl Default for JitterConfig {
    fn default() -> Self {
        Self {
            brightness: 0.07,
            contrast: 0.18,
            noise_sigma: 0.025,
            rescale_prob: 0.55,
            crop_prob: 0.45,
            crop_max: 0.055,
        }
    }
}

/// A meme variant: a template plus an ordered list of structural edits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantGenome {
    /// The parent meme template.
    pub template: TemplateGenome,
    /// Structural edits distinguishing this variant.
    pub ops: Vec<VariantOp>,
}

impl VariantGenome {
    /// The identity variant — the base template with no edits.
    pub fn base(template: TemplateGenome) -> Self {
        Self {
            template,
            ops: Vec::new(),
        }
    }

    /// A seeded random variant with `n_ops` structural edits.
    pub fn random(template: TemplateGenome, seed: u64, n_ops: usize) -> Self {
        let mut rng = seeded_rng(child_seed(seed, 0x7A51));
        let ops = (0..n_ops).map(|_| VariantOp::random(&mut rng)).collect();
        Self { template, ops }
    }

    /// Render the canonical image of this variant at `size × size`.
    pub fn render(&self, size: usize) -> Image {
        let mut img = self.template.render(size);
        for op in &self.ops {
            img = op.apply(&img);
        }
        img
    }

    /// Render the canonical image from an already-rendered template
    /// base. `base` must equal `self.template.render(size)`; the result
    /// is then byte-identical to [`VariantGenome::render`]. This is the
    /// render-cache build path: one template render is shared by every
    /// variant of the meme instead of being recomputed per variant.
    pub fn render_with_base(&self, base: &Image) -> Image {
        let mut img = base.clone();
        for op in &self.ops {
            img = op.apply(&img);
        }
        img
    }

    /// Apply one posted instance's photometric jitter to an
    /// already-rendered canonical image. `base` must equal
    /// `self.render(size)` for the result to be byte-identical to
    /// [`VariantGenome::render_jittered`] with the same `rng` state:
    /// the draw order is identical, and the first transform reads the
    /// base without mutating it. This is the per-post hot path when the
    /// canonical render comes from a cache.
    pub fn jitter_base<R: Rng + ?Sized>(base: &Image, jitter: &JitterConfig, rng: &mut R) -> Image {
        let b = rng.random_range(-jitter.brightness..=jitter.brightness);
        let mut img = transform::brightness(base, b);
        let c = 1.0 + rng.random_range(-jitter.contrast..=jitter.contrast);
        img = transform::contrast(&img, c);
        if jitter.noise_sigma > 0.0 {
            img = transform::gaussian_noise(&img, jitter.noise_sigma, rng);
        }
        if rng.random_bool(jitter.rescale_prob) {
            img = transform::rescale_cycle(&img, rng.random_range(0.7..0.95));
        }
        if jitter.crop_max > 0.0 && rng.random_bool(jitter.crop_prob) {
            img = transform::border_crop(&img, rng.random_range(0.0..jitter.crop_max));
        }
        img
    }

    /// Render one posted instance: the canonical image plus photometric
    /// jitter drawn from `rng`.
    pub fn render_jittered<R: Rng + ?Sized>(
        &self,
        size: usize,
        jitter: &JitterConfig,
        rng: &mut R,
    ) -> Image {
        let img = self.render(size);
        Self::jitter_base(&img, jitter, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_render_is_deterministic() {
        let t = TemplateGenome::new(99);
        assert_eq!(t.render(32), t.render(32));
    }

    #[test]
    fn different_seeds_differ() {
        let a = TemplateGenome::new(1).render(32);
        let b = TemplateGenome::new(2).render(32);
        assert!(a.mad(&b).unwrap() > 0.05);
    }

    #[test]
    fn render_stays_in_range() {
        for seed in 0..20 {
            let img = TemplateGenome::new(seed).render(48);
            assert!(img.data().iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    #[should_panic(expected = "8x8")]
    fn tiny_render_panics() {
        let _ = TemplateGenome::new(0).render(4);
    }

    #[test]
    fn variant_ops_change_image() {
        let t = TemplateGenome::new(7);
        let base = VariantGenome::base(t).render(32);
        let v = VariantGenome {
            template: t,
            ops: vec![VariantOp::CaptionTop {
                height_frac: 0.25,
                tone: 1.0,
            }],
        };
        let edited = v.render(32);
        assert!(base.mad(&edited).unwrap() > 0.01);
    }

    #[test]
    fn random_variant_is_seeded() {
        let t = TemplateGenome::new(7);
        let a = VariantGenome::random(t, 3, 2);
        let b = VariantGenome::random(t, 3, 2);
        assert_eq!(a, b);
        let c = VariantGenome::random(t, 4, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn jittered_render_differs_slightly() {
        let t = TemplateGenome::new(5);
        let v = VariantGenome::base(t);
        let canon = v.render(32);
        let mut rng = meme_stats::seeded_rng(11);
        let jit = v.render_jittered(32, &JitterConfig::default(), &mut rng);
        let mad = canon.mad(&jit).unwrap();
        assert!(mad > 0.0, "jitter must change pixels");
        assert!(mad < 0.2, "jitter must stay mild, mad {mad}");
    }

    /// The table-driven cosine field in `TemplateGenome::render` must be
    /// bit-identical to evaluating `cos` per pixel — the render cache and
    /// the golden-hash corpus both rest on this.
    #[test]
    fn table_render_matches_per_pixel_cosine_formula() {
        for seed in [0u64, 7, 99, 0xDEAD] {
            for size in [8usize, 32, 64] {
                let got = TemplateGenome::new(seed).render(size);

                // Reference: the pre-table per-pixel formulation, drawing
                // from an identically seeded rng stream.
                let mut rng = seeded_rng(child_seed(seed, 0xC0DE));
                let mut img = Image::new(size, size);
                let modes: Vec<(usize, usize, f64, f64)> = (0..6)
                    .map(|_| {
                        let u = rng.random_range(1..=5usize);
                        let v = rng.random_range(1..=5usize);
                        let amp = rng.random_range(0.35..1.0f64)
                            * if rng.random_bool(0.5) { 1.0 } else { -1.0 };
                        let phase = rng.random_range(0.0..std::f64::consts::TAU);
                        (u, v, amp, phase)
                    })
                    .collect();
                let n = size as f64;
                for y in 0..size {
                    for x in 0..size {
                        let mut acc = 0.0f64;
                        for &(u, v, amp, phase) in &modes {
                            let cx = (std::f64::consts::PI * (x as f64 + 0.5) * u as f64 / n).cos();
                            let cy = (std::f64::consts::PI * (y as f64 + 0.5) * v as f64 / n
                                + phase)
                                .cos();
                            acc += amp * cx * cy;
                        }
                        img.set(x, y, acc as f32);
                    }
                }
                let (mut lo, mut hi) = (f32::MAX, f32::MIN);
                for &p in img.data() {
                    lo = lo.min(p);
                    hi = hi.max(p);
                }
                let span = (hi - lo).max(1e-6);
                img.map_in_place(|p| 0.15 + 0.7 * (p - lo) / span);
                for _ in 0..3 {
                    let cx = rng.random_range(0.2..0.8) * n;
                    let cy = rng.random_range(0.2..0.8) * n;
                    let r = rng.random_range(0.08..0.22) * n;
                    let tone = if rng.random_bool(0.5) { 0.95 } else { 0.05 };
                    img.blend_ellipse(cx, cy, r, r * rng.random_range(0.6..1.4), tone, 0.8);
                }
                img.clamp();

                for (i, (&g, &w)) in got.data().iter().zip(img.data()).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "seed {seed} size {size} pixel {i} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn render_with_base_matches_render() {
        for seed in [1u64, 5, 40] {
            let t = TemplateGenome::new(seed);
            let v = VariantGenome::random(t, seed ^ 0xA5, 3);
            let base = t.render(64);
            assert_eq!(v.render_with_base(&base).data(), v.render(64).data());
        }
    }

    #[test]
    fn jitter_base_matches_render_jittered() {
        let jitter = JitterConfig::default();
        for seed in [2u64, 9, 31] {
            let t = TemplateGenome::new(seed);
            let v = VariantGenome::random(t, seed.wrapping_mul(3), 2);
            let canon = v.render(64);
            let mut rng_a = meme_stats::seeded_rng(seed ^ 0xF00D);
            let mut rng_b = meme_stats::seeded_rng(seed ^ 0xF00D);
            let direct = v.render_jittered(64, &jitter, &mut rng_a);
            let cached = VariantGenome::jitter_base(&canon, &jitter, &mut rng_b);
            assert_eq!(direct.data(), cached.data(), "seed {seed} diverged");
        }
    }

    #[test]
    fn invert_region_is_local() {
        let t = TemplateGenome::new(8);
        let base = t.render(32);
        let op = VariantOp::InvertRegion {
            x0: 0.5,
            y0: 0.5,
            x1: 1.0,
            y1: 1.0,
        };
        let out = op.apply(&base);
        assert_eq!(out.get(0, 0), base.get(0, 0));
        assert!((out.get(31, 31) - (1.0 - base.get(31, 31))).abs() < 1e-6);
    }

    #[test]
    fn all_random_ops_render() {
        let t = TemplateGenome::new(13);
        let mut rng = meme_stats::seeded_rng(21);
        for _ in 0..30 {
            let op = VariantOp::random(&mut rng);
            let img = op.apply(&t.render(32));
            assert!(img.data().iter().all(|p| p.is_finite()));
        }
    }
}
