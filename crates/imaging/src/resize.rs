//! Image resampling.
//!
//! pHash (Step 1 of the pipeline) first shrinks every image to 32×32.
//! Downscaling uses an area-averaging **box filter** — the standard choice
//! for large shrink factors because it integrates over the source area
//! instead of point-sampling (which would alias and destroy hash
//! stability). Upscaling and mild rescaling use **bilinear** sampling.

use crate::image::Image;

/// Resize with an area-averaging box filter; the right filter for
/// downscaling. Each destination pixel is the mean of the source
/// rectangle it covers.
pub fn resize_box(src: &Image, dst_w: usize, dst_h: usize) -> Image {
    assert!(dst_w > 0 && dst_h > 0, "target dimensions must be non-zero");
    let (sw, sh) = (src.width(), src.height());
    let mut out = Image::new(dst_w, dst_h);
    let x_ratio = sw as f64 / dst_w as f64;
    let y_ratio = sh as f64 / dst_h as f64;
    for dy in 0..dst_h {
        let y0 = (dy as f64 * y_ratio).floor() as usize;
        let y1 = (((dy + 1) as f64 * y_ratio).ceil() as usize).clamp(y0 + 1, sh);
        for dx in 0..dst_w {
            let x0 = (dx as f64 * x_ratio).floor() as usize;
            let x1 = (((dx + 1) as f64 * x_ratio).ceil() as usize).clamp(x0 + 1, sw);
            let mut acc = 0.0f64;
            for sy in y0..y1 {
                for sx in x0..x1 {
                    acc += src.get(sx, sy) as f64;
                }
            }
            let count = ((x1 - x0) * (y1 - y0)) as f64;
            out.set(dx, dy, (acc / count) as f32);
        }
    }
    out
}

/// Resize with bilinear interpolation; the right filter for upscaling and
/// small adjustments (used by the scale-jitter perturbation).
pub fn resize_bilinear(src: &Image, dst_w: usize, dst_h: usize) -> Image {
    assert!(dst_w > 0 && dst_h > 0, "target dimensions must be non-zero");
    let (sw, sh) = (src.width(), src.height());
    let mut out = Image::new(dst_w, dst_h);
    // Align pixel centers.
    let x_ratio = sw as f64 / dst_w as f64;
    let y_ratio = sh as f64 / dst_h as f64;
    for dy in 0..dst_h {
        let fy = (dy as f64 + 0.5) * y_ratio - 0.5;
        let y0 = fy.floor();
        let ty = (fy - y0) as f32;
        for dx in 0..dst_w {
            let fx = (dx as f64 + 0.5) * x_ratio - 0.5;
            let x0 = fx.floor();
            let tx = (fx - x0) as f32;
            let (xi, yi) = (x0 as isize, y0 as isize);
            let p00 = src.get_clamped(xi, yi);
            let p10 = src.get_clamped(xi + 1, yi);
            let p01 = src.get_clamped(xi, yi + 1);
            let p11 = src.get_clamped(xi + 1, yi + 1);
            let top = p00 + (p10 - p00) * tx;
            let bot = p01 + (p11 - p01) * tx;
            out.set(dx, dy, top + (bot - top) * ty);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_resize_preserves_constant() {
        let src = Image::filled(17, 13, 0.42);
        let out = resize_box(&src, 4, 4);
        assert!(out.data().iter().all(|p| (p - 0.42).abs() < 1e-6));
    }

    #[test]
    fn box_resize_preserves_mean_for_exact_factors() {
        // 4x4 image with known mean, shrink by 2: mean must be identical.
        let data: Vec<f32> = (0..16).map(|i| i as f32 / 15.0).collect();
        let src = Image::from_raw(4, 4, data).unwrap();
        let out = resize_box(&src, 2, 2);
        assert!((out.mean() - src.mean()).abs() < 1e-6);
    }

    #[test]
    fn box_resize_identity() {
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let src = Image::from_raw(4, 3, data).unwrap();
        let out = resize_box(&src, 4, 3);
        assert_eq!(out.data(), src.data());
    }

    #[test]
    fn bilinear_identity() {
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let src = Image::from_raw(4, 3, data).unwrap();
        let out = resize_bilinear(&src, 4, 3);
        for (a, b) in out.data().iter().zip(src.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn bilinear_upscale_interpolates() {
        let src = Image::from_raw(2, 1, vec![0.0, 1.0]).unwrap();
        let out = resize_bilinear(&src, 4, 1);
        // Values must be non-decreasing left to right.
        let d = out.data();
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
        assert!(d[0] < 0.3 && d[3] > 0.7);
    }

    #[test]
    fn downscale_to_single_pixel_is_mean() {
        let data: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let src = Image::from_raw(3, 3, data).unwrap();
        let out = resize_box(&src, 1, 1);
        assert!((out.get(0, 0) - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_target_panics() {
        let src = Image::new(2, 2);
        let _ = resize_box(&src, 0, 1);
    }
}
