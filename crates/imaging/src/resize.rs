//! Image resampling.
//!
//! pHash (Step 1 of the pipeline) first shrinks every image to 32×32.
//! Downscaling uses an area-averaging **box filter** — the standard choice
//! for large shrink factors because it integrates over the source area
//! instead of point-sampling (which would alias and destroy hash
//! stability). Upscaling and mild rescaling use **bilinear** sampling.

use crate::image::Image;

/// Resize with an area-averaging box filter; the right filter for
/// downscaling. Each destination pixel is the mean of the source
/// rectangle it covers.
pub fn resize_box(src: &Image, dst_w: usize, dst_h: usize) -> Image {
    assert!(dst_w > 0 && dst_h > 0, "target dimensions must be non-zero");
    let (sw, sh) = (src.width(), src.height());
    let mut out = Image::new(dst_w, dst_h);
    let x_ratio = sw as f64 / dst_w as f64;
    let y_ratio = sh as f64 / dst_h as f64;
    for dy in 0..dst_h {
        let y0 = (dy as f64 * y_ratio).floor() as usize;
        let y1 = (((dy + 1) as f64 * y_ratio).ceil() as usize).clamp(y0 + 1, sh);
        for dx in 0..dst_w {
            let x0 = (dx as f64 * x_ratio).floor() as usize;
            let x1 = (((dx + 1) as f64 * x_ratio).ceil() as usize).clamp(x0 + 1, sw);
            let mut acc = 0.0f64;
            for sy in y0..y1 {
                for sx in x0..x1 {
                    acc += src.get(sx, sy) as f64;
                }
            }
            let count = ((x1 - x0) * (y1 - y0)) as f64;
            out.set(dx, dy, (acc / count) as f32);
        }
    }
    out
}

/// Cached box-filter geometry for [`resize_box_into_f64`].
///
/// The per-axis source windows depend only on the source/destination
/// shapes, which are fixed for a hashing worker (always
/// `input × input → 32 × 32`), so they are computed once and reused for
/// every image. Steady state the windows never reallocate; geometry is
/// recomputed only when the shape actually changes.
#[derive(Debug, Clone, Default)]
pub struct BoxResizeScratch {
    src_w: usize,
    src_h: usize,
    dst_w: usize,
    dst_h: usize,
    /// Half-open source-column window `[x0, x1)` per destination column.
    x_windows: Vec<(usize, usize)>,
    /// Half-open source-row window `[y0, y1)` per destination row.
    y_windows: Vec<(usize, usize)>,
}

impl BoxResizeScratch {
    /// An empty scratch; geometry is computed on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Make the cached windows match the requested geometry.
    fn ensure(&mut self, src_w: usize, src_h: usize, dst_w: usize, dst_h: usize) {
        if (self.src_w, self.src_h, self.dst_w, self.dst_h) == (src_w, src_h, dst_w, dst_h)
            && !self.x_windows.is_empty()
        {
            return;
        }
        let x_ratio = src_w as f64 / dst_w as f64;
        let y_ratio = src_h as f64 / dst_h as f64;
        self.x_windows.clear();
        for dx in 0..dst_w {
            let x0 = (dx as f64 * x_ratio).floor() as usize;
            let x1 = (((dx + 1) as f64 * x_ratio).ceil() as usize).clamp(x0 + 1, src_w);
            self.x_windows.push((x0, x1));
        }
        self.y_windows.clear();
        for dy in 0..dst_h {
            let y0 = (dy as f64 * y_ratio).floor() as usize;
            let y1 = (((dy + 1) as f64 * y_ratio).ceil() as usize).clamp(y0 + 1, src_h);
            self.y_windows.push((y0, y1));
        }
        (self.src_w, self.src_h) = (src_w, src_h);
        (self.dst_w, self.dst_h) = (dst_w, dst_h);
    }
}

/// Box-resize `src` straight into a caller-provided `f64` plane —
/// the allocation-free fast path of the pHash kernel.
///
/// Produces exactly `resize_box(src, dst_w, dst_h)` followed by an
/// `as f64` widening of every pixel: each destination value accumulates
/// its source rectangle in the identical row-major order and is rounded
/// through `f32` before widening, so the plane is bit-identical to the
/// allocating two-step path. The differences are mechanical only —
/// window bounds come from the scratch instead of being re-derived per
/// pixel, and rows are read as slices of the raw slab with no per-pixel
/// `get()` index arithmetic.
///
/// # Panics
/// Panics when a target dimension is zero or
/// `out.len() != dst_w * dst_h`.
pub fn resize_box_into_f64(
    src: &Image,
    dst_w: usize,
    dst_h: usize,
    scratch: &mut BoxResizeScratch,
    out: &mut [f64],
) {
    assert!(dst_w > 0 && dst_h > 0, "target dimensions must be non-zero");
    assert_eq!(out.len(), dst_w * dst_h, "output plane must be dst_w*dst_h");
    let (sw, sh) = (src.width(), src.height());
    scratch.ensure(sw, sh, dst_w, dst_h);
    let data = src.data();
    for dy in 0..dst_h {
        let (y0, y1) = scratch.y_windows[dy];
        for dx in 0..dst_w {
            let (x0, x1) = scratch.x_windows[dx];
            let mut acc = 0.0f64;
            for sy in y0..y1 {
                for &p in &data[sy * sw + x0..sy * sw + x1] {
                    acc += p as f64;
                }
            }
            let count = ((x1 - x0) * (y1 - y0)) as f64;
            out[dy * dst_w + dx] = (acc / count) as f32 as f64;
        }
    }
}

/// Resize with bilinear interpolation; the right filter for upscaling and
/// small adjustments (used by the scale-jitter perturbation).
pub fn resize_bilinear(src: &Image, dst_w: usize, dst_h: usize) -> Image {
    assert!(dst_w > 0 && dst_h > 0, "target dimensions must be non-zero");
    let (sw, sh) = (src.width(), src.height());
    let mut out = Image::new(dst_w, dst_h);
    // Align pixel centers.
    let x_ratio = sw as f64 / dst_w as f64;
    let y_ratio = sh as f64 / dst_h as f64;
    for dy in 0..dst_h {
        let fy = (dy as f64 + 0.5) * y_ratio - 0.5;
        let y0 = fy.floor();
        let ty = (fy - y0) as f32;
        for dx in 0..dst_w {
            let fx = (dx as f64 + 0.5) * x_ratio - 0.5;
            let x0 = fx.floor();
            let tx = (fx - x0) as f32;
            let (xi, yi) = (x0 as isize, y0 as isize);
            let p00 = src.get_clamped(xi, yi);
            let p10 = src.get_clamped(xi + 1, yi);
            let p01 = src.get_clamped(xi, yi + 1);
            let p11 = src.get_clamped(xi + 1, yi + 1);
            let top = p00 + (p10 - p00) * tx;
            let bot = p01 + (p11 - p01) * tx;
            out.set(dx, dy, top + (bot - top) * ty);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_resize_preserves_constant() {
        let src = Image::filled(17, 13, 0.42);
        let out = resize_box(&src, 4, 4);
        assert!(out.data().iter().all(|p| (p - 0.42).abs() < 1e-6));
    }

    #[test]
    fn box_resize_preserves_mean_for_exact_factors() {
        // 4x4 image with known mean, shrink by 2: mean must be identical.
        let data: Vec<f32> = (0..16).map(|i| i as f32 / 15.0).collect();
        let src = Image::from_raw(4, 4, data).unwrap();
        let out = resize_box(&src, 2, 2);
        assert!((out.mean() - src.mean()).abs() < 1e-6);
    }

    #[test]
    fn box_resize_identity() {
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let src = Image::from_raw(4, 3, data).unwrap();
        let out = resize_box(&src, 4, 3);
        assert_eq!(out.data(), src.data());
    }

    #[test]
    fn bilinear_identity() {
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let src = Image::from_raw(4, 3, data).unwrap();
        let out = resize_bilinear(&src, 4, 3);
        for (a, b) in out.data().iter().zip(src.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn bilinear_upscale_interpolates() {
        let src = Image::from_raw(2, 1, vec![0.0, 1.0]).unwrap();
        let out = resize_bilinear(&src, 4, 1);
        // Values must be non-decreasing left to right.
        let d = out.data();
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
        assert!(d[0] < 0.3 && d[3] > 0.7);
    }

    #[test]
    fn downscale_to_single_pixel_is_mean() {
        let data: Vec<f32> = (0..9).map(|i| i as f32).collect();
        let src = Image::from_raw(3, 3, data).unwrap();
        let out = resize_box(&src, 1, 1);
        assert!((out.get(0, 0) - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_target_panics() {
        let src = Image::new(2, 2);
        let _ = resize_box(&src, 0, 1);
    }

    #[test]
    fn into_f64_is_bit_exact_vs_resize_box() {
        // The pHash kernel depends on exact equality, including the
        // f32 rounding step, across even and awkward shrink ratios.
        for (sw, sh) in [(64usize, 64usize), (57, 61), (33, 32), (8, 40)] {
            let data: Vec<f32> = (0..sw * sh)
                .map(|i| ((i * 2654435761) % 1000) as f32 / 1000.0)
                .collect();
            let src = Image::from_raw(sw, sh, data).unwrap();
            let mut scratch = BoxResizeScratch::new();
            for (dw, dh) in [(32usize, 32usize), (8, 8), (9, 8), (5, 7)] {
                let reference = resize_box(&src, dw, dh);
                let mut plane = vec![0.0f64; dw * dh];
                resize_box_into_f64(&src, dw, dh, &mut scratch, &mut plane);
                for (i, (&got, &want)) in plane.iter().zip(reference.data()).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        (want as f64).to_bits(),
                        "{sw}x{sh}->{dw}x{dh} pixel {i} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_geometry_survives_shape_changes() {
        let a = Image::filled(16, 16, 0.5);
        let b = Image::filled(10, 12, 0.25);
        let mut scratch = BoxResizeScratch::new();
        let mut out = vec![0.0f64; 16];
        resize_box_into_f64(&a, 4, 4, &mut scratch, &mut out);
        assert!(out.iter().all(|p| (p - 0.5).abs() < 1e-6));
        // Shape change re-derives the windows; same scratch, new geometry.
        resize_box_into_f64(&b, 4, 4, &mut scratch, &mut out);
        assert!(out.iter().all(|p| (p - 0.25).abs() < 1e-6));
        // And back again.
        resize_box_into_f64(&a, 4, 4, &mut scratch, &mut out);
        assert!(out.iter().all(|p| (p - 0.5).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "dst_w*dst_h")]
    fn into_f64_wrong_plane_length_panics() {
        let src = Image::new(4, 4);
        let mut scratch = BoxResizeScratch::new();
        let mut out = vec![0.0f64; 3];
        resize_box_into_f64(&src, 2, 2, &mut scratch, &mut out);
    }
}
