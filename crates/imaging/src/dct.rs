//! Discrete cosine transform (type II and its inverse, type III).
//!
//! pHash computes "a feature vector of 64 elements … from the Discrete
//! Cosine Transform among the different frequency domains of the image"
//! (§2.2). This module implements the orthonormal 2-D DCT-II used by
//! `meme-phash` and by the JPEG-like quantization perturbation in
//! [`crate::transform`].
//!
//! For the pipeline's fixed 32×32 hash size a planner ([`Dct2d`]) with a
//! precomputed cosine matrix turns the transform into two small
//! matrix multiplications, which is both simple and fast at this size.

/// A planned 2-D DCT for a fixed square size `n`.
///
/// Holds the orthonormal DCT-II basis matrix `C` (`n × n`, row-major,
/// `C[k][x] = s(k) * cos(pi (2x+1) k / (2n))`). Forward transform is
/// `C * X * C^T`; inverse is `C^T * X * C`.
#[derive(Debug, Clone)]
pub struct Dct2d {
    n: usize,
    basis: Vec<f64>,
}

impl Dct2d {
    /// Plan a DCT of size `n × n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "DCT size must be non-zero");
        let mut basis = vec![0.0f64; n * n];
        let norm0 = (1.0 / n as f64).sqrt();
        let norm = (2.0 / n as f64).sqrt();
        for k in 0..n {
            let s = if k == 0 { norm0 } else { norm };
            for x in 0..n {
                basis[k * n + x] = s
                    * (std::f64::consts::PI * (2.0 * x as f64 + 1.0) * k as f64 / (2.0 * n as f64))
                        .cos();
            }
        }
        Self { n, basis }
    }

    /// Transform size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Forward 2-D DCT-II of a row-major `n × n` block.
    ///
    /// # Panics
    /// Panics when `input.len() != n * n`.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.n * self.n, "input must be n*n");
        // tmp = C * X  (transform columns of each row-block)
        let tmp = self.mul_basis_left(input);
        // out = tmp * C^T
        self.mul_basis_right_t(&tmp)
    }

    /// Inverse 2-D DCT (type III) of a row-major `n × n` coefficient
    /// block; `inverse(forward(x)) == x` up to floating-point error.
    ///
    /// # Panics
    /// Panics when `input.len() != n * n`.
    pub fn inverse(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.n * self.n, "input must be n*n");
        // out = C^T * X * C
        let tmp = self.mul_basis_t_left(input);
        self.mul_basis_right(&tmp)
    }

    /// Truncated forward 2-D DCT-II: compute only the top-left
    /// `hs × hs` low-frequency block of [`Dct2d::forward`]'s output,
    /// writing into caller-provided buffers (`tmp` is the `hs × n`
    /// partial product `C · X` restricted to its first `hs` rows).
    ///
    /// Every retained coefficient is produced by the *identical* dot
    /// products in the *identical* accumulation order as the full
    /// transform — row `k` of `C · X` never reads any other row, and
    /// the right-hand multiply is an independent dot product per output
    /// cell — so the block is bit-exact against `forward` followed by a
    /// crop, at roughly `hs/n`-th of the flops. pHash only ever reads
    /// this block (8×8 of 32×32), hence the dedicated entry point.
    ///
    /// # Panics
    /// Panics when `hs > n`, `input.len() != n * n`,
    /// `tmp.len() != hs * n`, or `out.len() != hs * hs`.
    pub fn forward_topleft_into(&self, input: &[f64], hs: usize, tmp: &mut [f64], out: &mut [f64]) {
        let n = self.n;
        assert_eq!(input.len(), n * n, "input must be n*n");
        assert!(hs <= n, "block size must not exceed the transform size");
        assert_eq!(tmp.len(), hs * n, "tmp must be hs*n");
        assert_eq!(out.len(), hs * hs, "out must be hs*hs");
        // First hs rows of C * X, accumulated exactly like
        // `mul_basis_left` (same i-order per row, same zero skip).
        tmp.fill(0.0);
        for k in 0..hs {
            for i in 0..n {
                let c = self.basis[k * n + i];
                if c == 0.0 {
                    continue;
                }
                for j in 0..n {
                    tmp[k * n + j] += c * input[i * n + j];
                }
            }
        }
        // First hs columns of (C X) * C^T, dot products ordered exactly
        // like `mul_basis_right_t`.
        for i in 0..hs {
            for k in 0..hs {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += tmp[i * n + j] * self.basis[k * n + j];
                }
                out[i * hs + k] = acc;
            }
        }
    }

    fn mul_basis_left(&self, x: &[f64]) -> Vec<f64> {
        // (C X)[k][j] = sum_i C[k][i] X[i][j]
        let n = self.n;
        let mut out = vec![0.0; n * n];
        for k in 0..n {
            for i in 0..n {
                let c = self.basis[k * n + i];
                if c == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[k * n + j] += c * x[i * n + j];
                }
            }
        }
        out
    }

    fn mul_basis_t_left(&self, x: &[f64]) -> Vec<f64> {
        // (C^T X)[k][j] = sum_i C[i][k] X[i][j]
        let n = self.n;
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                let c = self.basis[i * n + k];
                if c == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[k * n + j] += c * x[i * n + j];
                }
            }
        }
        out
    }

    fn mul_basis_right_t(&self, x: &[f64]) -> Vec<f64> {
        // (X C^T)[i][k] = sum_j X[i][j] C[k][j]
        let n = self.n;
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += x[i * n + j] * self.basis[k * n + j];
                }
                out[i * n + k] = acc;
            }
        }
        out
    }

    fn mul_basis_right(&self, x: &[f64]) -> Vec<f64> {
        // (X C)[i][k] = sum_j X[i][j] C[j][k]
        let n = self.n;
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let v = x[i * n + j];
                if v == 0.0 {
                    continue;
                }
                for k in 0..n {
                    out[i * n + k] += v * self.basis[j * n + k];
                }
            }
        }
        out
    }
}

/// One-shot forward 2-D DCT-II of a square block (plans internally;
/// prefer [`Dct2d`] in loops).
pub fn dct2_2d(input: &[f64], n: usize) -> Vec<f64> {
    Dct2d::new(n).forward(input)
}

/// One-shot inverse 2-D DCT of a square coefficient block.
pub fn idct2_2d(input: &[f64], n: usize) -> Vec<f64> {
    Dct2d::new(n).inverse(input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_block_has_only_dc() {
        let n = 8;
        let block = vec![0.5; n * n];
        let coeffs = dct2_2d(&block, n);
        // DC coefficient of an orthonormal DCT of a constant c is c * n.
        assert!((coeffs[0] - 0.5 * n as f64).abs() < 1e-9);
        for (i, c) in coeffs.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-9, "coeff {i} = {c}");
        }
    }

    #[test]
    fn roundtrip_exact() {
        let n = 16;
        let input: Vec<f64> = (0..n * n)
            .map(|i| ((i * 31 + 7) % 97) as f64 / 97.0)
            .collect();
        let plan = Dct2d::new(n);
        let back = plan.inverse(&plan.forward(&input));
        for (a, b) in input.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        // Orthonormal transform preserves the Frobenius norm.
        let n = 8;
        let input: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.7).sin()).collect();
        let coeffs = dct2_2d(&input, n);
        let e_in: f64 = input.iter().map(|x| x * x).sum();
        let e_out: f64 = coeffs.iter().map(|x| x * x).sum();
        assert!((e_in - e_out).abs() < 1e-9);
    }

    #[test]
    fn linearity() {
        let n = 8;
        let a: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.31).cos()).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.11).sin()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x + 3.0 * y).collect();
        let plan = Dct2d::new(n);
        let fa = plan.forward(&a);
        let fb = plan.forward(&b);
        let fsum = plan.forward(&sum);
        for i in 0..n * n {
            assert!((fsum[i] - (2.0 * fa[i] + 3.0 * fb[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn single_basis_function_concentrates() {
        // An image equal to one cosine basis function should produce a
        // single dominant coefficient.
        let n = 16;
        let (u, v) = (3usize, 5usize);
        let mut img = vec![0.0f64; n * n];
        for y in 0..n {
            for x in 0..n {
                img[y * n + x] = (std::f64::consts::PI * (2.0 * x as f64 + 1.0) * u as f64
                    / (2.0 * n as f64))
                    .cos()
                    * (std::f64::consts::PI * (2.0 * y as f64 + 1.0) * v as f64 / (2.0 * n as f64))
                        .cos();
            }
        }
        let coeffs = dct2_2d(&img, n);
        let mut best = (0usize, 0.0f64);
        for (i, c) in coeffs.iter().enumerate() {
            if c.abs() > best.1 {
                best = (i, c.abs());
            }
        }
        assert_eq!(best.0, v * n + u);
    }

    #[test]
    #[should_panic(expected = "n*n")]
    fn wrong_input_length_panics() {
        let plan = Dct2d::new(4);
        let _ = plan.forward(&[0.0; 15]);
    }

    #[test]
    fn truncated_block_is_bit_exact_vs_full_then_crop() {
        // The pHash kernel relies on this being *exact* equality, not
        // approximate: the truncated path must produce the identical
        // f64 bits as the full transform cropped to the block.
        let n = 32;
        let hs = 8;
        let plan = Dct2d::new(n);
        for seed in 0..4u64 {
            let input: Vec<f64> = (0..n * n)
                .map(|i| {
                    let x = (i as u64)
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(seed);
                    (x >> 11) as f64 / (1u64 << 53) as f64
                })
                .collect();
            let full = plan.forward(&input);
            let mut tmp = vec![0.0; hs * n];
            let mut block = vec![0.0; hs * hs];
            plan.forward_topleft_into(&input, hs, &mut tmp, &mut block);
            for y in 0..hs {
                for x in 0..hs {
                    assert_eq!(
                        block[y * hs + x].to_bits(),
                        full[y * n + x].to_bits(),
                        "coefficient ({y},{x}) diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn truncated_full_size_matches_forward() {
        // hs == n degenerates to the full transform.
        let n = 8;
        let plan = Dct2d::new(n);
        let input: Vec<f64> = (0..n * n).map(|i| (i as f64 * 0.37).sin()).collect();
        let full = plan.forward(&input);
        let mut tmp = vec![0.0; n * n];
        let mut out = vec![0.0; n * n];
        plan.forward_topleft_into(&input, n, &mut tmp, &mut out);
        assert_eq!(full, out);
    }

    #[test]
    #[should_panic(expected = "hs*n")]
    fn truncated_wrong_tmp_length_panics() {
        let plan = Dct2d::new(4);
        let mut tmp = vec![0.0; 3];
        let mut out = vec![0.0; 4];
        plan.forward_topleft_into(&[0.0; 16], 2, &mut tmp, &mut out);
    }
}
