//! Caption-band detection — a lightweight stand-in for the OCR the
//! paper lists as future work ("incorporating OCR techniques to capture
//! associated text-based features that memes usually contain", §7).
//!
//! Image macros carry near-uniform, extreme-tone bands across the top
//! or bottom with embedded text strokes. The detector looks for exactly
//! that: horizontal strips whose pixels are dominated by one extreme
//! tone with a minority of contrasting "text" pixels. Because the
//! simulator's caption edits ([`crate::synth::VariantOp::CaptionTop`] /
//! `CaptionBottom`) are ground truth, detector quality is measurable,
//! not asserted.

use crate::image::Image;
use serde::{Deserialize, Serialize};

/// Detection result for one image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaptionPresence {
    /// A caption band across the top.
    pub top: bool,
    /// A caption band across the bottom.
    pub bottom: bool,
}

impl CaptionPresence {
    /// Whether any caption was found.
    pub fn any(self) -> bool {
        self.top || self.bottom
    }
}

/// Detector thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaptionDetector {
    /// Fraction of the image height scanned from each edge.
    pub band_frac: f32,
    /// A row counts as "band-like" when at least this fraction of its
    /// pixels sit within `tone_window` of the row's dominant extreme.
    pub row_uniformity: f32,
    /// Distance from pure black/white still counted as the band tone.
    pub tone_window: f32,
    /// Fraction of band-like rows (within the scanned strip) required
    /// to call a caption.
    pub min_band_rows: f32,
}

impl Default for CaptionDetector {
    fn default() -> Self {
        Self {
            band_frac: 0.22,
            row_uniformity: 0.62,
            tone_window: 0.18,
            min_band_rows: 0.5,
        }
    }
}

impl CaptionDetector {
    /// Detect caption bands in an image.
    pub fn detect(&self, img: &Image) -> CaptionPresence {
        let h = img.height();
        let strip = ((h as f32 * self.band_frac) as usize).max(1);
        CaptionPresence {
            top: self.strip_is_caption(img, 0, strip),
            bottom: self.strip_is_caption(img, h - strip, h),
        }
    }

    /// Whether rows `y0..y1` look like a caption band.
    fn strip_is_caption(&self, img: &Image, y0: usize, y1: usize) -> bool {
        let w = img.width();
        let mut band_rows = 0usize;
        let rows = y1 - y0;
        for y in y0..y1 {
            // Dominant extreme of the row: bright or dark.
            let mut bright = 0usize;
            let mut dark = 0usize;
            for x in 0..w {
                let p = img.get(x, y);
                if p >= 1.0 - self.tone_window {
                    bright += 1;
                } else if p <= self.tone_window {
                    dark += 1;
                }
            }
            let dominant = bright.max(dark) as f32 / w as f32;
            if dominant >= self.row_uniformity {
                band_rows += 1;
            }
        }
        band_rows as f32 / rows as f32 >= self.min_band_rows
    }

    /// Evaluate the detector against labeled images. Returns
    /// `(accuracy, precision, recall)` for the "has any caption" task.
    pub fn evaluate(&self, labeled: &[(Image, bool)]) -> (f64, f64, f64) {
        let (mut tp, mut fp, mut tn, mut fne) = (0.0f64, 0.0, 0.0, 0.0);
        for (img, truth) in labeled {
            match (self.detect(img).any(), *truth) {
                (true, true) => tp += 1.0,
                (true, false) => fp += 1.0,
                (false, false) => tn += 1.0,
                (false, true) => fne += 1.0,
            }
        }
        let n = (tp + fp + tn + fne).max(1.0);
        let accuracy = (tp + tn) / n;
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 1.0 };
        let recall = if tp + fne > 0.0 { tp / (tp + fne) } else { 1.0 };
        (accuracy, precision, recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{JitterConfig, TemplateGenome, VariantGenome, VariantOp};
    use meme_stats::seeded_rng;

    fn captioned(template: u64, top: bool) -> Image {
        let v = VariantGenome {
            template: TemplateGenome::new(template),
            ops: vec![if top {
                VariantOp::CaptionTop {
                    height_frac: 0.22,
                    tone: 0.97,
                }
            } else {
                VariantOp::CaptionBottom {
                    height_frac: 0.22,
                    tone: 0.03,
                }
            }],
        };
        v.render(64)
    }

    #[test]
    fn detects_clean_captions() {
        let d = CaptionDetector::default();
        let top = d.detect(&captioned(1, true));
        assert!(top.top, "top caption missed");
        let bottom = d.detect(&captioned(2, false));
        assert!(bottom.bottom, "bottom caption missed");
        assert!(bottom.any());
    }

    #[test]
    fn plain_templates_are_negative() {
        let d = CaptionDetector::default();
        let mut false_pos = 0;
        for seed in 0..30u64 {
            let img = TemplateGenome::new(seed).render(64);
            if d.detect(&img).any() {
                false_pos += 1;
            }
        }
        assert!(false_pos <= 2, "{false_pos}/30 plain templates flagged");
    }

    #[test]
    fn accuracy_on_ground_truth_variants() {
        // Labeled corpus straight from the generator: variants whose op
        // list contains a caption vs ones without, under full re-post
        // jitter.
        let d = CaptionDetector::default();
        let mut rng = seeded_rng(7);
        let mut labeled = Vec::new();
        for seed in 0..40u64 {
            let v = VariantGenome::random(TemplateGenome::new(seed), seed, 1 + (seed % 2) as usize);
            let truth = v.ops.iter().any(|op| {
                matches!(
                    op,
                    VariantOp::CaptionTop { .. } | VariantOp::CaptionBottom { .. }
                )
            });
            let img = v.render_jittered(64, &JitterConfig::default(), &mut rng);
            labeled.push((img, truth));
        }
        let (accuracy, precision, _recall) = d.evaluate(&labeled);
        assert!(accuracy > 0.75, "accuracy {accuracy}");
        assert!(precision > 0.75, "precision {precision}");
    }

    #[test]
    fn evaluate_handles_empty_input() {
        let d = CaptionDetector::default();
        let (a, p, r) = d.evaluate(&[]);
        assert_eq!((a, p, r), (0.0, 1.0, 1.0));
    }
}
