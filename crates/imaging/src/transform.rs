//! Photometric and geometric perturbations.
//!
//! §2.2 of the paper relies on pHash being "robust against changes in the
//! images, e.g., signal processing operations and direct manipulation".
//! These are exactly the operations meme re-posters apply: recompression,
//! brightness/contrast tweaks, small crops, caption bars, watermark
//! overlays. The simulator uses them to produce within-variant jitter and
//! the test suite uses them to verify hash robustness.

use crate::dct::Dct2d;
use crate::image::Image;
use crate::resize::{resize_bilinear, resize_box};
use meme_stats::dist::normal_sample;
use rand::Rng;

/// Add a constant to every pixel (brightness shift), then clamp.
pub fn brightness(img: &Image, delta: f32) -> Image {
    let mut out = img.clone();
    out.map_in_place(|p| p + delta);
    out.clamp();
    out
}

/// Scale contrast around mid-gray by `factor`, then clamp.
pub fn contrast(img: &Image, factor: f32) -> Image {
    let mut out = img.clone();
    out.map_in_place(|p| 0.5 + (p - 0.5) * factor);
    out.clamp();
    out
}

/// Gamma-correct (`p^gamma` on clamped pixels).
///
/// # Panics
/// Panics when `gamma <= 0`.
pub fn gamma(img: &Image, gamma: f32) -> Image {
    assert!(gamma > 0.0, "gamma must be positive");
    let mut out = img.clone();
    out.map_in_place(|p| p.clamp(0.0, 1.0).powf(gamma));
    out
}

/// Add i.i.d. Gaussian pixel noise with standard deviation `sigma`.
pub fn gaussian_noise<R: Rng + ?Sized>(img: &Image, sigma: f32, rng: &mut R) -> Image {
    let mut out = img.clone();
    for p in out.data_mut() {
        *p += sigma * normal_sample(rng) as f32;
    }
    out.clamp();
    out
}

/// Horizontal mirror.
pub fn flip_horizontal(img: &Image) -> Image {
    let (w, h) = (img.width(), img.height());
    let mut out = Image::new(w, h);
    for y in 0..h {
        for x in 0..w {
            out.set(x, y, img.get(w - 1 - x, y));
        }
    }
    out
}

/// Crop `frac` of the border away on all sides and resize back to the
/// original dimensions (a common re-post manipulation).
///
/// # Panics
/// Panics unless `0 <= frac < 0.5`.
pub fn border_crop(img: &Image, frac: f32) -> Image {
    assert!(
        (0.0..0.5).contains(&frac),
        "crop fraction must be in [0, 0.5)"
    );
    let (w, h) = (img.width(), img.height());
    let dx = ((w as f32) * frac) as usize;
    let dy = ((h as f32) * frac) as usize;
    let cw = (w - 2 * dx).max(1);
    let ch = (h - 2 * dy).max(1);
    let mut cropped = Image::new(cw, ch);
    for y in 0..ch {
        for x in 0..cw {
            cropped.set(x, y, img.get(x + dx, y + dy));
        }
    }
    resize_bilinear(&cropped, w, h)
}

/// Rescale by `factor` (via box filter when shrinking, bilinear when
/// growing) and back to the original size; models thumbnailing /
/// re-upload cycles.
///
/// # Panics
/// Panics when `factor <= 0`.
pub fn rescale_cycle(img: &Image, factor: f32) -> Image {
    assert!(factor > 0.0, "scale factor must be positive");
    let (w, h) = (img.width(), img.height());
    let nw = ((w as f32 * factor).round() as usize).max(1);
    let nh = ((h as f32 * factor).round() as usize).max(1);
    let mid = if factor < 1.0 {
        resize_box(img, nw, nh)
    } else {
        resize_bilinear(img, nw, nh)
    };
    resize_bilinear(&mid, w, h)
}

/// Paint a caption band (top or bottom) with pseudo-text texture — the
/// classic image-macro manipulation. `height_frac` is the band height as
/// a fraction of the image, `tone` the band luminance.
///
/// # Panics
/// Panics unless `0 < height_frac <= 0.5`.
pub fn caption_band(img: &Image, top: bool, height_frac: f32, tone: f32) -> Image {
    assert!(
        height_frac > 0.0 && height_frac <= 0.5,
        "caption band height must be in (0, 0.5]"
    );
    let (w, h) = (img.width(), img.height());
    let band = ((h as f32 * height_frac) as usize).max(1);
    let mut out = img.clone();
    let (y0, y1) = if top { (0, band) } else { (h - band, h) };
    out.fill_rect(0, y0, w, y1, tone);
    // Pseudo-text: alternating short dashes in contrasting tone on the
    // band's center rows, so captions carry mid-frequency energy the way
    // real text does.
    let text_tone = if tone > 0.5 { tone - 0.6 } else { tone + 0.6 };
    let rows = [(y0 + band / 3), (y0 + 2 * band / 3)];
    for &row in &rows {
        if row >= y1 {
            continue;
        }
        let mut x = w / 12;
        while x + 3 < w - w / 12 {
            for dx in 0..3 {
                out.set(x + dx, row, text_tone.clamp(0.0, 1.0));
            }
            x += 5;
        }
    }
    out
}

/// JPEG-like lossy quantization: blockwise DCT, uniform quantization of
/// coefficients with step `step`, inverse DCT. Models recompression
/// artifacts.
///
/// # Panics
/// Panics when `step <= 0`.
pub fn quantize_dct(img: &Image, block: usize, step: f64) -> Image {
    assert!(step > 0.0, "quantization step must be positive");
    let block = block.max(2);
    let plan = Dct2d::new(block);
    let (w, h) = (img.width(), img.height());
    let mut out = img.clone();
    let mut buf = vec![0.0f64; block * block];
    for by in (0..h).step_by(block) {
        for bx in (0..w).step_by(block) {
            for y in 0..block {
                for x in 0..block {
                    buf[y * block + x] =
                        img.get_clamped((bx + x) as isize, (by + y) as isize) as f64;
                }
            }
            let mut coeffs = plan.forward(&buf);
            for c in &mut coeffs {
                *c = (*c / step).round() * step;
            }
            let rec = plan.inverse(&coeffs);
            for y in 0..block {
                for x in 0..block {
                    if bx + x < w && by + y < h {
                        out.set(bx + x, by + y, rec[y * block + x] as f32);
                    }
                }
            }
        }
    }
    out.clamp();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_stats::seeded_rng;

    fn gradient(w: usize, h: usize) -> Image {
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, (x + y) as f32 / (w + h) as f32);
            }
        }
        img
    }

    #[test]
    fn brightness_shifts_mean() {
        let img = Image::filled(8, 8, 0.4);
        let out = brightness(&img, 0.2);
        assert!((out.mean() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn brightness_clamps() {
        let img = Image::filled(4, 4, 0.9);
        let out = brightness(&img, 0.5);
        assert_eq!(out.mean(), 1.0);
    }

    #[test]
    fn contrast_preserves_midgray() {
        let img = Image::filled(4, 4, 0.5);
        let out = contrast(&img, 2.0);
        assert_eq!(out.mean(), 0.5);
    }

    #[test]
    fn contrast_expands_spread() {
        let img = gradient(8, 8);
        let out = contrast(&img, 1.5);
        let spread_in = img.data().iter().cloned().fold(f32::MIN, f32::max)
            - img.data().iter().cloned().fold(f32::MAX, f32::min);
        let spread_out = out.data().iter().cloned().fold(f32::MIN, f32::max)
            - out.data().iter().cloned().fold(f32::MAX, f32::min);
        assert!(spread_out > spread_in);
    }

    #[test]
    fn gamma_identity() {
        let img = gradient(6, 6);
        let out = gamma(&img, 1.0);
        assert!(img.mad(&out).unwrap() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn gamma_rejects_nonpositive() {
        let _ = gamma(&Image::new(2, 2), 0.0);
    }

    #[test]
    fn noise_is_small_and_seeded() {
        let img = Image::filled(16, 16, 0.5);
        let mut r1 = seeded_rng(5);
        let mut r2 = seeded_rng(5);
        let a = gaussian_noise(&img, 0.05, &mut r1);
        let b = gaussian_noise(&img, 0.05, &mut r2);
        assert_eq!(a, b);
        let mad = img.mad(&a).unwrap();
        assert!(mad > 0.0 && mad < 0.1, "mad {mad}");
    }

    #[test]
    fn flip_is_involution() {
        let img = gradient(7, 5);
        let back = flip_horizontal(&flip_horizontal(&img));
        assert_eq!(img, back);
    }

    #[test]
    fn flip_moves_pixels() {
        let mut img = Image::new(4, 1);
        img.set(0, 0, 1.0);
        let out = flip_horizontal(&img);
        assert_eq!(out.get(3, 0), 1.0);
        assert_eq!(out.get(0, 0), 0.0);
    }

    #[test]
    fn border_crop_keeps_dimensions() {
        let img = gradient(32, 32);
        let out = border_crop(&img, 0.1);
        assert_eq!(out.width(), 32);
        assert_eq!(out.height(), 32);
        // Zero crop is identity-ish.
        let same = border_crop(&img, 0.0);
        assert!(img.mad(&same).unwrap() < 1e-5);
    }

    #[test]
    fn rescale_cycle_approximates_original() {
        let img = gradient(32, 32);
        let out = rescale_cycle(&img, 0.5);
        assert_eq!(out.width(), 32);
        let mad = img.mad(&out).unwrap();
        assert!(mad < 0.05, "mad {mad}");
    }

    #[test]
    fn caption_band_paints_top() {
        let img = Image::filled(32, 32, 0.5);
        let out = caption_band(&img, true, 0.25, 1.0);
        // Top rows painted bright (except text dashes), bottom untouched.
        assert!(out.get(0, 0) > 0.9);
        assert_eq!(out.get(0, 31), 0.5);
        // Text rows contain dark dashes.
        let has_dark = (0..32).any(|x| out.get(x, 2) < 0.5);
        assert!(has_dark);
    }

    #[test]
    fn caption_band_paints_bottom() {
        let img = Image::filled(32, 32, 0.5);
        let out = caption_band(&img, false, 0.25, 0.0);
        assert!(out.get(0, 31) < 0.1);
        assert_eq!(out.get(0, 0), 0.5);
    }

    #[test]
    fn quantize_with_tiny_step_is_near_identity() {
        let img = gradient(16, 16);
        let out = quantize_dct(&img, 8, 1e-6);
        assert!(img.mad(&out).unwrap() < 1e-4);
    }

    #[test]
    fn quantize_with_big_step_degrades() {
        let img = gradient(16, 16);
        let fine = quantize_dct(&img, 8, 0.01);
        let coarse = quantize_dct(&img, 8, 0.5);
        assert!(img.mad(&coarse).unwrap() > img.mad(&fine).unwrap());
    }
}
