//! Synthetic raster substrate for the `origins-of-memes` workspace.
//!
//! The original study processed 160M real images. That corpus is not
//! available, so this crate provides the *image substrate* the pipeline
//! runs on instead:
//!
//! * [`Image`] — a grayscale `f32` raster with drawing primitives;
//! * [`resize`] — box-filter and bilinear resampling (pHash preprocessing);
//! * [`dct`] — the 2-D type-II/III discrete cosine transform that both the
//!   perceptual hash (`meme-phash`) and the JPEG-like quantization
//!   perturbation are built on;
//! * [`transform`] — the photometric and geometric perturbations against
//!   which pHash must be robust (brightness, contrast, gamma, noise,
//!   crops, captions, overlays, quantization), mirroring the
//!   signal-processing robustness discussion in §2.2 of the paper;
//! * [`synth`] — a procedural renderer that turns *template genomes* into
//!   distinctive base images and *variant genomes* into meme variants,
//!   giving the simulator ground truth for every image's meme identity.

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // pixel loops read clearer with explicit indices
#![warn(missing_docs)]

pub mod caption;
pub mod dct;
pub mod image;
pub mod resize;
pub mod synth;
pub mod transform;

pub use caption::{CaptionDetector, CaptionPresence};
pub use dct::{dct2_2d, idct2_2d, Dct2d};
pub use image::Image;
pub use resize::{resize_bilinear, resize_box};
pub use synth::{TemplateGenome, VariantGenome, VariantOp};
