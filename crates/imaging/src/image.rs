//! Grayscale raster image.
//!
//! All pipeline stages operate on single-channel luminance rasters: pHash
//! discards color before hashing, so the substrate does too. Pixels are
//! `f32` in the nominal range `[0, 1]`; intermediate operations may leave
//! the range and [`Image::clamp`] restores it.

use serde::{Deserialize, Serialize};

/// A grayscale image stored row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl Image {
    /// Create an image filled with a constant luminance.
    ///
    /// # Panics
    /// Panics if either dimension is zero — a zero-area image is a
    /// programming error everywhere in this workspace.
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Self {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Create a black image.
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, 0.0)
    }

    /// Build from raw row-major data. Returns `None` when the buffer does
    /// not match `width * height` or a dimension is zero.
    pub fn from_raw(width: usize, height: usize, data: Vec<f32>) -> Option<Self> {
        if width == 0 || height == 0 || data.len() != width * height {
            return None;
        }
        Some(Self {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw row-major pixel buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Pixel accessor (no bounds check beyond the slice's own).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        self.data[y * self.width + x]
    }

    /// Pixel accessor clamped to the image border (for sampling filters).
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.get(x, y)
    }

    /// Set one pixel.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        self.data[y * self.width + x] = v;
    }

    /// Apply `f` to every pixel in place.
    pub fn map_in_place(&mut self, mut f: impl FnMut(f32) -> f32) {
        for p in &mut self.data {
            *p = f(*p);
        }
    }

    /// Clamp all pixels into `[0, 1]`.
    pub fn clamp(&mut self) {
        self.map_in_place(|p| p.clamp(0.0, 1.0));
    }

    /// Mean luminance.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Fill an axis-aligned rectangle (clipped to the image) with a
    /// constant value. `x1`/`y1` are exclusive.
    pub fn fill_rect(&mut self, x0: usize, y0: usize, x1: usize, y1: usize, v: f32) {
        let x1 = x1.min(self.width);
        let y1 = y1.min(self.height);
        for y in y0.min(y1)..y1 {
            for x in x0.min(x1)..x1 {
                self.set(x, y, v);
            }
        }
    }

    /// Blend a soft-edged ellipse into the image: pixels inside the
    /// ellipse move toward `tone` with weight falling off towards the rim.
    pub fn blend_ellipse(&mut self, cx: f64, cy: f64, rx: f64, ry: f64, tone: f32, opacity: f32) {
        if rx <= 0.0 || ry <= 0.0 {
            return;
        }
        let x_lo = ((cx - rx).floor().max(0.0)) as usize;
        let x_hi = ((cx + rx).ceil() as usize).min(self.width.saturating_sub(1));
        let y_lo = ((cy - ry).floor().max(0.0)) as usize;
        let y_hi = ((cy + ry).ceil() as usize).min(self.height.saturating_sub(1));
        for y in y_lo..=y_hi.min(self.height - 1) {
            for x in x_lo..=x_hi.min(self.width - 1) {
                let dx = (x as f64 + 0.5 - cx) / rx;
                let dy = (y as f64 + 0.5 - cy) / ry;
                let d2 = dx * dx + dy * dy;
                if d2 < 1.0 {
                    // Smooth falloff: 1 at center, 0 at rim.
                    let w = ((1.0 - d2) as f32) * opacity;
                    let p = self.get(x, y);
                    self.set(x, y, p + (tone - p) * w.clamp(0.0, 1.0));
                }
            }
        }
    }

    /// Mean absolute pixel difference to another image of the same shape;
    /// `None` when shapes differ. Used by tests to quantify perturbations.
    pub fn mad(&self, other: &Image) -> Option<f32> {
        if self.width != other.width || self.height != other.height {
            return None;
        }
        let sum: f32 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .sum();
        Some(sum / self.data.len() as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Image::new(0, 4);
    }

    #[test]
    fn from_raw_validates_shape() {
        assert!(Image::from_raw(2, 2, vec![0.0; 4]).is_some());
        assert!(Image::from_raw(2, 2, vec![0.0; 3]).is_none());
        assert!(Image::from_raw(0, 2, vec![]).is_none());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::new(3, 2);
        img.set(2, 1, 0.75);
        assert_eq!(img.get(2, 1), 0.75);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    fn clamped_access_at_borders() {
        let mut img = Image::new(2, 2);
        img.set(0, 0, 0.5);
        assert_eq!(img.get_clamped(-5, -5), 0.5);
        img.set(1, 1, 0.9);
        assert_eq!(img.get_clamped(10, 10), 0.9);
    }

    #[test]
    fn mean_and_clamp() {
        let mut img = Image::from_raw(2, 1, vec![-1.0, 3.0]).unwrap();
        assert_eq!(img.mean(), 1.0);
        img.clamp();
        assert_eq!(img.data(), &[0.0, 1.0]);
    }

    #[test]
    fn fill_rect_clips() {
        let mut img = Image::new(4, 4);
        img.fill_rect(2, 2, 100, 100, 1.0);
        assert_eq!(img.get(3, 3), 1.0);
        assert_eq!(img.get(1, 1), 0.0);
        let lit = img.data().iter().filter(|p| **p == 1.0).count();
        assert_eq!(lit, 4);
    }

    #[test]
    fn ellipse_blends_center_strongest() {
        let mut img = Image::new(16, 16);
        img.blend_ellipse(8.0, 8.0, 5.0, 5.0, 1.0, 1.0);
        assert!(img.get(8, 8) > 0.8);
        assert_eq!(img.get(0, 0), 0.0);
        // Rim pixels are dimmer than center.
        assert!(img.get(11, 8) < img.get(8, 8));
    }

    #[test]
    fn ellipse_degenerate_radius_is_noop() {
        let mut img = Image::new(4, 4);
        let before = img.clone();
        img.blend_ellipse(2.0, 2.0, 0.0, 3.0, 1.0, 1.0);
        assert_eq!(img, before);
    }

    #[test]
    fn mad_requires_same_shape() {
        let a = Image::new(2, 2);
        let b = Image::new(3, 2);
        assert!(a.mad(&b).is_none());
        let c = Image::filled(2, 2, 0.5);
        assert_eq!(a.mad(&c), Some(0.5));
    }
}
