//! Property-based tests for the imaging substrate.

use meme_imaging::dct::Dct2d;
use meme_imaging::image::Image;
use meme_imaging::resize::{resize_bilinear, resize_box};
use meme_imaging::synth::{JitterConfig, TemplateGenome, VariantGenome, VariantOp};
use meme_imaging::transform;
use meme_stats::seeded_rng;
use proptest::prelude::*;

fn arbitrary_image(max_side: usize) -> impl Strategy<Value = Image> {
    (2usize..max_side, 2usize..max_side, any::<u64>()).prop_map(|(w, h, seed)| {
        let mut rng = seeded_rng(seed);
        let mut img = Image::new(w, h);
        for p in img.data_mut() {
            *p = rand::RngExt::random::<f32>(&mut rng);
        }
        img
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dct_roundtrip_on_random_blocks(seed: u64, n in 2usize..24) {
        let mut rng = seeded_rng(seed);
        let input: Vec<f64> = (0..n * n)
            .map(|_| rand::RngExt::random::<f64>(&mut rng))
            .collect();
        let plan = Dct2d::new(n);
        let back = plan.inverse(&plan.forward(&input));
        for (a, b) in input.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn dct_preserves_energy(seed: u64, n in 2usize..24) {
        let mut rng = seeded_rng(seed);
        let input: Vec<f64> = (0..n * n)
            .map(|_| rand::RngExt::random::<f64>(&mut rng) - 0.5)
            .collect();
        let coeffs = Dct2d::new(n).forward(&input);
        let e_in: f64 = input.iter().map(|x| x * x).sum();
        let e_out: f64 = coeffs.iter().map(|x| x * x).sum();
        prop_assert!((e_in - e_out).abs() < 1e-8 * e_in.max(1.0));
    }

    #[test]
    fn box_resize_stays_in_pixel_range(img in arbitrary_image(40), w in 1usize..50, h in 1usize..50) {
        let out = resize_box(&img, w, h);
        prop_assert_eq!(out.width(), w);
        prop_assert_eq!(out.height(), h);
        // Area averaging cannot exceed the input range.
        for p in out.data() {
            prop_assert!((-1e-6..=1.0 + 1e-6).contains(&(*p as f64)));
        }
    }

    #[test]
    fn bilinear_resize_stays_in_pixel_range(img in arbitrary_image(40), w in 1usize..50, h in 1usize..50) {
        let out = resize_bilinear(&img, w, h);
        for p in out.data() {
            prop_assert!((-1e-6..=1.0 + 1e-6).contains(&(*p as f64)));
        }
    }

    #[test]
    fn transforms_preserve_range(img in arbitrary_image(32), delta in -0.5f32..0.5, factor in 0.1f32..3.0, g in 0.2f32..4.0) {
        for out in [
            transform::brightness(&img, delta),
            transform::contrast(&img, factor),
            transform::gamma(&img, g),
        ] {
            for p in out.data() {
                prop_assert!((0.0..=1.0).contains(p));
            }
            prop_assert_eq!(out.width(), img.width());
        }
    }

    #[test]
    fn flip_is_involutive(img in arbitrary_image(32)) {
        let back = transform::flip_horizontal(&transform::flip_horizontal(&img));
        prop_assert_eq!(back, img);
    }

    #[test]
    fn template_render_is_normalized(seed: u64, size in 8usize..96) {
        let img = TemplateGenome::new(seed).render(size);
        prop_assert_eq!(img.width(), size);
        for p in img.data() {
            prop_assert!((0.0..=1.0).contains(p));
        }
    }

    #[test]
    fn variant_ops_keep_dimensions(seed: u64, op_seed: u64) {
        let base = TemplateGenome::new(seed).render(32);
        let mut rng = seeded_rng(op_seed);
        let op = VariantOp::random(&mut rng);
        let v = VariantGenome {
            template: TemplateGenome::new(seed),
            ops: vec![op],
        };
        let out = v.render(32);
        prop_assert_eq!(out.width(), base.width());
        for p in out.data() {
            prop_assert!(p.is_finite());
        }
    }

    #[test]
    fn jitter_never_destroys_image(seed: u64, jitter_seed: u64) {
        let v = VariantGenome::base(TemplateGenome::new(seed));
        let mut rng = seeded_rng(jitter_seed);
        let img = v.render_jittered(32, &JitterConfig::default(), &mut rng);
        // Jittered images remain valid, non-constant rasters.
        prop_assert!(img.data().iter().all(|p| (0.0..=1.0).contains(p)));
        let mean = img.mean();
        prop_assert!(img.data().iter().any(|p| (p - mean).abs() > 1e-3));
    }
}
