//! Multi-index hashing: exact radius queries via pigeonhole banding.
//!
//! Split every 64-bit hash into `m = max_radius + 1` disjoint bit bands.
//! If two hashes differ in at most `max_radius` bits, at least one band
//! is **identical** in both (pigeonhole: `max_radius` differing bits
//! cannot touch all `max_radius + 1` bands). A query therefore probes
//! one exact-match table per band, unions the candidates, and verifies
//! true distances — `m` hash-map lookups instead of a linear scan.
//!
//! This is the classic MIH scheme (Norouzi, Punjani & Fleet, CVPR 2012)
//! specialized to single-probe bands; it is the engine the pipeline uses
//! for the paper's `eps = 8` workloads, replacing the authors' GPU
//! pairwise system.

use crate::HammingIndex;
use meme_phash::PHash;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Band {
    shift: u32,
    width: u32,
}

impl Band {
    #[inline]
    fn extract(&self, h: PHash) -> u64 {
        if self.width == 64 {
            h.bits()
        } else {
            (h.bits() >> self.shift) & ((1u64 << self.width) - 1)
        }
    }
}

/// Multi-index hashing engine supporting exact queries up to a fixed
/// maximum radius.
#[derive(Debug, Clone)]
pub struct MihIndex {
    hashes: Vec<PHash>,
    bands: Vec<Band>,
    tables: Vec<HashMap<u64, Vec<usize>>>,
    max_radius: u32,
}

impl MihIndex {
    /// Build an index answering queries with radius `<= max_radius`.
    ///
    /// # Panics
    /// Panics when `max_radius >= 64` (the band count would exceed the
    /// hash width; use brute force for such radii — at that point every
    /// scan is near-total anyway).
    pub fn new(hashes: Vec<PHash>, max_radius: u32) -> Self {
        assert!(
            max_radius < 64,
            "MIH banding needs max_radius < 64; use BruteForceIndex for larger radii"
        );
        let m = max_radius + 1;
        // Distribute 64 bits over m bands: the first (64 % m) bands get
        // the extra bit.
        let base = 64 / m;
        let extra = 64 % m;
        let mut bands = Vec::with_capacity(m as usize);
        let mut shift = 0u32;
        for i in 0..m {
            let width = base + u32::from(i < extra);
            bands.push(Band { shift, width });
            shift += width;
        }
        debug_assert_eq!(shift, 64);

        let mut tables: Vec<HashMap<u64, Vec<usize>>> = vec![HashMap::new(); m as usize];
        for (i, &h) in hashes.iter().enumerate() {
            for (b, band) in bands.iter().enumerate() {
                tables[b].entry(band.extract(h)).or_default().push(i);
            }
        }
        Self {
            hashes,
            bands,
            tables,
            max_radius,
        }
    }

    /// The maximum radius this index can answer exactly.
    pub fn max_radius(&self) -> u32 {
        self.max_radius
    }
}

impl HammingIndex for MihIndex {
    fn len(&self) -> usize {
        self.hashes.len()
    }

    fn hash_at(&self, i: usize) -> PHash {
        self.hashes[i]
    }

    /// # Panics
    /// Panics when `radius > max_radius`; the banding only guarantees
    /// exactness up to the radius the index was built for.
    fn radius_query(&self, query: PHash, radius: u32) -> Vec<usize> {
        assert!(
            radius <= self.max_radius,
            "query radius {radius} exceeds index max_radius {}",
            self.max_radius
        );
        // Gather candidates from each band's exact-match bucket, then
        // verify. Dedup via a sorted candidate list: candidate counts are
        // small (bucket collisions only).
        let mut candidates: Vec<usize> = Vec::new();
        for (b, band) in self.bands.iter().enumerate() {
            if let Some(bucket) = self.tables[b].get(&band.extract(query)) {
                candidates.extend_from_slice(bucket);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|&i| query.distance(self.hashes[i]) <= radius);
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;
    use meme_stats::seeded_rng;
    use rand::RngExt;

    #[test]
    fn empty_index() {
        let idx = MihIndex::new(Vec::new(), 8);
        assert!(idx.is_empty());
        assert!(idx.radius_query(PHash(0), 8).is_empty());
    }

    #[test]
    fn pigeonhole_guarantee_at_max_radius() {
        // Construct hashes at exactly max_radius from the query, with
        // flips adversarially concentrated to try to break banding.
        let q = PHash(0);
        let r = 8u32;
        let mut hashes = Vec::new();
        // All flips in the low bits (first bands).
        hashes.push(PHash(0xFF));
        // All flips in the high bits (last bands).
        hashes.push(PHash(0xFF00_0000_0000_0000));
        // Spread: one flip in each of 8 bands.
        let spread: Vec<u8> = (0..8).map(|i| i * 8).collect();
        hashes.push(q.with_flipped_bits(&spread));
        // Distance 9: must NOT be returned at radius 8.
        hashes.push(PHash(0x1FF));
        let idx = MihIndex::new(hashes, r);
        let got = idx.radius_query(q, r);
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn agrees_with_brute_force_near_threshold() {
        let mut rng = seeded_rng(77);
        let mut hashes = Vec::new();
        let center = PHash(rng.random());
        for d in 0..=12u8 {
            // A few hashes at each exact distance d from the center.
            for _ in 0..5 {
                let mut positions = Vec::new();
                while positions.len() < d as usize {
                    let p = rng.random_range(0..64u8);
                    if !positions.contains(&p) {
                        positions.push(p);
                    }
                }
                hashes.push(center.with_flipped_bits(&positions));
            }
        }
        let brute = BruteForceIndex::new(hashes.clone());
        let mih = MihIndex::new(hashes, 10);
        for r in 0..=10u32 {
            assert_eq!(mih.radius_query(center, r), brute.radius_query(center, r));
        }
    }

    #[test]
    fn radius_zero_band_widths() {
        // max_radius = 0 → a single 64-bit band (exact lookup).
        let h = PHash(0xABCD);
        let idx = MihIndex::new(vec![h, PHash(0xABCE)], 0);
        assert_eq!(idx.radius_query(h, 0), vec![0]);
    }

    #[test]
    #[should_panic(expected = "exceeds index max_radius")]
    fn over_radius_query_panics() {
        let idx = MihIndex::new(vec![PHash(0)], 4);
        let _ = idx.radius_query(PHash(0), 5);
    }

    #[test]
    #[should_panic(expected = "max_radius < 64")]
    fn absurd_radius_panics() {
        let _ = MihIndex::new(Vec::new(), 64);
    }

    #[test]
    fn uneven_band_widths_cover_all_bits() {
        // 64 / 9 bands = widths {8,8,8,8,8,8,8,7,... } — verify queries
        // still work when bands are uneven (max_radius = 8 → 9 bands).
        let q = PHash(u64::MAX);
        let near = q.with_flipped_bits(&[63]); // flip in the last band
        let idx = MihIndex::new(vec![near], 8);
        assert_eq!(idx.radius_query(q, 1), vec![0]);
    }

    #[test]
    fn duplicates_counted_once() {
        let h = PHash(99);
        let idx = MihIndex::new(vec![h, h], 8);
        // Each duplicate index appears once even though it is in every
        // band bucket.
        assert_eq!(idx.radius_query(h, 8), vec![0, 1]);
    }
}
