//! Multi-index hashing: exact radius queries via pigeonhole banding,
//! over flat CSR band tables.
//!
//! Split every 64-bit hash into `m = max_radius + 1` disjoint bit bands.
//! If two hashes differ in at most `max_radius` bits, at least one band
//! is **identical** in both (pigeonhole: `max_radius` differing bits
//! cannot touch all `max_radius + 1` bands). A query therefore probes
//! one exact-match table per band, unions the candidates, and verifies
//! true distances — `m` table lookups instead of a linear scan. This is
//! the classic MIH scheme (Norouzi, Punjani & Fleet, CVPR 2012)
//! specialized to single-probe bands; it is the engine the pipeline uses
//! for the paper's `eps = 8` workloads, replacing the authors' GPU
//! pairwise system.
//!
//! **Layout.** Each band's table is a CSR triple instead of a
//! `HashMap<u64, Vec<usize>>`:
//!
//! * `keys` — the band values that occur, sorted ascending;
//! * `offsets` — `keys.len() + 1` prefix offsets into the slab;
//! * `ids` — one contiguous `u32` slab of item ids, grouped by key,
//!   ascending within each group.
//!
//! A probe is a binary search over `keys` followed by a contiguous slab
//! scan — two cache-predictable arrays instead of a pointer-chasing hash
//! map with one heap `Vec` per bucket. Construction is a counting sort
//! over the band's value domain (falling back to a pair sort for bands
//! wider than [`COUNTING_SORT_MAX_WIDTH`] bits), not
//! `entry().or_default().push()`.
//!
//! **Querying.** [`MihIndex::radius_query_into`] gathers candidates
//! through an epoch-stamped [`QueryScratch`] (no per-query `sort +
//! dedup`), verifies distances with an unrolled SWAR batch kernel, and
//! writes into a caller-owned buffer — steady-state queries allocate
//! nothing.

use crate::scratch::QueryScratch;
use crate::HammingIndex;
use meme_phash::{swar_distance, PHash};

/// Widest band (in bits) built with a dense counting sort; wider bands
/// (only possible at `max_radius <= 3`, where bands have ≥ 16 bits) use
/// a pair sort instead — a 2^width counting array would not fit.
const COUNTING_SORT_MAX_WIDTH: u32 = 16;

#[derive(Debug, Clone, Copy)]
struct Band {
    shift: u32,
    width: u32,
}

impl Band {
    #[inline(always)]
    fn extract(&self, h: PHash) -> u64 {
        if self.width == 64 {
            h.bits()
        } else {
            (h.bits() >> self.shift) & ((1u64 << self.width) - 1)
        }
    }
}

/// One band's exact-match table in CSR form.
#[derive(Debug, Clone, Default)]
struct CsrTable {
    /// Occurring band values, ascending.
    keys: Vec<u64>,
    /// `keys.len() + 1` offsets into `ids`.
    offsets: Vec<u32>,
    /// Item ids grouped by key, ascending within each group.
    ids: Vec<u32>,
}

impl CsrTable {
    /// The ids whose band value equals `key` (empty when absent).
    #[inline]
    fn bucket(&self, key: u64) -> &[u32] {
        match self.keys.binary_search(&key) {
            Ok(pos) => {
                let lo = self.offsets[pos] as usize;
                let hi = self.offsets[pos + 1] as usize;
                &self.ids[lo..hi]
            }
            Err(_) => &[],
        }
    }

    /// Build from per-item band values via counting sort. `vals[i]` is
    /// item `i`'s band value; `counts` is a caller-provided buffer of at
    /// least `2^width` zeroed slots (returned re-zeroed).
    fn counting_sort(vals: &[u64], width: u32, counts: &mut [u32]) -> Self {
        let domain = 1usize << width;
        debug_assert!(counts.len() >= domain);
        debug_assert!(counts.iter().take(domain).all(|&c| c == 0));
        for &v in vals {
            counts[v as usize] += 1;
        }
        // Occurring keys in ascending order + prefix offsets.
        let mut keys = Vec::new();
        let mut offsets = Vec::new();
        let mut cursor = 0u32;
        for (v, &c) in counts.iter().enumerate().take(domain) {
            if c > 0 {
                keys.push(v as u64);
                offsets.push(cursor);
                cursor += c;
            }
        }
        offsets.push(cursor);
        // Second pass places ids; reuse `counts` as per-key cursors
        // (counts[v] becomes the next slab position for value v).
        let mut slot = 0usize;
        for (v, c) in counts.iter_mut().enumerate().take(domain) {
            if *c > 0 {
                *c = offsets[slot];
                slot += 1;
                debug_assert_eq!(keys[slot - 1], v as u64);
            }
        }
        let mut ids = vec![0u32; vals.len()];
        for (i, &v) in vals.iter().enumerate() {
            let pos = &mut counts[v as usize];
            ids[*pos as usize] = i as u32;
            *pos += 1;
        }
        // Re-zero the touched slots for the next band.
        for &k in &keys {
            counts[k as usize] = 0;
        }
        Self { keys, offsets, ids }
    }

    /// Build by sorting `(value, id)` pairs — the wide-band fallback.
    fn pair_sort(vals: &[u64]) -> Self {
        let mut pairs: Vec<(u64, u32)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        pairs.sort_unstable();
        let mut keys = Vec::new();
        let mut offsets = Vec::new();
        let mut ids = Vec::with_capacity(pairs.len());
        for (pos, &(v, i)) in pairs.iter().enumerate() {
            if keys.last() != Some(&v) {
                keys.push(v);
                offsets.push(pos as u32);
            }
            ids.push(i);
        }
        offsets.push(pairs.len() as u32);
        Self { keys, offsets, ids }
    }

    /// Bytes held by this table's arrays.
    fn memory_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<u64>()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.ids.len() * std::mem::size_of::<u32>()
    }
}

/// Multi-index hashing engine supporting exact queries up to a fixed
/// maximum radius, with flat CSR band tables.
#[derive(Debug, Clone)]
pub struct MihIndex {
    hashes: Vec<PHash>,
    bands: Vec<Band>,
    tables: Vec<CsrTable>,
    max_radius: u32,
}

impl MihIndex {
    /// Build an index answering queries with radius `<= max_radius`.
    ///
    /// # Panics
    /// Panics when `max_radius >= 64` (the band count would exceed the
    /// hash width; use brute force for such radii — at that point every
    /// scan is near-total anyway) or when there are more than `u32::MAX`
    /// hashes (the CSR id slabs are 32-bit).
    pub fn new(hashes: Vec<PHash>, max_radius: u32) -> Self {
        assert!(
            max_radius < 64,
            "MIH banding needs max_radius < 64; use BruteForceIndex for larger radii"
        );
        assert!(
            hashes.len() <= u32::MAX as usize,
            "MihIndex supports at most u32::MAX hashes"
        );
        let m = max_radius + 1;
        // Distribute 64 bits over m bands: the first (64 % m) bands get
        // the extra bit.
        let base = 64 / m;
        let extra = 64 % m;
        let mut bands = Vec::with_capacity(m as usize);
        let mut shift = 0u32;
        for i in 0..m {
            let width = base + u32::from(i < extra);
            bands.push(Band { shift, width });
            shift += width;
        }
        debug_assert_eq!(shift, 64);

        // Shared build buffers, reused across bands: the extracted band
        // values and (for narrow bands) the counting-sort domain.
        let max_counting_width = bands
            .iter()
            .map(|b| b.width)
            .filter(|&w| w <= COUNTING_SORT_MAX_WIDTH)
            .max();
        let mut counts = vec![0u32; max_counting_width.map_or(0, |w| 1usize << w)];
        let mut vals = vec![0u64; hashes.len()];
        let tables = bands
            .iter()
            .map(|band| {
                for (v, &h) in vals.iter_mut().zip(&hashes) {
                    *v = band.extract(h);
                }
                if band.width <= COUNTING_SORT_MAX_WIDTH {
                    CsrTable::counting_sort(&vals, band.width, &mut counts)
                } else {
                    CsrTable::pair_sort(&vals)
                }
            })
            .collect();
        Self {
            hashes,
            bands,
            tables,
            max_radius,
        }
    }

    /// The maximum radius this index can answer exactly.
    pub fn max_radius(&self) -> u32 {
        self.max_radius
    }

    /// Shared body of the scratch-based queries: gather candidates with
    /// id `>= start` through the visited stamps, batch-verify, sort.
    fn query_impl(
        &self,
        query: PHash,
        radius: u32,
        start: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<usize>,
    ) {
        assert!(
            radius <= self.max_radius,
            "query radius {radius} exceeds index max_radius {}",
            self.max_radius
        );
        out.clear();
        scratch.begin(self.hashes.len());
        let start = start.min(u32::MAX as usize) as u32;
        let mut gathered = 0u64;
        for (band, table) in self.bands.iter().zip(&self.tables) {
            let bucket = table.bucket(band.extract(query));
            gathered += bucket.len() as u64;
            for &id in bucket {
                // The symmetric driver only wants ids >= start; cheap
                // integer compare ahead of the stamp + verify.
                if id >= start && scratch.mark(id) {
                    scratch.candidates.push(id);
                }
            }
        }
        scratch.stats.probes += self.bands.len() as u64;
        scratch.stats.candidates += gathered;
        scratch.stats.verified += scratch.candidates.len() as u64;
        verify_batch(&self.hashes, query, radius, &scratch.candidates, out);
        // Candidates arrive in probe order; the contract is ascending
        // item order. In-place sort of the (small) verified set — no
        // per-query sort+dedup over the raw candidate union.
        out.sort_unstable();
    }
}

/// Verify candidate distances four at a time with the SWAR popcount
/// kernel — a straight line of ALU ops the compiler can schedule across
/// candidates — pushing survivors in input order.
#[inline]
fn verify_batch(
    hashes: &[PHash],
    query: PHash,
    radius: u32,
    candidates: &[u32],
    out: &mut Vec<usize>,
) {
    let mut chunks = candidates.chunks_exact(4);
    for chunk in &mut chunks {
        if let &[a, b, c, d] = chunk {
            let da = swar_distance(hashes[a as usize], query);
            let db = swar_distance(hashes[b as usize], query);
            let dc = swar_distance(hashes[c as usize], query);
            let dd = swar_distance(hashes[d as usize], query);
            if da <= radius {
                out.push(a as usize);
            }
            if db <= radius {
                out.push(b as usize);
            }
            if dc <= radius {
                out.push(c as usize);
            }
            if dd <= radius {
                out.push(d as usize);
            }
        }
    }
    for &i in chunks.remainder() {
        if swar_distance(hashes[i as usize], query) <= radius {
            out.push(i as usize);
        }
    }
}

impl HammingIndex for MihIndex {
    fn len(&self) -> usize {
        self.hashes.len()
    }

    fn hash_at(&self, i: usize) -> PHash {
        self.hashes[i]
    }

    /// # Panics
    /// Panics when `radius > max_radius`; the banding only guarantees
    /// exactness up to the radius the index was built for.
    fn radius_query(&self, query: PHash, radius: u32) -> Vec<usize> {
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        self.query_impl(query, radius, 0, &mut scratch, &mut out);
        out
    }

    // lint:hotpath(per-query banded candidate scan; the scratch buffers amortize allocation)
    fn radius_query_into(
        &self,
        query: PHash,
        radius: u32,
        scratch: &mut QueryScratch,
        out: &mut Vec<usize>,
    ) {
        self.query_impl(query, radius, 0, scratch, out);
    }

    fn radius_query_from(
        &self,
        query: PHash,
        radius: u32,
        start: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<usize>,
    ) {
        self.query_impl(query, radius, start, scratch, out);
    }

    fn memory_bytes(&self) -> usize {
        self.hashes.len() * std::mem::size_of::<PHash>()
            + self
                .tables
                .iter()
                .map(CsrTable::memory_bytes)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;
    use meme_stats::seeded_rng;
    use rand::RngExt;

    #[test]
    fn empty_index() {
        let idx = MihIndex::new(Vec::new(), 8);
        assert!(idx.is_empty());
        assert!(idx.radius_query(PHash(0), 8).is_empty());
        assert_eq!(idx.memory_bytes(), 9 * 4); // 9 bands × empty-table sentinel offset
    }

    #[test]
    fn pigeonhole_guarantee_at_max_radius() {
        // Construct hashes at exactly max_radius from the query, with
        // flips adversarially concentrated to try to break banding.
        let q = PHash(0);
        let r = 8u32;
        let mut hashes = Vec::new();
        // All flips in the low bits (first bands).
        hashes.push(PHash(0xFF));
        // All flips in the high bits (last bands).
        hashes.push(PHash(0xFF00_0000_0000_0000));
        // Spread: one flip in each of 8 bands.
        let spread: Vec<u8> = (0..8).map(|i| i * 8).collect();
        hashes.push(q.with_flipped_bits(&spread));
        // Distance 9: must NOT be returned at radius 8.
        hashes.push(PHash(0x1FF));
        let idx = MihIndex::new(hashes, r);
        let got = idx.radius_query(q, r);
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn agrees_with_brute_force_near_threshold() {
        let mut rng = seeded_rng(77);
        let mut hashes = Vec::new();
        let center = PHash(rng.random());
        for d in 0..=12u8 {
            // A few hashes at each exact distance d from the center.
            for _ in 0..5 {
                let mut positions = Vec::new();
                while positions.len() < d as usize {
                    let p = rng.random_range(0..64u8);
                    if !positions.contains(&p) {
                        positions.push(p);
                    }
                }
                hashes.push(center.with_flipped_bits(&positions));
            }
        }
        let brute = BruteForceIndex::new(hashes.clone());
        let mih = MihIndex::new(hashes, 10);
        for r in 0..=10u32 {
            assert_eq!(mih.radius_query(center, r), brute.radius_query(center, r));
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_queries() {
        let mut rng = seeded_rng(78);
        let hashes: Vec<PHash> = (0..300)
            .map(|_| PHash(rng.random::<u64>() & 0xFFF))
            .collect();
        let mih = MihIndex::new(hashes.clone(), 8);
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        for &q in hashes.iter().take(60) {
            mih.radius_query_into(q, 8, &mut scratch, &mut out);
            assert_eq!(out, mih.radius_query(q, 8), "scratch reuse diverged");
        }
        let stats = scratch.stats();
        assert_eq!(stats.probes, 60 * 9, "9 bands probed per query");
        assert!(stats.candidates >= stats.verified);
        assert!(stats.verified > 0);
    }

    #[test]
    fn radius_query_from_drops_lower_ids() {
        let h = PHash(42);
        let hashes = vec![
            h,
            h.with_flipped_bits(&[0]),
            h,
            h.with_flipped_bits(&[1, 2]),
        ];
        let mih = MihIndex::new(hashes, 8);
        let mut scratch = QueryScratch::new();
        let mut out = Vec::new();
        mih.radius_query_from(h, 8, 0, &mut scratch, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
        mih.radius_query_from(h, 8, 2, &mut scratch, &mut out);
        assert_eq!(out, vec![2, 3]);
        mih.radius_query_from(h, 8, 4, &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn radius_zero_band_widths() {
        // max_radius = 0 → a single 64-bit band (exact lookup), built by
        // the wide-band pair sort.
        let h = PHash(0xABCD);
        let idx = MihIndex::new(vec![h, PHash(0xABCE)], 0);
        assert_eq!(idx.radius_query(h, 0), vec![0]);
    }

    #[test]
    fn wide_and_narrow_band_builders_agree() {
        // max_radius = 3 → 4 bands of 16 bits: exactly the counting-sort
        // boundary. Build the same corpus through both table builders by
        // comparing against brute force at radius 3.
        let mut rng = seeded_rng(79);
        let center = PHash(rng.random());
        let mut hashes = vec![center];
        for k in 1..=3u8 {
            for _ in 0..10 {
                let flips: Vec<u8> = (0..k).map(|_| rng.random_range(0..64u8)).collect();
                hashes.push(center.with_flipped_bits(&flips));
            }
        }
        let brute = BruteForceIndex::new(hashes.clone());
        let mih = MihIndex::new(hashes, 3);
        for r in 0..=3 {
            assert_eq!(mih.radius_query(center, r), brute.radius_query(center, r));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds index max_radius")]
    fn over_radius_query_panics() {
        let idx = MihIndex::new(vec![PHash(0)], 4);
        let _ = idx.radius_query(PHash(0), 5);
    }

    #[test]
    #[should_panic(expected = "max_radius < 64")]
    fn absurd_radius_panics() {
        let _ = MihIndex::new(Vec::new(), 64);
    }

    #[test]
    fn uneven_band_widths_cover_all_bits() {
        // 64 bits / 9 bands — verify queries still work when bands are
        // uneven (max_radius = 8 → 9 bands).
        let q = PHash(u64::MAX);
        let near = q.with_flipped_bits(&[63]); // flip in the last band
        let idx = MihIndex::new(vec![near], 8);
        assert_eq!(idx.radius_query(q, 1), vec![0]);
    }

    #[test]
    fn duplicates_counted_once() {
        let h = PHash(99);
        let idx = MihIndex::new(vec![h, h], 8);
        // Each duplicate index appears once even though it is in every
        // band bucket.
        assert_eq!(idx.radius_query(h, 8), vec![0, 1]);
    }

    #[test]
    fn csr_tables_are_flat_and_grouped() {
        let hashes: Vec<PHash> = (0..64u64).map(|i| PHash(i % 8)).collect();
        let idx = MihIndex::new(hashes.clone(), 8);
        for table in &idx.tables {
            // Keys sorted strictly ascending, offsets monotone, slab
            // covers every item exactly once.
            assert!(table.keys.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(table.offsets.len(), table.keys.len() + 1);
            assert!(table.offsets.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(table.ids.len(), hashes.len());
            let mut seen = vec![false; hashes.len()];
            for &id in &table.ids {
                assert!(!seen[id as usize]);
                seen[id as usize] = true;
            }
        }
        assert!(idx.memory_bytes() > hashes.len() * 8);
    }
}
