//! BK-tree over the Hamming metric.
//!
//! A Burkhard–Keller tree exploits the triangle inequality: when the
//! query is at distance `d` from a node, only children whose edge
//! distance lies in `[d - r, d + r]` can contain results. Hamming
//! distance over 64-bit hashes takes integer values `0..=64`, so each
//! node keeps a sparse 65-slot child table.

use crate::{HammingIndex, QueryScratch};
use meme_phash::PHash;

#[derive(Debug, Clone)]
struct Node {
    hash: PHash,
    /// Original index of this hash (first occurrence).
    item: usize,
    /// Duplicate items with the identical hash.
    duplicates: Vec<usize>,
    /// Children keyed by edge distance 1..=64 (distance 0 is a duplicate).
    children: Vec<Option<Box<Node>>>,
}

impl Node {
    fn new(hash: PHash, item: usize) -> Self {
        Self {
            hash,
            item,
            duplicates: Vec::new(),
            children: vec![None; 65],
        }
    }
}

/// An exact Hamming-metric BK-tree.
#[derive(Debug, Clone)]
pub struct BkTreeIndex {
    root: Option<Box<Node>>,
    hashes: Vec<PHash>,
    /// Tree nodes allocated so far (≤ `hashes.len()`; duplicates share).
    nodes: usize,
}

impl BkTreeIndex {
    /// Build from a hash list.
    pub fn new(hashes: Vec<PHash>) -> Self {
        let mut tree = Self {
            root: None,
            hashes: Vec::new(),
            nodes: 0,
        };
        for h in hashes {
            tree.insert(h);
        }
        tree
    }

    /// Insert one hash (items are numbered in insertion order).
    pub fn insert(&mut self, hash: PHash) {
        let item = self.hashes.len();
        self.hashes.push(hash);
        match &mut self.root {
            None => {
                self.root = Some(Box::new(Node::new(hash, item)));
                self.nodes += 1;
            }
            Some(root) => {
                let mut node = root;
                loop {
                    let d = node.hash.distance(hash) as usize;
                    if d == 0 {
                        node.duplicates.push(item);
                        return;
                    }
                    node = match &mut node.children[d] {
                        Some(child) => child,
                        slot => {
                            *slot = Some(Box::new(Node::new(hash, item)));
                            self.nodes += 1;
                            return;
                        }
                    };
                }
            }
        }
    }

    fn collect(node: &Node, query: PHash, radius: u32, out: &mut Vec<usize>) {
        let d = node.hash.distance(query);
        if d <= radius {
            out.push(node.item);
            out.extend_from_slice(&node.duplicates);
        }
        let lo = d.saturating_sub(radius) as usize;
        let hi = (d + radius).min(64) as usize;
        for child in node.children[lo..=hi].iter().flatten() {
            Self::collect(child, query, radius, out);
        }
    }

    /// Like [`BkTreeIndex::collect`] but drops item ids below `start`
    /// at the push site and counts distance computations.
    fn collect_from(
        node: &Node,
        query: PHash,
        radius: u32,
        start: usize,
        out: &mut Vec<usize>,
        verified: &mut u64,
    ) {
        *verified += 1;
        let d = node.hash.distance(query);
        if d <= radius {
            if node.item >= start {
                out.push(node.item);
            }
            out.extend(node.duplicates.iter().filter(|&&i| i >= start));
        }
        let lo = d.saturating_sub(radius) as usize;
        let hi = (d + radius).min(64) as usize;
        for child in node.children[lo..=hi].iter().flatten() {
            Self::collect_from(child, query, radius, start, out, verified);
        }
    }
}

impl HammingIndex for BkTreeIndex {
    fn len(&self) -> usize {
        self.hashes.len()
    }

    fn hash_at(&self, i: usize) -> PHash {
        self.hashes[i]
    }

    fn radius_query(&self, query: PHash, radius: u32) -> Vec<usize> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            Self::collect(root, query, radius, &mut out);
        }
        out.sort_unstable();
        out
    }

    // lint:hotpath(per-query BK-tree walk; reuses the caller's scratch stack)
    fn radius_query_into(
        &self,
        query: PHash,
        radius: u32,
        scratch: &mut QueryScratch,
        out: &mut Vec<usize>,
    ) {
        self.radius_query_from(query, radius, 0, scratch, out);
    }

    fn radius_query_from(
        &self,
        query: PHash,
        radius: u32,
        start: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<usize>,
    ) {
        // The triangle-inequality walk visits each node at most once, so
        // no visited stamps are needed — only the reusable output buffer
        // and the work counters.
        out.clear();
        let mut verified = 0;
        if let Some(root) = &self.root {
            Self::collect_from(root, query, radius, start, out, &mut verified);
        }
        scratch.stats.candidates += verified;
        scratch.stats.verified += verified;
        out.sort_unstable();
    }

    fn memory_bytes(&self) -> usize {
        // Per node: the struct itself plus its 65-slot child table; the
        // duplicate lists and the flat hash copy are counted separately.
        self.nodes * (std::mem::size_of::<Node>() + 65 * std::mem::size_of::<Option<Box<Node>>>())
            + (self.hashes.len() - self.nodes) * std::mem::size_of::<usize>()
            + self.hashes.len() * std::mem::size_of::<PHash>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = BkTreeIndex::new(Vec::new());
        assert!(t.is_empty());
        assert!(t.radius_query(PHash(7), 64).is_empty());
    }

    #[test]
    fn single_element() {
        let t = BkTreeIndex::new(vec![PHash(5)]);
        assert_eq!(t.radius_query(PHash(5), 0), vec![0]);
        assert_eq!(t.radius_query(PHash(4), 0), Vec::<usize>::new());
        assert_eq!(t.radius_query(PHash(4), 1), vec![0]);
    }

    #[test]
    fn duplicates_returned_together() {
        let h = PHash(0xFF);
        let t = BkTreeIndex::new(vec![h, PHash(0), h, h]);
        let mut r = t.radius_query(h, 0);
        r.sort_unstable();
        assert_eq!(r, vec![0, 2, 3]);
    }

    #[test]
    fn radius_zero_exact_match_only() {
        let hashes: Vec<PHash> = (0..64).map(|i| PHash(1u64 << i)).collect();
        let t = BkTreeIndex::new(hashes);
        assert_eq!(t.radius_query(PHash(1), 0), vec![0]);
        // Every single-bit hash is at distance 2 from every other.
        assert_eq!(t.radius_query(PHash(1), 2).len(), 64);
    }

    #[test]
    fn max_radius_returns_everything() {
        let hashes = vec![PHash(0), PHash(u64::MAX), PHash(0xF0F0)];
        let t = BkTreeIndex::new(hashes);
        assert_eq!(t.radius_query(PHash(123), 64).len(), 3);
    }
}
