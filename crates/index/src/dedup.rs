//! Exact-duplicate hash collapsing.
//!
//! Meme corpora are dominated by exact re-posts: the same image (hence
//! the same 64-bit pHash) appears tens or hundreds of times. Querying an
//! index once per *item* repeats identical work once per copy, and
//! indexing every copy bloats each band bucket by the multiplicity.
//! [`HashGroups`] collapses an item list to its **unique hashes** plus a
//! CSR owner table, so callers can
//!
//! 1. build the index over `unique()` only (smaller tables, no
//!    duplicate-degenerate buckets),
//! 2. query once per unique hash, and
//! 3. expand unique-level answers back to item ids via `owners()`.
//!
//! Invariants (relied on by [`crate::symmetric_neighbors`]):
//!
//! * `unique()` is strictly ascending by hash value (deterministic,
//!   input-order independent);
//! * `owners(u)` is ascending by item id, and the owner lists partition
//!   `0..len_items()`;
//! * `owner_of(i)` is the unique slot whose hash equals the item's hash.

use meme_phash::PHash;

/// An item list collapsed to unique hash values with owner lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashGroups {
    /// Unique hash values, strictly ascending.
    unique: Vec<PHash>,
    /// Item id → unique slot.
    owner_of: Vec<u32>,
    /// CSR offsets into `items`, one slot per unique hash (+1 sentinel).
    offsets: Vec<u32>,
    /// Item ids grouped by unique slot, ascending within each group.
    items: Vec<u32>,
}

impl HashGroups {
    /// Collapse `hashes` (item order preserved in the owner tables).
    pub fn new(hashes: &[PHash]) -> Self {
        assert!(
            hashes.len() <= u32::MAX as usize,
            "HashGroups supports at most u32::MAX items"
        );
        let n = hashes.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        // Sort by (hash, id): groups become contiguous runs, ascending
        // by hash value, with ids ascending inside each run — `order`
        // itself is then the grouped item slab.
        order.sort_unstable_by_key(|&i| (hashes[i as usize], i));

        let mut unique = Vec::new();
        let mut owner_of = vec![0u32; n];
        let mut offsets = Vec::new();
        for (pos, &i) in order.iter().enumerate() {
            let h = hashes[i as usize];
            if unique.last() != Some(&h) {
                offsets.push(pos as u32);
                unique.push(h);
            }
            owner_of[i as usize] = (unique.len() - 1) as u32;
        }
        offsets.push(n as u32);
        debug_assert_eq!(offsets.len(), unique.len() + 1);
        Self {
            unique,
            owner_of,
            offsets,
            items: order,
        }
    }

    /// Number of items that were collapsed.
    pub fn len_items(&self) -> usize {
        self.owner_of.len()
    }

    /// Number of distinct hash values.
    pub fn len_unique(&self) -> usize {
        self.unique.len()
    }

    /// The distinct hash values, strictly ascending — build the Hamming
    /// index over this slice.
    pub fn unique(&self) -> &[PHash] {
        &self.unique
    }

    /// The unique slot owning item `i`.
    #[inline]
    pub fn owner_of(&self, i: usize) -> usize {
        self.owner_of[i] as usize
    }

    /// Item ids whose hash is `unique()[u]`, ascending.
    #[inline]
    pub fn owners(&self, u: usize) -> &[u32] {
        let lo = self.offsets[u] as usize;
        let hi = self.offsets[u + 1] as usize;
        &self.items[lo..hi]
    }

    /// `len_unique / len_items` — 1.0 means no duplicates, small values
    /// mean heavy collapsing (the `index.dedup_collapse_ratio` gauge).
    pub fn collapse_ratio(&self) -> f64 {
        if self.owner_of.is_empty() {
            return 1.0;
        }
        self.unique.len() as f64 / self.owner_of.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input() {
        let g = HashGroups::new(&[]);
        assert_eq!(g.len_items(), 0);
        assert_eq!(g.len_unique(), 0);
        assert_eq!(g.collapse_ratio(), 1.0);
        assert!(g.unique().is_empty());
    }

    #[test]
    fn all_distinct() {
        let hashes = vec![PHash(30), PHash(10), PHash(20)];
        let g = HashGroups::new(&hashes);
        assert_eq!(g.len_unique(), 3);
        assert_eq!(g.unique(), &[PHash(10), PHash(20), PHash(30)]);
        assert_eq!(g.owner_of(0), 2); // PHash(30) is the largest
        assert_eq!(g.owners(0), &[1]); // PHash(10) owned by item 1
        assert_eq!(g.collapse_ratio(), 1.0);
    }

    #[test]
    fn duplicates_group_with_ascending_owners() {
        let hashes = vec![PHash(5), PHash(9), PHash(5), PHash(9), PHash(5)];
        let g = HashGroups::new(&hashes);
        assert_eq!(g.len_unique(), 2);
        assert_eq!(g.unique(), &[PHash(5), PHash(9)]);
        assert_eq!(g.owners(0), &[0, 2, 4]);
        assert_eq!(g.owners(1), &[1, 3]);
        for (i, &h) in hashes.iter().enumerate() {
            assert_eq!(g.unique()[g.owner_of(i)], h);
        }
        assert_eq!(g.collapse_ratio(), 2.0 / 5.0);
    }

    #[test]
    fn owner_lists_partition_items() {
        let hashes: Vec<PHash> = (0..40u64).map(|i| PHash(i % 7)).collect();
        let g = HashGroups::new(&hashes);
        let mut seen = vec![false; hashes.len()];
        for u in 0..g.len_unique() {
            for &i in g.owners(u) {
                assert!(!seen[i as usize], "item {i} in two groups");
                seen[i as usize] = true;
                assert_eq!(g.owner_of(i as usize), u);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn input_order_does_not_change_unique_order() {
        let a = HashGroups::new(&[PHash(3), PHash(1), PHash(2)]);
        let b = HashGroups::new(&[PHash(2), PHash(3), PHash(1)]);
        assert_eq!(a.unique(), b.unique());
    }
}
