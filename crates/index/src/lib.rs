//! Hamming radius-query engines — Step 2 of the paper's pipeline.
//!
//! "We perform a pairwise comparison of all the pHashes using Hamming
//! distance. To support large numbers of images, we implement a highly
//! parallelizable system on top of TensorFlow, which uses multiple GPUs"
//! (§2.2). GPUs are not available here, so this crate substitutes
//! *algorithmic* speedups with the same contract — return **all** items
//! within a Hamming radius of a query, exactly:
//!
//! * [`BruteForceIndex`] — linear scan; simple, the correctness oracle,
//!   and parallelized across queries with crossbeam scoped threads;
//! * [`BkTreeIndex`] — a BK-tree over the Hamming metric;
//! * [`MihIndex`] — multi-index hashing: split each 64-bit hash into
//!   `r + 1` bands; by pigeonhole, any hash within distance `r` matches
//!   at least one band exactly, so candidates come from `r + 1` exact
//!   table lookups.
//!
//! All engines implement [`HammingIndex`]; the DBSCAN stage and the
//! association stage (Step 6) are generic over it. [`all_neighbors`]
//! computes every item's radius neighbourhood in parallel — the
//! "pairwise comparison" driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bktree;
pub mod brute;
pub mod fallback;
pub mod mih;

pub use bktree::BkTreeIndex;
pub use brute::BruteForceIndex;
pub use fallback::{FallbackIndex, IndexEngine, IndexError};
pub use mih::MihIndex;

use meme_phash::PHash;

/// An exact radius-query index over a fixed set of 64-bit hashes.
///
/// Indices returned by queries refer to the order of the hash slice the
/// engine was built from. A query hash that is itself in the index *is*
/// returned (distance 0 ≤ r); callers that need open neighbourhoods
/// filter the self-index out.
pub trait HammingIndex {
    /// Number of indexed hashes.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The hash stored at position `i`.
    fn hash_at(&self, i: usize) -> PHash;

    /// All indices `i` with `distance(query, hash_at(i)) <= radius`,
    /// in ascending index order.
    fn radius_query(&self, query: PHash, radius: u32) -> Vec<usize>;
}

/// Compute the radius neighbourhood of every indexed item, in parallel
/// across `threads` worker threads (pass 0 to use available parallelism).
///
/// `result[i]` contains all `j != i` within `radius` of item `i`, the
/// adjacency DBSCAN consumes. Deterministic regardless of thread count.
pub fn all_neighbors<I: HammingIndex + Sync>(
    index: &I,
    radius: u32,
    threads: usize,
) -> Vec<Vec<usize>> {
    let n = index.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = effective_threads(threads, n);
    let mut result: Vec<Vec<usize>> = vec![Vec::new(); n];
    {
        let chunks: Vec<(usize, &mut [Vec<usize>])> = {
            // Split the output into per-thread chunks carrying their
            // starting offset.
            let chunk_len = n.div_ceil(threads);
            let mut rest: &mut [Vec<usize>] = &mut result;
            let mut out = Vec::new();
            let mut offset = 0;
            while !rest.is_empty() {
                let take = chunk_len.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                out.push((offset, head));
                offset += take;
                rest = tail;
            }
            out
        };
        crossbeam::thread::scope(|s| {
            for (offset, chunk) in chunks {
                s.spawn(move |_| {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        let i = offset + k;
                        let mut neigh = index.radius_query(index.hash_at(i), radius);
                        neigh.retain(|&j| j != i);
                        *slot = neigh;
                    }
                });
            }
        })
        // lint:allow(panic-in-pipeline): crossbeam scope re-raises a worker panic; nothing to recover
        .expect("worker thread panicked");
    }
    result
}

/// Number of worker threads to actually spawn for `work_items` units of
/// work: `requested` (0 = available parallelism), never more than the
/// work items, never less than one.
///
/// Shared by every parallel stage in the workspace so the zero-work
/// edge case is handled in exactly one place: `usize::clamp` panics
/// when `min > max`, so a bare `requested.clamp(1, work_items)` blows
/// up on empty input — the upper bound is floored at 1 instead.
pub fn effective_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, work_items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_stats::seeded_rng;
    use rand::RngExt;

    fn random_hashes(n: usize, seed: u64) -> Vec<PHash> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| PHash(rng.random())).collect()
    }

    #[test]
    fn all_neighbors_excludes_self_and_matches_brute() {
        let hashes = random_hashes(200, 1);
        let idx = BruteForceIndex::new(hashes.clone());
        let nbrs = all_neighbors(&idx, 30, 3);
        assert_eq!(nbrs.len(), 200);
        for (i, list) in nbrs.iter().enumerate() {
            assert!(!list.contains(&i));
            for &j in list {
                assert!(hashes[i].distance(hashes[j]) <= 30);
            }
        }
    }

    #[test]
    fn all_neighbors_deterministic_across_thread_counts() {
        let hashes = random_hashes(150, 2);
        let idx = BruteForceIndex::new(hashes);
        let a = all_neighbors(&idx, 28, 1);
        let b = all_neighbors(&idx, 28, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn all_neighbors_empty_index() {
        let idx = BruteForceIndex::new(Vec::new());
        // Regression: must not panic for any thread request, including
        // explicit counts larger than the (zero) work items.
        for threads in [0, 1, 7] {
            assert!(all_neighbors(&idx, 8, threads).is_empty());
        }
    }

    #[test]
    fn effective_threads_never_panics_or_overshoots() {
        assert_eq!(effective_threads(5, 0), 1); // the min>max regression
        assert_eq!(effective_threads(0, 0), 1);
        assert_eq!(effective_threads(5, 3), 3);
        assert_eq!(effective_threads(2, 10), 2);
        assert!(effective_threads(0, 10) >= 1);
    }

    #[test]
    fn engines_agree_on_random_workload() {
        let hashes = random_hashes(300, 3);
        let brute = BruteForceIndex::new(hashes.clone());
        let bk = BkTreeIndex::new(hashes.clone());
        let mih = MihIndex::new(hashes.clone(), 8);
        let mut rng = seeded_rng(4);
        for _ in 0..50 {
            // Mix indexed and random queries.
            let q = if rng.random_bool(0.5) {
                hashes[rng.random_range(0..hashes.len())]
            } else {
                PHash(rng.random())
            };
            for r in [0u32, 2, 5, 8] {
                let expected = brute.radius_query(q, r);
                assert_eq!(bk.radius_query(q, r), expected, "bk radius {r}");
                assert_eq!(mih.radius_query(q, r), expected, "mih radius {r}");
            }
        }
    }

    #[test]
    fn engines_agree_with_clustered_hashes() {
        // Clustered workload: groups of hashes within small distance.
        let mut rng = seeded_rng(5);
        let mut hashes = Vec::new();
        for _ in 0..20 {
            let center = PHash(rng.random());
            for _ in 0..10 {
                let flips: Vec<u8> = (0..rng.random_range(0..5u8))
                    .map(|_| rng.random_range(0..64u8))
                    .collect();
                hashes.push(center.with_flipped_bits(&flips));
            }
        }
        let brute = BruteForceIndex::new(hashes.clone());
        let bk = BkTreeIndex::new(hashes.clone());
        let mih = MihIndex::new(hashes.clone(), 8);
        for &q in &hashes {
            let expected = brute.radius_query(q, 8);
            assert_eq!(bk.radius_query(q, 8), expected);
            assert_eq!(mih.radius_query(q, 8), expected);
        }
    }
}
