//! Hamming radius-query engines — Step 2 of the paper's pipeline.
//!
//! "We perform a pairwise comparison of all the pHashes using Hamming
//! distance. To support large numbers of images, we implement a highly
//! parallelizable system on top of TensorFlow, which uses multiple GPUs"
//! (§2.2). GPUs are not available here, so this crate substitutes
//! *algorithmic* speedups with the same contract — return **all** items
//! within a Hamming radius of a query, exactly:
//!
//! * [`BruteForceIndex`] — linear scan; simple, the correctness oracle,
//!   and parallelized across queries with crossbeam scoped threads;
//! * [`BkTreeIndex`] — a BK-tree over the Hamming metric;
//! * [`MihIndex`] — multi-index hashing: split each 64-bit hash into
//!   `r + 1` bands; by pigeonhole, any hash within distance `r` matches
//!   at least one band exactly, so candidates come from `r + 1` exact
//!   table lookups.
//!
//! All engines implement [`HammingIndex`]; the DBSCAN stage and the
//! association stage (Step 6) are generic over it. [`all_neighbors`]
//! computes every item's radius neighbourhood in parallel — the
//! "pairwise comparison" driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bktree;
pub mod brute;
pub mod dedup;
pub mod fallback;
pub mod mih;
pub mod scratch;

pub use bktree::BkTreeIndex;
pub use brute::BruteForceIndex;
pub use dedup::HashGroups;
pub use fallback::{FallbackIndex, IndexEngine, IndexError};
pub use mih::MihIndex;
pub use scratch::{QueryScratch, QueryStats};

use meme_phash::PHash;

/// An exact radius-query index over a fixed set of 64-bit hashes.
///
/// Indices returned by queries refer to the order of the hash slice the
/// engine was built from. A query hash that is itself in the index *is*
/// returned (distance 0 ≤ r); callers that need open neighbourhoods
/// filter the self-index out.
pub trait HammingIndex {
    /// Number of indexed hashes.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The hash stored at position `i`.
    fn hash_at(&self, i: usize) -> PHash;

    /// All indices `i` with `distance(query, hash_at(i)) <= radius`,
    /// in ascending index order.
    fn radius_query(&self, query: PHash, radius: u32) -> Vec<usize>;

    /// [`HammingIndex::radius_query`] through reusable working memory:
    /// results land in `out` (cleared first), intermediate state lives
    /// in `scratch`. Engines override this so steady-state queries
    /// allocate nothing; the default delegates to `radius_query`.
    fn radius_query_into(
        &self,
        query: PHash,
        radius: u32,
        scratch: &mut QueryScratch,
        out: &mut Vec<usize>,
    ) {
        let _ = scratch;
        out.clear();
        out.extend(self.radius_query(query, radius));
    }

    /// Like [`HammingIndex::radius_query_into`], restricted to indices
    /// `i >= start` — the half-open tail of the index. The symmetric
    /// pairwise driver uses this so each unordered pair is verified
    /// exactly once and mirrored, instead of twice. Engines override it
    /// to skip the excluded prefix *before* distance verification (the
    /// brute engine does not even scan it).
    fn radius_query_from(
        &self,
        query: PHash,
        radius: u32,
        start: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<usize>,
    ) {
        self.radius_query_into(query, radius, scratch, out);
        out.retain(|&i| i >= start);
    }

    /// Approximate bytes held by the engine's data structures (hash
    /// storage plus per-engine tables) — the `index.memory_bytes`
    /// gauge. The default accounts for the hash slice only.
    fn memory_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<PHash>()
    }
}

/// Compute the radius neighbourhood of every indexed item, in parallel
/// across `threads` worker threads (pass 0 to use available parallelism).
///
/// `result[i]` contains all `j != i` within `radius` of item `i`, the
/// adjacency DBSCAN consumes. Deterministic regardless of thread count.
pub fn all_neighbors<I: HammingIndex + Sync>(
    index: &I,
    radius: u32,
    threads: usize,
) -> Vec<Vec<usize>> {
    let n = index.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = effective_threads(threads, n);
    let mut result: Vec<Vec<usize>> = vec![Vec::new(); n];
    {
        let chunks: Vec<(usize, &mut [Vec<usize>])> = {
            // Split the output into per-thread chunks carrying their
            // starting offset.
            let chunk_len = n.div_ceil(threads);
            let mut rest: &mut [Vec<usize>] = &mut result;
            let mut out = Vec::new();
            let mut offset = 0;
            while !rest.is_empty() {
                let take = chunk_len.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                out.push((offset, head));
                offset += take;
                rest = tail;
            }
            out
        };
        crossbeam::thread::scope(|s| {
            for (offset, chunk) in chunks {
                s.spawn(move |_| {
                    // One scratch per worker: the visited stamps and
                    // candidate buffer are reused across the whole
                    // chunk, so only the per-item output lists allocate.
                    let mut scratch = QueryScratch::new();
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        let i = offset + k;
                        index.radius_query_into(index.hash_at(i), radius, &mut scratch, slot);
                        slot.retain(|&j| j != i);
                    }
                });
            }
        })
        // lint:allow(panic-in-pipeline): crossbeam scope re-raises a worker panic; nothing to recover
        .expect("worker thread panicked");
    }
    result
}

/// Work counters of one [`symmetric_neighbors`] run — the source of the
/// `index.*` metrics family. All fields are sums over per-worker
/// [`QueryStats`], so they are identical for every thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NeighborStats {
    /// Items in the corpus (before duplicate collapsing).
    pub items: usize,
    /// Unique hashes actually queried.
    pub unique: usize,
    /// Band-bucket probes issued.
    pub probes: u64,
    /// Candidate ids gathered (before dedup).
    pub candidates: u64,
    /// Exact distances verified.
    pub verified: u64,
    /// Unordered unique-hash pairs within the radius (each verified
    /// once and mirrored).
    pub unique_pairs: u64,
}

/// Compute the radius neighbourhood of every *item* from an index built
/// over the corpus's **unique** hashes ([`HashGroups::unique`]),
/// querying once per unique hash and verifying each unordered pair once.
///
/// Byte-identical to [`all_neighbors`] over an index of the full item
/// list, but:
///
/// * exact duplicates collapse — `groups.len_unique()` queries instead
///   of `groups.len_items()`;
/// * symmetry is exploited — unique hash `u` only verifies candidates
///   `v > u` ([`HammingIndex::radius_query_from`]); the `v → u` edge is
///   mirrored from the pair list;
/// * workers reuse [`QueryScratch`] buffers, so the pair sweep performs
///   no steady-state allocations beyond the pair lists themselves.
///
/// `index` **must** be built over exactly `groups.unique()`; the item
/// adjacency is expanded through the groups' owner lists. Deterministic
/// for every `threads` value (pass 0 for available parallelism).
pub fn symmetric_neighbors<I: HammingIndex + Sync>(
    index: &I,
    groups: &HashGroups,
    radius: u32,
    threads: usize,
) -> (Vec<Vec<usize>>, NeighborStats) {
    let n_items = groups.len_items();
    let n_unique = groups.len_unique();
    debug_assert_eq!(
        index.len(),
        n_unique,
        "index not built over groups.unique()"
    );
    let mut stats = NeighborStats {
        items: n_items,
        unique: n_unique,
        ..NeighborStats::default()
    };
    if n_items == 0 {
        return (Vec::new(), stats);
    }

    // ---- Pass 1: unique-level half-pairs (u, v), u < v, d(u, v) <= r.
    // Workers own disjoint u-ranges; concatenating their pair lists in
    // range order yields a list sorted by (u, v) for any thread count.
    let threads = effective_threads(threads, n_unique);
    let chunk_len = n_unique.div_ceil(threads);
    let mut worker_out: Vec<(Vec<(u32, u32)>, QueryStats)> = Vec::new();
    worker_out.resize_with(threads, Default::default);
    crossbeam::thread::scope(|s| {
        for (chunk_id, slot) in worker_out.iter_mut().enumerate() {
            let unique = groups.unique();
            s.spawn(move |_| {
                let lo = chunk_id * chunk_len;
                let hi = (lo + chunk_len).min(n_unique);
                let mut scratch = QueryScratch::new();
                let mut hits = Vec::new();
                let mut pairs = Vec::new();
                for (u, &uh) in unique.iter().enumerate().take(hi).skip(lo) {
                    index.radius_query_from(uh, radius, u + 1, &mut scratch, &mut hits);
                    pairs.extend(hits.iter().map(|&v| (u as u32, v as u32)));
                }
                *slot = (pairs, scratch.take_stats());
            });
        }
    })
    // lint:allow(panic-in-pipeline): crossbeam scope re-raises a worker panic; nothing to recover
    .expect("pair sweep worker panicked");

    // ---- Pass 2: mirror the half-pairs into unique-level adjacency.
    // Scanning pairs in (u, v) order appends to every list in ascending
    // order: w's mirrored entries (u' < w) all precede its forward
    // entries (v > w), and both runs arrive sorted.
    let mut uadj: Vec<Vec<u32>> = vec![Vec::new(); n_unique];
    for (pairs, worker_stats) in &worker_out {
        let mut merged = QueryStats::default();
        merged.merge(*worker_stats);
        stats.probes += merged.probes;
        stats.candidates += merged.candidates;
        stats.verified += merged.verified;
        stats.unique_pairs += pairs.len() as u64;
        for &(u, v) in pairs {
            uadj[u as usize].push(v);
            uadj[v as usize].push(u);
        }
    }

    // ---- Pass 3: expand to item-level adjacency through owner lists.
    // Item i with unique slot u neighbours every co-owner of u (distance
    // 0) and every owner of each v adjacent to u. Per-item work is
    // independent, so the same chunked-split parallel pattern applies.
    let mut result: Vec<Vec<usize>> = vec![Vec::new(); n_items];
    {
        let threads = effective_threads(threads, n_items);
        let chunk_len = n_items.div_ceil(threads);
        let uadj = &uadj;
        crossbeam::thread::scope(|s| {
            for (chunk_id, chunk) in result.chunks_mut(chunk_len).enumerate() {
                s.spawn(move |_| {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        let i = (chunk_id * chunk_len + k) as u32;
                        let u = groups.owner_of(i as usize);
                        let co_owners = groups.owners(u);
                        let total = co_owners.len() - 1
                            + uadj[u]
                                .iter()
                                .map(|&v| groups.owners(v as usize).len())
                                .sum::<usize>();
                        slot.reserve_exact(total);
                        slot.extend(co_owners.iter().filter(|&&j| j != i).map(|&j| j as usize));
                        for &v in &uadj[u] {
                            slot.extend(groups.owners(v as usize).iter().map(|&j| j as usize));
                        }
                        // Sorted runs from different unique groups
                        // interleave arbitrarily; one in-place sort
                        // restores the ascending-id contract.
                        slot.sort_unstable();
                    }
                });
            }
        })
        // lint:allow(panic-in-pipeline): crossbeam scope re-raises a worker panic; nothing to recover
        .expect("expansion worker panicked");
    }
    (result, stats)
}

/// Number of worker threads to actually spawn for `work_items` units of
/// work: `requested` (0 = available parallelism), never more than the
/// work items, never less than one.
///
/// Shared by every parallel stage in the workspace so the zero-work
/// edge case is handled in exactly one place: `usize::clamp` panics
/// when `min > max`, so a bare `requested.clamp(1, work_items)` blows
/// up on empty input — the upper bound is floored at 1 instead.
pub fn effective_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, work_items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use meme_stats::seeded_rng;
    use rand::RngExt;

    fn random_hashes(n: usize, seed: u64) -> Vec<PHash> {
        let mut rng = seeded_rng(seed);
        (0..n).map(|_| PHash(rng.random())).collect()
    }

    #[test]
    fn all_neighbors_excludes_self_and_matches_brute() {
        let hashes = random_hashes(200, 1);
        let idx = BruteForceIndex::new(hashes.clone());
        let nbrs = all_neighbors(&idx, 30, 3);
        assert_eq!(nbrs.len(), 200);
        for (i, list) in nbrs.iter().enumerate() {
            assert!(!list.contains(&i));
            for &j in list {
                assert!(hashes[i].distance(hashes[j]) <= 30);
            }
        }
    }

    #[test]
    fn all_neighbors_deterministic_across_thread_counts() {
        let hashes = random_hashes(150, 2);
        let idx = BruteForceIndex::new(hashes);
        let a = all_neighbors(&idx, 28, 1);
        let b = all_neighbors(&idx, 28, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn all_neighbors_empty_index() {
        let idx = BruteForceIndex::new(Vec::new());
        // Regression: must not panic for any thread request, including
        // explicit counts larger than the (zero) work items.
        for threads in [0, 1, 7] {
            assert!(all_neighbors(&idx, 8, threads).is_empty());
        }
    }

    #[test]
    fn effective_threads_never_panics_or_overshoots() {
        assert_eq!(effective_threads(5, 0), 1); // the min>max regression
        assert_eq!(effective_threads(0, 0), 1);
        assert_eq!(effective_threads(5, 3), 3);
        assert_eq!(effective_threads(2, 10), 2);
        assert!(effective_threads(0, 10) >= 1);
    }

    #[test]
    fn engines_agree_on_random_workload() {
        let hashes = random_hashes(300, 3);
        let brute = BruteForceIndex::new(hashes.clone());
        let bk = BkTreeIndex::new(hashes.clone());
        let mih = MihIndex::new(hashes.clone(), 8);
        let mut rng = seeded_rng(4);
        for _ in 0..50 {
            // Mix indexed and random queries.
            let q = if rng.random_bool(0.5) {
                hashes[rng.random_range(0..hashes.len())]
            } else {
                PHash(rng.random())
            };
            for r in [0u32, 2, 5, 8] {
                let expected = brute.radius_query(q, r);
                assert_eq!(bk.radius_query(q, r), expected, "bk radius {r}");
                assert_eq!(mih.radius_query(q, r), expected, "mih radius {r}");
            }
        }
    }

    /// Duplicate-heavy corpus: few distinct values, many copies.
    fn duplicate_heavy_hashes(n: usize, seed: u64) -> Vec<PHash> {
        let mut rng = seeded_rng(seed);
        let centers: Vec<PHash> = (0..8).map(|_| PHash(rng.random())).collect();
        (0..n)
            .map(|_| {
                let c = centers[rng.random_range(0..centers.len())];
                if rng.random_bool(0.3) {
                    c.with_flipped_bits(&[rng.random_range(0..64u8)])
                } else {
                    c
                }
            })
            .collect()
    }

    #[test]
    fn symmetric_neighbors_matches_all_neighbors() {
        for (seed, radius) in [(7u64, 8u32), (8, 0), (9, 4)] {
            let hashes = duplicate_heavy_hashes(250, seed);
            let expected = all_neighbors(&BruteForceIndex::new(hashes.clone()), radius, 3);

            let groups = HashGroups::new(&hashes);
            let mih = MihIndex::new(groups.unique().to_vec(), radius.max(1));
            let (got, stats) = symmetric_neighbors(&mih, &groups, radius, 3);
            assert_eq!(got, expected, "seed {seed} radius {radius}");
            assert_eq!(stats.items, 250);
            assert_eq!(stats.unique, groups.len_unique());
            assert!(stats.unique < stats.items, "workload should collapse");
        }
    }

    #[test]
    fn symmetric_neighbors_deterministic_across_thread_counts() {
        let hashes = duplicate_heavy_hashes(180, 10);
        let groups = HashGroups::new(&hashes);
        let brute = BruteForceIndex::new(groups.unique().to_vec());
        let (a, sa) = symmetric_neighbors(&brute, &groups, 6, 1);
        let (b, sb) = symmetric_neighbors(&brute, &groups, 6, 8);
        assert_eq!(a, b);
        assert_eq!(sa.unique_pairs, sb.unique_pairs);
        assert_eq!(sa.verified, sb.verified);
    }

    #[test]
    fn symmetric_neighbors_empty_corpus() {
        let groups = HashGroups::new(&[]);
        let mih = MihIndex::new(Vec::new(), 8);
        for threads in [0, 1, 7] {
            let (nbrs, stats) = symmetric_neighbors(&mih, &groups, 8, threads);
            assert!(nbrs.is_empty());
            assert_eq!(stats.unique_pairs, 0);
        }
    }

    #[test]
    fn symmetric_neighbors_all_duplicates() {
        // Single unique hash: every item neighbours every other item.
        let hashes = vec![PHash(99); 17];
        let groups = HashGroups::new(&hashes);
        let mih = MihIndex::new(groups.unique().to_vec(), 8);
        let (nbrs, stats) = symmetric_neighbors(&mih, &groups, 8, 4);
        assert_eq!(stats.unique, 1);
        assert_eq!(stats.unique_pairs, 0);
        for (i, list) in nbrs.iter().enumerate() {
            let expected: Vec<usize> = (0..17).filter(|&j| j != i).collect();
            assert_eq!(*list, expected);
        }
    }

    #[test]
    fn engines_agree_with_clustered_hashes() {
        // Clustered workload: groups of hashes within small distance.
        let mut rng = seeded_rng(5);
        let mut hashes = Vec::new();
        for _ in 0..20 {
            let center = PHash(rng.random());
            for _ in 0..10 {
                let flips: Vec<u8> = (0..rng.random_range(0..5u8))
                    .map(|_| rng.random_range(0..64u8))
                    .collect();
                hashes.push(center.with_flipped_bits(&flips));
            }
        }
        let brute = BruteForceIndex::new(hashes.clone());
        let bk = BkTreeIndex::new(hashes.clone());
        let mih = MihIndex::new(hashes.clone(), 8);
        for &q in &hashes {
            let expected = brute.radius_query(q, 8);
            assert_eq!(bk.radius_query(q, 8), expected);
            assert_eq!(mih.radius_query(q, 8), expected);
        }
    }
}
