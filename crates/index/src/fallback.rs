//! Engine fallback: MIH → BK-tree → brute force.
//!
//! The banded and tree-structured engines are fast *on the workloads
//! they were designed for*. Outside those envelopes they silently
//! degenerate to worse-than-brute-force behaviour:
//!
//! * **MIH** needs bands of a few bits each — at radius `r` it builds
//!   `r + 1` bands over 64 bits, so large radii produce 1–2-bit bands
//!   whose buckets hold most of the corpus, and every probe rescans it.
//!   It also collapses when one identical hash dominates the corpus
//!   (e.g. a corrupted feed emitting the same image): the dominant
//!   bucket turns every query quadratic.
//! * **BK-trees** prune by the triangle inequality; once the radius
//!   approaches half the hash width there is nothing to prune. Massive
//!   duplication degenerates the tree into a linked list of distance-0
//!   children.
//! * **Brute force** is O(n) per query regardless of the data — slower
//!   on friendly workloads, but immune to hostile ones.
//!
//! [`FallbackIndex::build`] tries the engines in that order, records
//! why each rejected the workload, and always returns a working index —
//! graceful degradation instead of a quadratic stall or a panic.

use crate::{BkTreeIndex, BruteForceIndex, HammingIndex, MihIndex, QueryScratch};
use meme_phash::PHash;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The engine a [`FallbackIndex`] settled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexEngine {
    /// Multi-index hashing (the preferred engine).
    Mih,
    /// BK-tree over the Hamming metric.
    BkTree,
    /// Parallel linear scan (the last resort; never rejects).
    BruteForce,
}

impl IndexEngine {
    /// Human-readable engine name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Mih => "multi-index hashing",
            Self::BkTree => "BK-tree",
            Self::BruteForce => "brute force",
        }
    }

    /// Stable machine-readable identifier (metric names, JSON keys).
    pub fn slug(self) -> &'static str {
        match self {
            Self::Mih => "mih",
            Self::BkTree => "bk_tree",
            Self::BruteForce => "brute_force",
        }
    }
}

impl fmt::Display for IndexEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an engine declined a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexError {
    /// The query radius exceeds what the engine can prune effectively.
    RadiusTooLarge {
        /// The engine that declined.
        engine: IndexEngine,
        /// Requested radius.
        radius: u32,
        /// Largest radius the engine accepts.
        limit: u32,
    },
    /// A single hash value dominates the corpus, degenerating the
    /// engine's data structure.
    DegenerateWorkload {
        /// The engine that declined.
        engine: IndexEngine,
        /// Fraction of the corpus held by the most common hash.
        dominant_fraction: f64,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::RadiusTooLarge {
                engine,
                radius,
                limit,
            } => write!(
                f,
                "{engine} rejects radius {radius} (accepts up to {limit})"
            ),
            Self::DegenerateWorkload {
                engine,
                dominant_fraction,
            } => write!(
                f,
                "{engine} rejects duplicate-dominated workload \
                 ({:.0}% of hashes identical)",
                100.0 * dominant_fraction
            ),
        }
    }
}

impl std::error::Error for IndexError {}

/// Largest radius MIH accepts: beyond it, bands shrink under 4 bits
/// (`64 / (radius + 1) < 4`) and bucket selectivity vanishes.
const MIH_MAX_RADIUS: u32 = 15;

/// Largest radius the BK-tree accepts: at half the hash width the
/// triangle inequality prunes nothing.
const BK_MAX_RADIUS: u32 = 31;

/// Minimum corpus size before duplicate domination matters; tiny
/// workloads are cheap under any engine.
const DUP_CHECK_MIN: usize = 16;

/// A radius-query index that always builds: MIH when the workload fits
/// its envelope, else a BK-tree, else brute force.
#[derive(Debug, Clone)]
pub struct FallbackIndex {
    backend: Backend,
    rejections: Vec<IndexError>,
}

#[derive(Debug, Clone)]
enum Backend {
    Mih(MihIndex),
    Bk(BkTreeIndex),
    Brute(BruteForceIndex),
}

impl FallbackIndex {
    /// Decide which engine would take `hashes` at `radius` — without
    /// building anything. Cheap (one duplicate count), so callers that
    /// want to time or label the build (e.g. a metrics span named after
    /// the engine) can plan first, then call [`FallbackIndex::build`].
    pub fn plan(hashes: &[PHash], radius: u32) -> (IndexEngine, Vec<IndexError>) {
        let dominant = dominant_fraction(hashes);
        let degenerate = hashes.len() >= DUP_CHECK_MIN && dominant > 0.5;
        let mut rejections = Vec::new();

        if radius > MIH_MAX_RADIUS {
            rejections.push(IndexError::RadiusTooLarge {
                engine: IndexEngine::Mih,
                radius,
                limit: MIH_MAX_RADIUS,
            });
        } else if degenerate {
            rejections.push(IndexError::DegenerateWorkload {
                engine: IndexEngine::Mih,
                dominant_fraction: dominant,
            });
        } else {
            return (IndexEngine::Mih, rejections);
        }

        if radius > BK_MAX_RADIUS {
            rejections.push(IndexError::RadiusTooLarge {
                engine: IndexEngine::BkTree,
                radius,
                limit: BK_MAX_RADIUS,
            });
        } else if degenerate {
            rejections.push(IndexError::DegenerateWorkload {
                engine: IndexEngine::BkTree,
                dominant_fraction: dominant,
            });
        } else {
            return (IndexEngine::BkTree, rejections);
        }

        (IndexEngine::BruteForce, rejections)
    }

    /// Build an index for radius-`radius` queries over `hashes`,
    /// falling back MIH → BK-tree → brute force as engines decline.
    pub fn build(hashes: Vec<PHash>, radius: u32) -> Self {
        let (engine, rejections) = Self::plan(&hashes, radius);
        let backend = match engine {
            // lint:allow(panic-reachable): plan() selects MIH only for radius < 64 and in-u32 gallery sizes, so new()'s contract holds
            IndexEngine::Mih => Backend::Mih(MihIndex::new(hashes, radius)),
            IndexEngine::BkTree => Backend::Bk(BkTreeIndex::new(hashes)),
            IndexEngine::BruteForce => Backend::Brute(BruteForceIndex::new(hashes)),
        };
        Self {
            backend,
            rejections,
        }
    }

    /// The engine that accepted the workload.
    pub fn engine(&self) -> IndexEngine {
        match self.backend {
            Backend::Mih(_) => IndexEngine::Mih,
            Backend::Bk(_) => IndexEngine::BkTree,
            Backend::Brute(_) => IndexEngine::BruteForce,
        }
    }

    /// Why the preferred engines declined, in fallback order (empty
    /// when MIH took the workload).
    pub fn rejections(&self) -> &[IndexError] {
        &self.rejections
    }
}

impl HammingIndex for FallbackIndex {
    fn len(&self) -> usize {
        match &self.backend {
            Backend::Mih(i) => i.len(),
            Backend::Bk(i) => i.len(),
            Backend::Brute(i) => i.len(),
        }
    }

    fn hash_at(&self, i: usize) -> PHash {
        match &self.backend {
            Backend::Mih(x) => x.hash_at(i),
            Backend::Bk(x) => x.hash_at(i),
            Backend::Brute(x) => x.hash_at(i),
        }
    }

    fn radius_query(&self, query: PHash, radius: u32) -> Vec<usize> {
        match &self.backend {
            Backend::Mih(x) => x.radius_query(query, radius),
            Backend::Bk(x) => x.radius_query(query, radius),
            Backend::Brute(x) => x.radius_query(query, radius),
        }
    }

    // lint:hotpath(per-query radius lookup; dispatch must stay allocation-free)
    fn radius_query_into(
        &self,
        query: PHash,
        radius: u32,
        scratch: &mut QueryScratch,
        out: &mut Vec<usize>,
    ) {
        match &self.backend {
            Backend::Mih(x) => x.radius_query_into(query, radius, scratch, out),
            Backend::Bk(x) => x.radius_query_into(query, radius, scratch, out),
            Backend::Brute(x) => x.radius_query_into(query, radius, scratch, out),
        }
    }

    fn radius_query_from(
        &self,
        query: PHash,
        radius: u32,
        start: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<usize>,
    ) {
        match &self.backend {
            Backend::Mih(x) => x.radius_query_from(query, radius, start, scratch, out),
            Backend::Bk(x) => x.radius_query_from(query, radius, start, scratch, out),
            Backend::Brute(x) => x.radius_query_from(query, radius, start, scratch, out),
        }
    }

    fn memory_bytes(&self) -> usize {
        match &self.backend {
            Backend::Mih(x) => x.memory_bytes(),
            Backend::Bk(x) => x.memory_bytes(),
            Backend::Brute(x) => x.memory_bytes(),
        }
    }
}

/// Share of the corpus held by the most common hash value (0 for an
/// empty corpus).
fn dominant_fraction(hashes: &[PHash]) -> f64 {
    if hashes.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for h in hashes {
        *counts.entry(h.0).or_insert(0) += 1;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    max as f64 / hashes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn distinct_hashes(n: usize) -> Vec<PHash> {
        // Spread bits so pairwise distances are non-trivial.
        (0..n)
            .map(|i| PHash((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect()
    }

    #[test]
    fn clean_small_radius_uses_mih() {
        let idx = FallbackIndex::build(distinct_hashes(100), 8);
        assert_eq!(idx.engine(), IndexEngine::Mih);
        assert!(idx.rejections().is_empty());
    }

    #[test]
    fn large_radius_falls_to_bk_then_brute() {
        let idx = FallbackIndex::build(distinct_hashes(100), 20);
        assert_eq!(idx.engine(), IndexEngine::BkTree);
        assert_eq!(idx.rejections().len(), 1);

        let idx = FallbackIndex::build(distinct_hashes(100), 40);
        assert_eq!(idx.engine(), IndexEngine::BruteForce);
        assert_eq!(idx.rejections().len(), 2);
    }

    #[test]
    fn duplicate_dominated_workload_falls_to_brute() {
        let mut hashes = distinct_hashes(30);
        hashes.extend(std::iter::repeat_n(PHash(0xDEAD_BEEF), 70));
        let idx = FallbackIndex::build(hashes, 8);
        assert_eq!(idx.engine(), IndexEngine::BruteForce);
        assert_eq!(idx.rejections().len(), 2);
        assert!(matches!(
            idx.rejections()[0],
            IndexError::DegenerateWorkload { .. }
        ));
    }

    #[test]
    fn tiny_duplicate_workloads_stay_on_mih() {
        let hashes = vec![PHash(7); DUP_CHECK_MIN - 1];
        let idx = FallbackIndex::build(hashes, 8);
        assert_eq!(idx.engine(), IndexEngine::Mih);
    }

    #[test]
    fn fallback_answers_match_brute_force() {
        let mut hashes = distinct_hashes(50);
        hashes.extend(std::iter::repeat_n(PHash(42), 150));
        let brute = BruteForceIndex::new(hashes.clone());
        for radius in [0u32, 8, 20, 40] {
            let idx = FallbackIndex::build(hashes.clone(), radius);
            for &q in hashes.iter().take(20) {
                assert_eq!(
                    idx.radius_query(q, radius),
                    brute.radius_query(q, radius),
                    "engine {:?} radius {radius}",
                    idx.engine()
                );
            }
        }
    }

    #[test]
    fn empty_corpus_builds() {
        let idx = FallbackIndex::build(Vec::new(), 8);
        assert_eq!(idx.engine(), IndexEngine::Mih);
        assert!(idx.is_empty());
        assert!(idx.radius_query(PHash(1), 8).is_empty());
    }
}
