//! Linear-scan index: the correctness oracle and the small-`n` winner.

use crate::{HammingIndex, QueryScratch};
use meme_phash::{swar_distance, PHash};

/// Brute-force radius queries: one popcount per indexed hash. With
/// 64-bit XOR + POPCNT this scans tens of millions of hashes per second
/// per core, so it is the pragmatic choice below ~10⁴ items and the
/// ground truth the other engines are tested against.
#[derive(Debug, Clone)]
pub struct BruteForceIndex {
    hashes: Vec<PHash>,
}

impl BruteForceIndex {
    /// Build from a hash list (no preprocessing).
    pub fn new(hashes: Vec<PHash>) -> Self {
        Self { hashes }
    }

    /// The indexed hashes.
    pub fn hashes(&self) -> &[PHash] {
        &self.hashes
    }
}

impl HammingIndex for BruteForceIndex {
    fn len(&self) -> usize {
        self.hashes.len()
    }

    fn hash_at(&self, i: usize) -> PHash {
        self.hashes[i]
    }

    fn radius_query(&self, query: PHash, radius: u32) -> Vec<usize> {
        self.hashes
            .iter()
            .enumerate()
            .filter(|(_, h)| query.distance(**h) <= radius)
            .map(|(i, _)| i)
            .collect()
    }

    // lint:hotpath(per-query linear scan; must not allocate per call)
    fn radius_query_into(
        &self,
        query: PHash,
        radius: u32,
        scratch: &mut QueryScratch,
        out: &mut Vec<usize>,
    ) {
        self.radius_query_from(query, radius, 0, scratch, out);
    }

    fn radius_query_from(
        &self,
        query: PHash,
        radius: u32,
        start: usize,
        scratch: &mut QueryScratch,
        out: &mut Vec<usize>,
    ) {
        // A linear scan visits each id exactly once, so the visited
        // stamps are unnecessary; results are ascending by construction.
        out.clear();
        let start = start.min(self.hashes.len());
        let tail = &self.hashes[start..];
        out.extend(
            tail.iter()
                .enumerate()
                .filter(|(_, &h)| swar_distance(query, h) <= radius)
                .map(|(k, _)| start + k),
        );
        scratch.stats.candidates += tail.len() as u64;
        scratch.stats.verified += tail.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_and_near_matches() {
        let base = PHash(0xDEAD_BEEF_0000_0000);
        let hashes = vec![
            base,
            base.with_flipped_bits(&[0]),
            base.with_flipped_bits(&[0, 1, 2, 3, 4, 5, 6, 7, 8]),
            PHash(!base.bits()),
        ];
        let idx = BruteForceIndex::new(hashes);
        assert_eq!(idx.radius_query(base, 0), vec![0]);
        assert_eq!(idx.radius_query(base, 1), vec![0, 1]);
        assert_eq!(idx.radius_query(base, 9), vec![0, 1, 2]);
        assert_eq!(idx.radius_query(base, 64), vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_index() {
        let idx = BruteForceIndex::new(Vec::new());
        assert!(idx.is_empty());
        assert!(idx.radius_query(PHash(0), 64).is_empty());
    }

    #[test]
    fn duplicate_hashes_all_returned() {
        let h = PHash(42);
        let idx = BruteForceIndex::new(vec![h, h, h]);
        assert_eq!(idx.radius_query(h, 0), vec![0, 1, 2]);
    }
}
