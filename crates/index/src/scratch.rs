//! Reusable per-query working memory.
//!
//! The original engines paid a fresh `Vec` plus a `sort_unstable + dedup`
//! on every radius query. [`QueryScratch`] replaces that with an
//! **epoch-stamped visited buffer**: one `u32` stamp per indexed item,
//! where "item was already seen this query" is `stamps[i] == epoch`.
//! Starting a new query is a single counter increment — no `O(n)` clear —
//! and the stamp array is only rewritten lazily as items are touched. A
//! candidate batch buffer rides along so band probes can gather ids
//! without allocating.
//!
//! Steady state (buffers grown to the workload's high-water mark), a
//! query through [`crate::HammingIndex::radius_query_into`] performs
//! **zero heap allocations**; `crates/index/tests/no_alloc.rs` asserts
//! this with a counting global allocator.
//!
//! The scratch also accumulates [`QueryStats`] — band probes, candidates
//! gathered, distances verified — which the drivers roll up into the
//! `index.*` metrics family.

/// Cumulative work counters for queries run through one scratch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Band-bucket probes (one binary search each for the CSR engine).
    pub probes: u64,
    /// Candidate ids gathered from probed buckets, before dedup.
    pub candidates: u64,
    /// Exact Hamming distances computed (candidates surviving dedup).
    pub verified: u64,
}

impl QueryStats {
    /// Component-wise sum — used to merge per-worker stats
    /// deterministically (addition is order-independent).
    pub fn merge(&mut self, other: QueryStats) {
        self.probes += other.probes;
        self.candidates += other.candidates;
        self.verified += other.verified;
    }
}

/// Reusable query working memory: epoch-stamped visited set, candidate
/// buffer, and work counters. One per worker thread; never shared.
#[derive(Debug, Clone, Default)]
pub struct QueryScratch {
    /// `stamps[i] == epoch` ⇔ item `i` was already gathered this query.
    stamps: Vec<u32>,
    /// Current query's epoch; `0` is reserved as "never stamped".
    epoch: u32,
    /// Candidate ids gathered by the current query, in probe order.
    pub(crate) candidates: Vec<u32>,
    /// Cumulative work counters (see [`QueryStats`]).
    pub(crate) stats: QueryStats,
}

impl QueryScratch {
    /// An empty scratch; buffers grow to the workload's high-water mark
    /// on first use and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a new query over an index of `n` items: bump the epoch and
    /// make sure the stamp buffer covers all `n` ids. Amortized O(1);
    /// the stamp array is rewritten wholesale only on epoch wraparound
    /// (once every `u32::MAX` queries).
    pub(crate) fn begin(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Wrapped: old stamps could collide with the new epoch,
                // so clear them all and restart at 1 (0 = never seen).
                self.stamps.iter_mut().for_each(|s| *s = 0);
                1
            }
        };
        self.candidates.clear();
    }

    /// Mark item `id` as seen this query; returns `true` the first time.
    #[inline(always)]
    pub(crate) fn mark(&mut self, id: u32) -> bool {
        let slot = &mut self.stamps[id as usize];
        let fresh = *slot != self.epoch;
        *slot = self.epoch;
        fresh
    }

    /// Cumulative work counters since construction (or the last
    /// [`QueryScratch::take_stats`]).
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// Return and reset the cumulative counters.
    pub fn take_stats(&mut self) -> QueryStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_is_once_per_epoch() {
        let mut s = QueryScratch::new();
        s.begin(4);
        assert!(s.mark(2));
        assert!(!s.mark(2));
        assert!(s.mark(0));
        s.begin(4);
        assert!(s.mark(2), "new epoch forgets old marks");
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let mut s = QueryScratch::new();
        s.begin(2);
        assert!(s.mark(1));
        s.epoch = u32::MAX; // fast-forward to the wrap
        s.stamps[0] = u32::MAX; // a stale stamp that must not collide
        s.begin(2);
        assert_eq!(s.epoch, 1);
        assert!(s.mark(0), "stale stamp survived the wrap");
    }

    #[test]
    fn stats_accumulate_and_take() {
        let mut s = QueryScratch::new();
        s.stats.probes = 3;
        s.stats.merge(QueryStats {
            probes: 1,
            candidates: 2,
            verified: 4,
        });
        assert_eq!(s.stats().probes, 4);
        assert_eq!(s.take_stats().verified, 4);
        assert_eq!(s.stats(), QueryStats::default());
    }

    #[test]
    fn begin_grows_but_never_shrinks() {
        let mut s = QueryScratch::new();
        s.begin(10);
        assert_eq!(s.stamps.len(), 10);
        s.begin(3);
        assert_eq!(s.stamps.len(), 10);
    }
}
