//! Steady-state allocation audit for the scratch-reuse query path.
//!
//! The CSR engine's contract is that once a worker's buffers have grown
//! to the workload's high-water mark, `radius_query_into` /
//! `radius_query_from` perform **zero heap allocations**: probing is
//! binary search over flat arrays, dedup is the epoch stamp, results
//! reuse the caller's output vector, and the final ordering is an
//! in-place sort. A counting global allocator makes that claim a test
//! instead of a comment.
//!
//! The whole file is one `#[test]` so the counter is never shared with
//! a concurrently running test (the test harness runs tests in threads;
//! a second test's allocations would show up in our window).

use meme_index::{BruteForceIndex, HammingIndex, MihIndex, QueryScratch};
use meme_phash::PHash;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with an allocation counter. Deallocations
/// are not counted — the assertion is about *new* heap traffic.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// The workspace lib crates `#![forbid(unsafe_code)]`; integration tests
// are separate crates, and a global allocator shim is exactly the kind
// of boundary where the unsafety is contained and auditable.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Deterministic clustered + duplicated workload, no RNG dependency.
fn workload(n: usize) -> Vec<PHash> {
    (0..n)
        .map(|i| {
            let center = (i as u64 % 13).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // Flip up to two low bits on some items; repeat others
            // verbatim so duplicate buckets exist.
            let tweak = match i % 4 {
                0 => 0,
                1 => 1u64 << (i % 64),
                2 => 0,
                _ => (1u64 << (i % 64)) | (1u64 << ((i / 2) % 64)),
            };
            PHash(center ^ tweak)
        })
        .collect()
}

#[test]
fn steady_state_queries_do_not_allocate() {
    let hashes = workload(2000);
    let mih = MihIndex::new(hashes.clone(), 8);
    let brute = BruteForceIndex::new(hashes.clone());

    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();

    // Warmup: drive every buffer (stamps, candidates, output) to its
    // high-water mark over the full query mix.
    for (i, &q) in hashes.iter().enumerate() {
        mih.radius_query_into(q, 8, &mut scratch, &mut out);
        mih.radius_query_from(q, 8, i / 2, &mut scratch, &mut out);
        brute.radius_query_into(q, 8, &mut scratch, &mut out);
    }

    let before = allocations();
    for (i, &q) in hashes.iter().enumerate() {
        mih.radius_query_into(q, 8, &mut scratch, &mut out);
        mih.radius_query_from(q, 8, i / 2, &mut scratch, &mut out);
        brute.radius_query_into(q, 8, &mut scratch, &mut out);
        brute.radius_query_from(q, 8, i / 2, &mut scratch, &mut out);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state radius queries must not touch the heap"
    );
}
