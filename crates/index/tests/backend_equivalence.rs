//! Cross-backend equivalence: MIH, BK-tree, and brute force must return
//! *identical* neighbor sets — especially at the `eps`/`theta` decision
//! boundary (the paper's eps = θ = 8), and including the self-match —
//! so DBSCAN's core test (`nb.len() + 1 >= min_pts`) means exactly the
//! same thing no matter which engine a [`FallbackIndex`] degraded to.

use meme_index::{
    all_neighbors, BkTreeIndex, BruteForceIndex, FallbackIndex, HammingIndex, IndexEngine, MihIndex,
};
use meme_phash::PHash;
use meme_stats::seeded_rng;
use rand::RngExt;

/// The paper's clustering radius (eps) and annotation threshold (θ).
const BOUNDARY: u32 = 8;

/// A corpus engineered around the radius boundary: for each of several
/// centers, satellites at exact Hamming distances 6..=10 — so every
/// query has neighbors just inside, exactly on, and just outside the
/// radius — plus uniform background noise.
fn boundary_corpus(seed: u64) -> Vec<PHash> {
    let mut rng = seeded_rng(seed);
    let mut hashes = Vec::new();
    for _ in 0..12 {
        let center = PHash(rng.random());
        hashes.push(center);
        for d in 6u8..=10 {
            // Flip exactly `d` distinct bit positions.
            let mut positions: Vec<u8> = (0..64).collect();
            for i in 0..d as usize {
                let j = rng.random_range(i..64usize);
                positions.swap(i, j);
            }
            hashes.push(center.with_flipped_bits(&positions[..d as usize]));
        }
    }
    for _ in 0..80 {
        hashes.push(PHash(rng.random()));
    }
    hashes
}

fn engines(hashes: &[PHash]) -> Vec<(&'static str, Box<dyn HammingIndex>)> {
    vec![
        ("brute", Box::new(BruteForceIndex::new(hashes.to_vec()))),
        ("bk", Box::new(BkTreeIndex::new(hashes.to_vec()))),
        ("mih", Box::new(MihIndex::new(hashes.to_vec(), BOUNDARY))),
    ]
}

#[test]
fn identical_neighbor_sets_at_the_radius_boundary() {
    let hashes = boundary_corpus(101);
    let engines = engines(&hashes);
    // Every indexed hash as query; the boundary radius and its
    // neighbors (r-1 excludes the exact-distance satellites, r+1
    // includes the just-outside ones).
    for r in [BOUNDARY - 1, BOUNDARY, BOUNDARY + 1] {
        // MIH is built for BOUNDARY; querying beyond the built radius
        // is out of contract, so skip it there.
        for &q in &hashes {
            let expected = engines[0].1.radius_query(q, r);
            for (name, engine) in &engines[1..] {
                if *name == "mih" && r > BOUNDARY {
                    continue;
                }
                assert_eq!(
                    engine.radius_query(q, r),
                    expected,
                    "{name} disagrees with brute force at radius {r}"
                );
            }
        }
    }
}

#[test]
fn engines_agree_on_self_inclusion() {
    // The HammingIndex contract: a query that is itself indexed comes
    // back (distance 0). Every engine must honour it, or DBSCAN's
    // `nb.len() + 1` off-by-one correction would double-count on some
    // backends and not others.
    let hashes = boundary_corpus(102);
    for (name, engine) in engines(&hashes) {
        for (i, &h) in hashes.iter().enumerate() {
            assert!(
                engine.radius_query(h, 0).contains(&i),
                "{name} dropped the self-match for item {i}"
            );
        }
    }
}

#[test]
fn all_neighbors_identical_across_engines_and_self_excluded() {
    let hashes = boundary_corpus(103);
    let brute = BruteForceIndex::new(hashes.clone());
    let bk = BkTreeIndex::new(hashes.clone());
    let mih = MihIndex::new(hashes.clone(), BOUNDARY);
    let expected = all_neighbors(&brute, BOUNDARY, 2);
    assert_eq!(all_neighbors(&bk, BOUNDARY, 2), expected, "bk");
    assert_eq!(all_neighbors(&mih, BOUNDARY, 2), expected, "mih");
    for (i, list) in expected.iter().enumerate() {
        assert!(!list.contains(&i), "self not excluded for {i}");
    }
}

#[test]
fn dbscan_core_test_is_backend_invariant() {
    // The quantity DBSCAN actually consumes: |N(p)| + 1 >= min_pts.
    // Check the *core/non-core verdict* matches across engines for a
    // min_pts right at the satellite-family size, where one missing
    // boundary neighbor would flip the verdict.
    let hashes = boundary_corpus(104);
    let brute = BruteForceIndex::new(hashes.clone());
    let bk = BkTreeIndex::new(hashes.clone());
    let mih = MihIndex::new(hashes.clone(), BOUNDARY);
    let nb = all_neighbors(&brute, BOUNDARY, 2);
    let nbk = all_neighbors(&bk, BOUNDARY, 2);
    let nmih = all_neighbors(&mih, BOUNDARY, 2);
    for min_pts in [2usize, 3, 4, 5] {
        for i in 0..hashes.len() {
            let core = nb[i].len() + 1 >= min_pts;
            assert_eq!(nbk[i].len() + 1 >= min_pts, core, "bk, min_pts {min_pts}");
            assert_eq!(nmih[i].len() + 1 >= min_pts, core, "mih, min_pts {min_pts}");
        }
    }
}

#[test]
fn every_fallback_degradation_level_matches_brute_force() {
    let hashes = boundary_corpus(105);
    let reference = BruteForceIndex::new(hashes.clone());

    // Level 0: clean workload at the boundary radius — MIH accepts.
    let mih = FallbackIndex::build(hashes.clone(), BOUNDARY);
    assert_eq!(mih.engine(), IndexEngine::Mih);

    // Level 1: radius beyond MIH's envelope — BK-tree takes it.
    let bk = FallbackIndex::build(hashes.clone(), 20);
    assert_eq!(bk.engine(), IndexEngine::BkTree);

    // Level 2: duplicate-dominated workload — brute force takes it.
    let mut dominated = hashes.clone();
    dominated.extend(std::iter::repeat_n(PHash(0xFEED_FACE), 2 * hashes.len()));
    let brute = FallbackIndex::build(dominated.clone(), BOUNDARY);
    assert_eq!(brute.engine(), IndexEngine::BruteForce);
    let dominated_ref = BruteForceIndex::new(dominated.clone());

    for &q in hashes.iter().take(40) {
        assert_eq!(
            mih.radius_query(q, BOUNDARY),
            reference.radius_query(q, BOUNDARY),
            "fallback level mih"
        );
        assert_eq!(
            bk.radius_query(q, BOUNDARY),
            reference.radius_query(q, BOUNDARY),
            "fallback level bk"
        );
        assert_eq!(
            brute.radius_query(q, BOUNDARY),
            dominated_ref.radius_query(q, BOUNDARY),
            "fallback level brute"
        );
    }
}
