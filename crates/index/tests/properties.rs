//! Property-based tests: all engines agree with brute force on
//! arbitrary workloads, across radii and duplicate patterns.

#![allow(clippy::needless_range_loop)]

use meme_index::{all_neighbors, BkTreeIndex, BruteForceIndex, HammingIndex, MihIndex};
use meme_phash::PHash;
use proptest::prelude::*;

fn hashes_strategy() -> impl Strategy<Value = Vec<PHash>> {
    prop::collection::vec(any::<u64>().prop_map(PHash), 0..150)
}

/// Clustered workloads: centers plus near-duplicates (the realistic
/// regime for perceptual hashes).
fn clustered_strategy() -> impl Strategy<Value = Vec<PHash>> {
    prop::collection::vec(
        (
            any::<u64>(),
            prop::collection::vec(0u8..64, 0..6),
            1usize..5,
        ),
        1..20,
    )
    .prop_map(|families| {
        let mut out = Vec::new();
        for (center, flips, copies) in families {
            let c = PHash(center);
            for k in 0..copies {
                let mut f = flips.clone();
                f.truncate(k.min(f.len()));
                out.push(c.with_flipped_bits(&f));
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_uniform(hashes in hashes_strategy(), query: u64, radius in 0u32..12) {
        let q = PHash(query);
        let brute = BruteForceIndex::new(hashes.clone());
        let bk = BkTreeIndex::new(hashes.clone());
        let mih = MihIndex::new(hashes.clone(), 12);
        let expected = brute.radius_query(q, radius);
        prop_assert_eq!(bk.radius_query(q, radius), expected.clone());
        prop_assert_eq!(mih.radius_query(q, radius), expected);
    }

    #[test]
    fn engines_agree_clustered(hashes in clustered_strategy(), radius in 0u32..10) {
        let brute = BruteForceIndex::new(hashes.clone());
        let bk = BkTreeIndex::new(hashes.clone());
        let mih = MihIndex::new(hashes.clone(), 10);
        for &q in hashes.iter().take(20) {
            let expected = brute.radius_query(q, radius);
            prop_assert_eq!(bk.radius_query(q, radius), expected.clone());
            prop_assert_eq!(mih.radius_query(q, radius), expected);
        }
    }

    #[test]
    fn queries_return_sorted_unique_indices(hashes in hashes_strategy(), query: u64, radius in 0u32..64) {
        let brute = BruteForceIndex::new(hashes);
        let result = brute.radius_query(PHash(query), radius);
        for w in result.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn radius_monotonicity(hashes in hashes_strategy(), query: u64, r1 in 0u32..10, extra in 0u32..10) {
        let q = PHash(query);
        let mih = MihIndex::new(hashes, 20);
        let small = mih.radius_query(q, r1);
        let big = mih.radius_query(q, r1 + extra);
        // Growing the radius never loses results.
        for i in &small {
            prop_assert!(big.contains(i));
        }
    }

    #[test]
    fn all_neighbors_is_symmetric(hashes in clustered_strategy(), radius in 0u32..10) {
        let idx = BruteForceIndex::new(hashes);
        let adj = all_neighbors(&idx, radius, 2);
        for (i, nbrs) in adj.iter().enumerate() {
            for &j in nbrs {
                prop_assert!(adj[j].contains(&i), "edge {i}->{j} not symmetric");
                prop_assert!(j != i, "self-loop at {i}");
            }
        }
    }
}
