//! Property-based tests: all engines agree with brute force on
//! arbitrary workloads, across radii and duplicate patterns.

#![allow(clippy::needless_range_loop)]

use meme_index::{
    all_neighbors, symmetric_neighbors, BkTreeIndex, BruteForceIndex, HammingIndex, HashGroups,
    MihIndex, QueryScratch,
};
use meme_phash::PHash;
use proptest::prelude::*;

fn hashes_strategy() -> impl Strategy<Value = Vec<PHash>> {
    prop::collection::vec(any::<u64>().prop_map(PHash), 0..150)
}

/// Clustered workloads: centers plus near-duplicates (the realistic
/// regime for perceptual hashes).
fn clustered_strategy() -> impl Strategy<Value = Vec<PHash>> {
    prop::collection::vec(
        (
            any::<u64>(),
            prop::collection::vec(0u8..64, 0..6),
            1usize..5,
        ),
        1..20,
    )
    .prop_map(|families| {
        let mut out = Vec::new();
        for (center, flips, copies) in families {
            let c = PHash(center);
            for k in 0..copies {
                let mut f = flips.clone();
                f.truncate(k.min(f.len()));
                out.push(c.with_flipped_bits(&f));
            }
        }
        out
    })
}

/// Adversarial duplicate-heavy workloads: a handful of distinct values
/// (some adjacent within a few bits), each repeated many times —
/// the regime that degenerates band buckets and BK-trees.
fn duplicate_heavy_strategy() -> impl Strategy<Value = Vec<PHash>> {
    (
        prop::collection::vec((any::<u64>(), 1usize..40), 1..6),
        prop::collection::vec(0u8..64, 0..4),
    )
        .prop_map(|(values, flips)| {
            let mut out = Vec::new();
            for (i, (v, copies)) in values.iter().enumerate() {
                // Odd slots derive from the previous value by a few bit
                // flips, so duplicates of *nearby* hashes also occur.
                let h = if i % 2 == 1 {
                    PHash(values[i - 1].0).with_flipped_bits(&flips)
                } else {
                    PHash(*v)
                };
                out.extend(std::iter::repeat_n(h, *copies));
            }
            out
        })
}

/// Every engine's answer for `q` through the scratch-reuse API (the
/// same scratch serving all radii, as production workers do), checked
/// against `radius_query` and across engines.
fn assert_engines_agree_through_scratch(
    hashes: &[PHash],
    q: PHash,
    radii: impl Iterator<Item = u32> + Clone,
) {
    let brute = BruteForceIndex::new(hashes.to_vec());
    let bk = BkTreeIndex::new(hashes.to_vec());
    let mih = MihIndex::new(hashes.to_vec(), radii.clone().max().unwrap_or(0));
    let mut scratch = QueryScratch::new();
    let mut out = Vec::new();
    for radius in radii {
        let expected = brute.radius_query(q, radius);
        prop_assert_eq!(&bk.radius_query(q, radius), &expected, "bk r={}", radius);
        prop_assert_eq!(&mih.radius_query(q, radius), &expected, "mih r={}", radius);
        brute.radius_query_into(q, radius, &mut scratch, &mut out);
        prop_assert_eq!(&out, &expected, "brute scratch r={}", radius);
        bk.radius_query_into(q, radius, &mut scratch, &mut out);
        prop_assert_eq!(&out, &expected, "bk scratch r={}", radius);
        mih.radius_query_into(q, radius, &mut scratch, &mut out);
        prop_assert_eq!(&out, &expected, "mih scratch r={}", radius);
        let start = hashes.len() / 2;
        let tail: Vec<usize> = expected.iter().copied().filter(|&i| i >= start).collect();
        mih.radius_query_from(q, radius, start, &mut scratch, &mut out);
        prop_assert_eq!(&out, &tail, "mih from r={}", radius);
        bk.radius_query_from(q, radius, start, &mut scratch, &mut out);
        prop_assert_eq!(&out, &tail, "bk from r={}", radius);
        brute.radius_query_from(q, radius, start, &mut scratch, &mut out);
        prop_assert_eq!(&out, &tail, "brute from r={}", radius);
    }
}

/// `symmetric_neighbors` over collapsed groups must reproduce
/// `all_neighbors` over the full item list, engine-independently, and
/// count each in-radius unordered unique pair exactly once.
fn assert_symmetric_matches_all_neighbors(hashes: &[PHash], radius: u32, threads: usize) {
    let expected = all_neighbors(&BruteForceIndex::new(hashes.to_vec()), radius, threads);
    let groups = HashGroups::new(hashes);
    let mih = MihIndex::new(groups.unique().to_vec(), radius);
    let (via_mih, stats) = symmetric_neighbors(&mih, &groups, radius, threads);
    prop_assert_eq!(&via_mih, &expected);
    let bk = BkTreeIndex::new(groups.unique().to_vec());
    let (via_bk, _) = symmetric_neighbors(&bk, &groups, radius, threads);
    prop_assert_eq!(&via_bk, &expected);
    let in_radius_pairs: Vec<(usize, usize)> = (0..groups.len_unique())
        .flat_map(|u| (u + 1..groups.len_unique()).map(move |v| (u, v)))
        .filter(|&(u, v)| groups.unique()[u].distance(groups.unique()[v]) <= radius)
        .collect();
    prop_assert_eq!(stats.unique_pairs as usize, in_radius_pairs.len());
    // Edge accounting: undirected item edges = same-hash pairs plus the
    // cross-group expansion of each in-radius unique pair.
    let undirected_edges: usize = expected.iter().map(|l| l.len()).sum::<usize>() / 2;
    let dup_edges: usize = (0..groups.len_unique())
        .map(|u| groups.owners(u).len() * (groups.owners(u).len() - 1) / 2)
        .sum();
    let cross_edges: usize = in_radius_pairs
        .iter()
        .map(|&(u, v)| groups.owners(u).len() * groups.owners(v).len())
        .sum();
    prop_assert_eq!(undirected_edges, dup_edges + cross_edges);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_uniform(hashes in hashes_strategy(), query: u64, radius in 0u32..12) {
        let q = PHash(query);
        let brute = BruteForceIndex::new(hashes.clone());
        let bk = BkTreeIndex::new(hashes.clone());
        let mih = MihIndex::new(hashes.clone(), 12);
        let expected = brute.radius_query(q, radius);
        prop_assert_eq!(bk.radius_query(q, radius), expected.clone());
        prop_assert_eq!(mih.radius_query(q, radius), expected);
    }

    #[test]
    fn engines_agree_clustered(hashes in clustered_strategy(), radius in 0u32..10) {
        let brute = BruteForceIndex::new(hashes.clone());
        let bk = BkTreeIndex::new(hashes.clone());
        let mih = MihIndex::new(hashes.clone(), 10);
        for &q in hashes.iter().take(20) {
            let expected = brute.radius_query(q, radius);
            prop_assert_eq!(bk.radius_query(q, radius), expected.clone());
            prop_assert_eq!(mih.radius_query(q, radius), expected);
        }
    }

    #[test]
    fn queries_return_sorted_unique_indices(hashes in hashes_strategy(), query: u64, radius in 0u32..64) {
        let brute = BruteForceIndex::new(hashes);
        let result = brute.radius_query(PHash(query), radius);
        for w in result.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn radius_monotonicity(hashes in hashes_strategy(), query: u64, r1 in 0u32..10, extra in 0u32..10) {
        let q = PHash(query);
        let mih = MihIndex::new(hashes, 20);
        let small = mih.radius_query(q, r1);
        let big = mih.radius_query(q, r1 + extra);
        // Growing the radius never loses results.
        for i in &small {
            prop_assert!(big.contains(i));
        }
    }

    #[test]
    fn engines_agree_clustered_through_scratch(hashes in clustered_strategy(), query: u64) {
        // Radii 0..=12, indexed and foreign queries, scratch reuse.
        assert_engines_agree_through_scratch(&hashes, PHash(query), 0..=12);
        if let Some(&q) = hashes.first() {
            assert_engines_agree_through_scratch(&hashes, q, 0..=12);
        }
    }

    #[test]
    fn engines_agree_duplicate_heavy_through_scratch(hashes in duplicate_heavy_strategy(), query: u64) {
        assert_engines_agree_through_scratch(&hashes, PHash(query), 0..=12);
        if let Some(&q) = hashes.last() {
            assert_engines_agree_through_scratch(&hashes, q, 0..=12);
        }
    }

    #[test]
    fn symmetric_matches_all_neighbors_clustered(
        hashes in clustered_strategy(),
        radius in 0u32..=12,
        threads in 1usize..5,
    ) {
        assert_symmetric_matches_all_neighbors(&hashes, radius, threads);
    }

    #[test]
    fn symmetric_matches_all_neighbors_duplicate_heavy(
        hashes in duplicate_heavy_strategy(),
        radius in 0u32..=12,
        threads in 1usize..5,
    ) {
        assert_symmetric_matches_all_neighbors(&hashes, radius, threads);
    }

    #[test]
    fn all_neighbors_is_symmetric(hashes in clustered_strategy(), radius in 0u32..10) {
        let idx = BruteForceIndex::new(hashes);
        let adj = all_neighbors(&idx, radius, 2);
        for (i, nbrs) in adj.iter().enumerate() {
            for &j in nbrs {
                prop_assert!(adj[j].contains(&i), "edge {i}->{j} not symmetric");
                prop_assert!(j != i, "self-loop at {i}");
            }
        }
    }
}
