//! The five Web communities and their posting profiles.

use meme_stats::dist::LogNormal;
use meme_stats::WsRng;
use rand::distr::Distribution;
use serde::{Deserialize, Serialize};

/// The five communities of the paper's Hawkes model, in the order of
/// Figs. 11–16 rows/columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Community {
    /// 4chan's Politically Incorrect board.
    Pol,
    /// Reddit excluding The_Donald (the paper keeps T_D separate
    /// because it is a fringe seed community).
    Reddit,
    /// Twitter (1% streaming sample in the paper).
    Twitter,
    /// Gab.
    Gab,
    /// The The_Donald subreddit.
    TheDonald,
}

impl Community {
    /// All communities in figure order.
    pub const ALL: [Community; 5] = [
        Community::Pol,
        Community::Reddit,
        Community::Twitter,
        Community::Gab,
        Community::TheDonald,
    ];

    /// Number of communities.
    pub const COUNT: usize = 5;

    /// Hawkes process index (stable across the workspace).
    pub fn index(self) -> usize {
        match self {
            Community::Pol => 0,
            Community::Reddit => 1,
            Community::Twitter => 2,
            Community::Gab => 3,
            Community::TheDonald => 4,
        }
    }

    /// Inverse of [`Community::index`].
    ///
    /// # Panics
    /// Panics when `i >= 5`.
    pub fn from_index(i: usize) -> Self {
        Community::ALL
            .iter()
            .copied()
            .find(|c| c.index() == i)
            .expect("community index out of range")
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Community::Pol => "/pol/",
            Community::Reddit => "Reddit",
            Community::Twitter => "Twitter",
            Community::Gab => "Gab",
            Community::TheDonald => "T_D",
        }
    }

    /// The three fringe communities whose images seed the clustering
    /// (§3.3: "/pol/, The Donald subreddit, and Gab, as we treat them as
    /// fringe Web communities").
    pub const FRINGE: [Community; 3] = [Community::Pol, Community::TheDonald, Community::Gab];

    /// Whether this community is a clustering seed.
    pub fn is_fringe(self) -> bool {
        Community::FRINGE.contains(&self)
    }

    /// Whether posts on this community carry vote scores (§4.2.3:
    /// "Reddit and Gab incorporate a voting system").
    pub fn has_scores(self) -> bool {
        matches!(
            self,
            Community::Reddit | Community::Gab | Community::TheDonald
        )
    }

    /// Day (since dataset start) the community comes online. Gab
    /// launched in August 2016, one month and some days into the
    /// 13-month window.
    pub fn start_day(self) -> f64 {
        match self {
            Community::Gab => 40.0,
            _ => 0.0,
        }
    }
}

/// Wrapper over the annotation crate's screenshot platforms so the
/// dataset stays serde-serializable without exposing annotate types in
/// every signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScreenshotPlatform {
    /// Twitter-styled screenshot.
    Twitter,
    /// 4chan-styled screenshot.
    FourChan,
    /// Reddit-styled screenshot.
    Reddit,
    /// Facebook-styled screenshot.
    Facebook,
    /// Instagram-styled screenshot.
    Instagram,
}

impl ScreenshotPlatform {
    /// All platforms.
    pub const ALL: [ScreenshotPlatform; 5] = [
        ScreenshotPlatform::Twitter,
        ScreenshotPlatform::FourChan,
        ScreenshotPlatform::Reddit,
        ScreenshotPlatform::Facebook,
        ScreenshotPlatform::Instagram,
    ];

    /// Convert to the renderer's platform type.
    pub fn to_source(self) -> meme_annotate::screenshot::SourcePlatform {
        use meme_annotate::screenshot::SourcePlatform as S;
        match self {
            ScreenshotPlatform::Twitter => S::Twitter,
            ScreenshotPlatform::FourChan => S::FourChan,
            ScreenshotPlatform::Reddit => S::Reddit,
            ScreenshotPlatform::Facebook => S::Facebook,
            ScreenshotPlatform::Instagram => S::Instagram,
        }
    }
}

/// Static per-community posting profile. Volumes are *relative*; the
/// dataset scale multiplies them into absolute counts. The ratios track
/// Table 1 (posts) and Table 7 (meme events).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommunityProfile {
    /// The community.
    pub community: Community,
    /// Relative total posts per day (Table 1: Twitter 1.47B ≫ Reddit
    /// 1.08B ≫ /pol/ 48.7M ≫ Gab 12.4M over 13 months).
    pub daily_posts: f64,
    /// Fraction of posts carrying an image (Table 1: Twitter 16.5%,
    /// Reddit 5.8%, /pol/ 27.1%, Gab 7.7%).
    pub image_fraction: f64,
    /// Relative volume of *one-off* (non-meme) image posts vs meme image
    /// posts on the community — this sets the DBSCAN noise mass
    /// (Table 2: 63%–69% on the fringe communities).
    pub oneoff_ratio: f64,
    /// Screenshot families posted per meme post (fringe communities
    /// only) — the "similar screenshots of social network posts" mass
    /// of §4.1.1.
    pub screenshot_family_rate: f64,
    /// Log-score location for non-political, non-racist meme posts
    /// (only used when [`Community::has_scores`]).
    pub score_mu: f64,
    /// Log-score scale.
    pub score_sigma: f64,
}

impl CommunityProfile {
    /// The default profile set, calibrated to the paper's Tables 1, 2
    /// and 7 ratios.
    pub fn defaults() -> Vec<CommunityProfile> {
        vec![
            CommunityProfile {
                community: Community::Pol,
                daily_posts: 4700.0,
                image_fraction: 0.27,
                oneoff_ratio: 1.8,
                screenshot_family_rate: 0.012,
                score_mu: 0.0,
                score_sigma: 0.0,
            },
            CommunityProfile {
                community: Community::Reddit,
                daily_posts: 13000.0,
                image_fraction: 0.06,
                oneoff_ratio: 3.0,
                screenshot_family_rate: 0.0,
                score_mu: 1.3,
                score_sigma: 1.6,
            },
            CommunityProfile {
                community: Community::Twitter,
                daily_posts: 16500.0,
                image_fraction: 0.165,
                oneoff_ratio: 8.0,
                screenshot_family_rate: 0.0,
                score_mu: 0.0,
                score_sigma: 0.0,
            },
            CommunityProfile {
                community: Community::Gab,
                daily_posts: 1250.0,
                image_fraction: 0.077,
                oneoff_ratio: 1.3,
                screenshot_family_rate: 0.01,
                score_mu: 1.1,
                score_sigma: 1.4,
            },
            CommunityProfile {
                community: Community::TheDonald,
                daily_posts: 1700.0,
                image_fraction: 0.25,
                oneoff_ratio: 1.8,
                screenshot_family_rate: 0.01,
                score_mu: 1.5,
                score_sigma: 1.6,
            },
        ]
    }

    /// Draw a vote score for a post, conditioned on the meme group.
    /// Calibrated to Fig. 9: on Reddit, political memes out-score
    /// others and racist memes under-score; on Gab, political ≈
    /// non-political while racist memes score far lower.
    pub fn draw_score(&self, political: bool, racist: bool, rng: &mut WsRng) -> i64 {
        let mut mu = self.score_mu;
        match self.community {
            Community::Reddit | Community::TheDonald => {
                if political {
                    mu += 0.6;
                }
                if racist {
                    mu -= 0.5;
                }
            }
            Community::Gab if racist => {
                mu -= 0.9;
            }
            _ => {}
        }
        let d = LogNormal::new(mu, self.score_sigma.max(1e-6)).expect("valid score model");
        d.sample(rng).round() as i64
    }
}

/// Subreddits used for the Table-6 analysis. The first entry is the
/// home of most political/racist meme posts (The_Donald); the rest mix
/// meme-heavy and general-purpose subreddits from the paper's table.
pub const SUBREDDITS: [&str; 10] = [
    "The_Donald",
    "AdviceAnimals",
    "me_irl",
    "politics",
    "funny",
    "dankmemes",
    "EnoughTrumpSpam",
    "pics",
    "AskReddit",
    "conspiracy",
];

#[cfg(test)]
mod tests {
    use super::*;
    use meme_stats::seeded_rng;

    #[test]
    fn index_roundtrip() {
        for c in Community::ALL {
            assert_eq!(Community::from_index(c.index()), c);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let _ = Community::from_index(5);
    }

    #[test]
    fn fringe_set_matches_paper() {
        assert!(Community::Pol.is_fringe());
        assert!(Community::TheDonald.is_fringe());
        assert!(Community::Gab.is_fringe());
        assert!(!Community::Twitter.is_fringe());
        assert!(!Community::Reddit.is_fringe());
    }

    #[test]
    fn gab_starts_late() {
        assert!(Community::Gab.start_day() > 0.0);
        assert_eq!(Community::Pol.start_day(), 0.0);
    }

    #[test]
    fn volume_ordering_matches_table1() {
        let p = CommunityProfile::defaults();
        let get = |c: Community| {
            p.iter()
                .find(|x| x.community == c)
                .expect("profile exists")
                .daily_posts
        };
        assert!(get(Community::Twitter) > get(Community::Reddit));
        assert!(get(Community::Reddit) > get(Community::Pol));
        assert!(get(Community::Pol) > get(Community::Gab));
    }

    #[test]
    fn score_model_reproduces_fig9_ordering() {
        let profiles = CommunityProfile::defaults();
        let reddit = profiles
            .iter()
            .find(|p| p.community == Community::Reddit)
            .unwrap();
        let gab = profiles
            .iter()
            .find(|p| p.community == Community::Gab)
            .unwrap();
        let mut rng = seeded_rng(5);
        let mean = |p: &CommunityProfile, pol: bool, rac: bool, rng: &mut _| -> f64 {
            let n = 4000;
            (0..n)
                .map(|_| p.draw_score(pol, rac, rng) as f64)
                .sum::<f64>()
                / n as f64
        };
        // Reddit: political > non-political; racist < non-racist.
        assert!(mean(reddit, true, false, &mut rng) > mean(reddit, false, false, &mut rng));
        assert!(mean(reddit, false, true, &mut rng) < mean(reddit, false, false, &mut rng));
        // Gab: political ~ non-political; racist much lower.
        let gp = mean(gab, true, false, &mut rng);
        let gn = mean(gab, false, false, &mut rng);
        assert!((gp - gn).abs() / gn < 0.35, "gab political {gp} vs {gn}");
        assert!(mean(gab, false, true, &mut rng) < 0.6 * gn);
    }
}
