//! Synthetic Know Your Meme site generation.
//!
//! Builds a *raw* annotation site: entries with image galleries that mix
//! true variant renders with social-network screenshots — the noise the
//! paper's Step-4 CNN exists to remove ("meme annotation sites like KYM
//! often include, in their image galleries, screenshots of social
//! network posts"). The pipeline materializes gallery images lazily,
//! filters them, hashes the survivors, and only then produces the
//! `meme_annotate::KymSite` the annotation step consumes.
//!
//! Calibration targets from §3.2 / Fig. 4: entry counts dominated by
//! memes, heavy-tailed gallery sizes (median ~9, mean ~45, max in the
//! thousands), higher-level categories carrying more images, and a
//! Fig. 5b x = 0 mass of entries that annotate no cluster (entries for
//! memes the communities never posted).

use crate::universe::Universe;
use meme_annotate::kym::KymCategory;
use meme_annotate::screenshot::SourcePlatform;
use meme_stats::dist::Zipf;
use meme_stats::{child_seed, seeded_rng};
use rand::distr::Distribution;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// A lazily-renderable gallery image.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GalleryImage {
    /// A genuine variant render (with per-image jitter).
    Variant {
        /// Meme id in the universe.
        meme: usize,
        /// Variant index within the meme.
        variant: usize,
        /// Jitter RNG seed.
        jitter_seed: u64,
    },
    /// An off-universe image (for entries about memes the communities
    /// never post, and for random gallery cruft).
    Foreign {
        /// Template seed.
        template_seed: u64,
        /// Jitter RNG seed.
        jitter_seed: u64,
    },
    /// A social-network screenshot (Step-4 noise).
    Screenshot {
        /// Styled platform.
        platform: SourcePlatform,
        /// Render seed.
        seed: u64,
    },
}

impl GalleryImage {
    /// Whether this gallery image is screenshot noise.
    pub fn is_screenshot(&self) -> bool {
        matches!(self, GalleryImage::Screenshot { .. })
    }
}

/// A raw KYM entry: metadata plus an unfiltered gallery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawKymEntry {
    /// Entry name.
    pub name: String,
    /// Entry category.
    pub category: KymCategory,
    /// Tags.
    pub tags: Vec<String>,
    /// Origin platform.
    pub origin: String,
    /// People referenced.
    pub people: Vec<String>,
    /// Cultures referenced.
    pub cultures: Vec<String>,
    /// The meme this entry documents, when it is in the universe.
    pub meme_id: Option<usize>,
    /// Unfiltered gallery.
    pub images: Vec<GalleryImage>,
}

/// The raw annotation site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawKymSite {
    /// All entries.
    pub entries: Vec<RawKymEntry>,
}

/// KYM generation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KymGenConfig {
    /// Gallery images per variant for an average entry (scaled by meme
    /// popularity).
    pub images_per_variant: f64,
    /// Probability that a gallery slot is screenshot noise.
    pub screenshot_fraction: f64,
    /// Number of extra entries documenting memes absent from the
    /// communities (Fig. 5b's zero-cluster entries).
    pub absent_entries: usize,
}

impl Default for KymGenConfig {
    fn default() -> Self {
        Self {
            images_per_variant: 4.0,
            screenshot_fraction: 0.12,
            absent_entries: 12,
        }
    }
}

/// Generate the raw site for a universe.
pub fn generate_kym(universe: &Universe, config: &KymGenConfig, seed: u64) -> RawKymSite {
    let mut rng = seeded_rng(child_seed(seed, 0x171717));
    let mut entries = Vec::new();
    let mut jitter_counter = 0u64;
    let mut jitter = || {
        jitter_counter += 1;
        child_seed(seed, 0xF00D_0000 + jitter_counter)
    };

    for spec in universe.specs.iter().filter(|s| s.catalogued) {
        let mut images = Vec::new();
        // Gallery size scales with popularity (Fig. 4b heavy tail).
        let per_variant = (config.images_per_variant * (0.5 + spec.popularity)).ceil() as usize;
        for (v, _) in spec.variants.iter().enumerate() {
            for _ in 0..per_variant.max(1) {
                images.push(GalleryImage::Variant {
                    meme: spec.id,
                    variant: v,
                    jitter_seed: jitter(),
                });
            }
        }
        // Higher-level categories aggregate images from related specs
        // (this is what makes several entries annotate one cluster —
        // the Conspiracy-Keanu effect of Fig. 5a).
        if matches!(
            spec.category,
            KymCategory::Culture | KymCategory::Subculture | KymCategory::Site
        ) {
            for other in universe.specs.iter().filter(|o| {
                o.id != spec.id
                    && o.catalogued
                    && (o.cultures.iter().any(|c| c == &spec.name)
                        || o.tags.iter().any(|t| spec.tags.contains(t)))
            }) {
                for v in 0..other.variants.len().min(2) {
                    images.push(GalleryImage::Variant {
                        meme: other.id,
                        variant: v,
                        jitter_seed: jitter(),
                    });
                }
            }
        }
        // Related-meme cross-pollination: frog memes include a couple of
        // images of sibling frog memes.
        if spec.tags.iter().any(|t| t == "frog" || t == "pepe") {
            for other in universe
                .specs
                .iter()
                .filter(|o| o.id != spec.id && o.tags.iter().any(|t| t == "frog"))
                .take(3)
            {
                images.push(GalleryImage::Variant {
                    meme: other.id,
                    variant: 0,
                    jitter_seed: jitter(),
                });
            }
        }
        // Screenshot noise.
        let n_shots = ((images.len() as f64 * config.screenshot_fraction).round() as usize).max(
            if config.screenshot_fraction > 0.0 {
                1
            } else {
                0
            },
        );
        for _ in 0..n_shots {
            let platform = SourcePlatform::ALL[rng.random_range(0..SourcePlatform::ALL.len())];
            images.push(GalleryImage::Screenshot {
                platform,
                seed: jitter(),
            });
        }

        entries.push(RawKymEntry {
            name: spec.name.clone(),
            category: spec.category,
            tags: spec.tags.clone(),
            origin: spec.origin.clone(),
            people: spec.people.clone(),
            cultures: spec.cultures.clone(),
            meme_id: Some(spec.id),
            images,
        });
    }

    // Entries for memes absent from the communities: their galleries
    // use foreign templates no post will ever match.
    let size_zipf = Zipf::new(30, 1.1).expect("valid Zipf");
    for i in 0..config.absent_entries {
        let n_images = size_zipf.sample(&mut rng) + 1;
        let template_seed = child_seed(seed, 0xABBA_0000 + i as u64);
        let images = (0..n_images)
            .map(|_| GalleryImage::Foreign {
                template_seed,
                jitter_seed: jitter(),
            })
            .collect();
        entries.push(RawKymEntry {
            name: format!("Dormant Meme #{i}"),
            category: KymCategory::Meme,
            tags: vec!["obscure".to_string()],
            origin: "Unknown".to_string(),
            people: vec![],
            cultures: vec![],
            meme_id: None,
            images,
        });
    }

    RawKymSite { entries }
}

impl RawKymSite {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the site has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total gallery images (pre-filtering).
    pub fn total_images(&self) -> usize {
        self.entries.iter().map(|e| e.images.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseConfig;

    fn site() -> (Universe, RawKymSite) {
        let u = Universe::generate(
            &UniverseConfig {
                n_memes: 90,
                ..UniverseConfig::default()
            },
            7,
        );
        let s = generate_kym(&u, &KymGenConfig::default(), 7);
        (u, s)
    }

    #[test]
    fn only_catalogued_specs_get_entries() {
        let (u, s) = site();
        let catalogued = u.specs.iter().filter(|x| x.catalogued).count();
        assert_eq!(s.len(), catalogued + KymGenConfig::default().absent_entries);
    }

    #[test]
    fn galleries_contain_screenshot_noise() {
        let (_, s) = site();
        let shots: usize = s
            .entries
            .iter()
            .flat_map(|e| &e.images)
            .filter(|g| g.is_screenshot())
            .count();
        let total = s.total_images();
        let frac = shots as f64 / total as f64;
        assert!(
            (0.03..0.3).contains(&frac),
            "screenshot fraction {frac} of {total}"
        );
    }

    #[test]
    fn absent_entries_have_no_meme_id() {
        let (_, s) = site();
        let absent: Vec<_> = s.entries.iter().filter(|e| e.meme_id.is_none()).collect();
        assert_eq!(absent.len(), KymGenConfig::default().absent_entries);
        for e in absent {
            assert!(e
                .images
                .iter()
                .all(|g| matches!(g, GalleryImage::Foreign { .. })));
        }
    }

    #[test]
    fn popular_memes_have_bigger_galleries() {
        let (u, s) = site();
        let gallery_of = |meme_id: usize| -> usize {
            s.entries
                .iter()
                .find(|e| e.meme_id == Some(meme_id))
                .map(|e| e.images.len())
                .unwrap_or(0)
        };
        // Meme 0 is the most popular catalogued spec.
        let top = gallery_of(u.specs[0].id);
        let tail_spec = u
            .specs
            .iter()
            .rev()
            .find(|sp| sp.catalogued)
            .expect("some catalogued spec");
        assert!(top >= gallery_of(tail_spec.id), "top {top}");
    }

    #[test]
    fn frog_entries_cross_pollinate() {
        let (u, s) = site();
        let smug = u.specs.iter().find(|x| x.name == "Smug Frog").unwrap();
        let entry = s
            .entries
            .iter()
            .find(|e| e.meme_id == Some(smug.id))
            .unwrap();
        let foreign_memes = entry
            .images
            .iter()
            .filter_map(|g| match g {
                GalleryImage::Variant { meme, .. } if *meme != smug.id => Some(*meme),
                _ => None,
            })
            .count();
        assert!(
            foreign_memes > 0,
            "frog gallery should include sibling frogs"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let (u, _) = site();
        let a = generate_kym(&u, &KymGenConfig::default(), 7);
        let b = generate_kym(&u, &KymGenConfig::default(), 7);
        assert_eq!(a, b);
    }
}
