//! Memoized base renders for the hash stage.
//!
//! `Dataset::render_post_image` re-renders a post's image from scratch
//! on every call, even though thousands of posts share one
//! `(meme, variant)` canonical image and screenshot posts come in
//! *families* of identical re-posts. A [`RenderCache`] is built once per
//! dataset and shared read-only across the hashing workers: it holds one
//! immutable [`Arc<Image>`] per `(meme, variant)` canonical render, one
//! per screenshot family seed, and the blank image. With the cache,
//! per-post work for meme variants is photometric jitter only, and
//! screenshot/blank posts borrow the cached render outright.
//!
//! The cached path is **byte-identical** to the uncached one:
//! [`Dataset::render_post_cached`] consumes the same seeded rng stream
//! as `render_post_image` for every [`ImageRef`] kind (see the
//! equality tests at the bottom of this module and the golden-hash
//! corpus in `meme-core`).

use crate::dataset::{Dataset, ImageRef, Post, IMAGE_SIZE};
use meme_imaging::image::Image;
use meme_imaging::synth::{JitterConfig, VariantGenome};
use meme_stats::seeded_rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Immutable, share-everywhere cache of canonical renders.
///
/// Built once with [`RenderCache::build`]; afterwards it is read-only,
/// so worker threads share it by reference (or clone it — the images
/// are behind [`Arc`]s, so a clone is shallow).
///
/// One-off posts are deliberately *not* cached: their template seeds are
/// unique per post, so caching them would hold the whole corpus's pixels
/// resident for zero reuse. They count as misses in [`RenderStats`].
#[derive(Debug, Clone)]
pub struct RenderCache {
    /// `variant_bases[meme][variant]` — the canonical variant render
    /// (`VariantGenome::render(IMAGE_SIZE)`), computed once from the
    /// meme's shared template base.
    variant_bases: Vec<Vec<Arc<Image>>>,
    /// Screenshot family renders keyed by `family_seed`. BTreeMap keeps
    /// iteration deterministic for accounting.
    screenshots: BTreeMap<u64, Arc<Image>>,
    /// The all-zero image every `ImageRef::Blank` post shares.
    blank: Arc<Image>,
}

impl RenderCache {
    /// Render every cacheable base image of `dataset` once.
    ///
    /// Meme variants are rendered via the shared template base: the
    /// template is rendered once per meme and each variant's ops are
    /// applied on top (`VariantGenome::render_with_base`), which is
    /// bit-identical to rendering the variant from scratch. Screenshot
    /// families are discovered from the actual posts, so every family
    /// seed that occurs is covered.
    pub fn build(dataset: &Dataset) -> Self {
        let mut variant_bases = Vec::with_capacity(dataset.universe.specs.len());
        for spec in &dataset.universe.specs {
            let mut bases = Vec::with_capacity(spec.variants.len());
            // All variants of a meme share the template, but key the
            // memo by template seed so an unusual universe still
            // renders correctly.
            let mut template: Option<(u64, Image)> = None;
            for v in &spec.variants {
                let seed = v.template.seed;
                let base = match &template {
                    Some((s, img)) if *s == seed => v.render_with_base(img),
                    _ => {
                        let img = v.template.render(IMAGE_SIZE);
                        let out = v.render_with_base(&img);
                        template = Some((seed, img));
                        out
                    }
                };
                bases.push(Arc::new(base));
            }
            variant_bases.push(bases);
        }

        let mut screenshots: BTreeMap<u64, Arc<Image>> = BTreeMap::new();
        for post in &dataset.posts {
            if let ImageRef::Screenshot { family_seed, .. } = post.image {
                screenshots
                    .entry(family_seed)
                    .or_insert_with(|| Arc::new(dataset.render_post_image(post)));
            }
        }

        Self {
            variant_bases,
            screenshots,
            blank: Arc::new(Image::filled(IMAGE_SIZE, IMAGE_SIZE, 0.0)),
        }
    }

    /// Number of cached images (variant bases + screenshot families +
    /// the blank).
    pub fn entries(&self) -> usize {
        self.variant_bases.iter().map(Vec::len).sum::<usize>() + self.screenshots.len() + 1
    }

    /// Resident pixel bytes across all cached images.
    pub fn bytes(&self) -> usize {
        let px = |img: &Image| img.width() * img.height() * std::mem::size_of::<f32>();
        self.variant_bases
            .iter()
            .flatten()
            .map(|i| px(i))
            .sum::<usize>()
            + self.screenshots.values().map(|i| px(i)).sum::<usize>()
            + px(&self.blank)
    }
}

/// Per-worker accounting for the cached render path. Workers keep their
/// own stats and [`merge`](RenderStats::merge) them after the parallel
/// section, so the hot loop shares no counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenderStats {
    /// Posts served from a cached base (jitter-only or borrowed whole).
    pub hits: u64,
    /// Posts rendered from scratch (one-offs, or refs outside the cache).
    pub misses: u64,
    /// Posts with `ImageRef::MemeVariant`.
    pub meme_variant: u64,
    /// Posts with `ImageRef::OneOff`.
    pub one_off: u64,
    /// Posts with `ImageRef::Screenshot`.
    pub screenshot: u64,
    /// Posts with `ImageRef::Blank`.
    pub blank: u64,
}

impl RenderStats {
    /// Fold another worker's counters into this one.
    pub fn merge(&mut self, other: &RenderStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.meme_variant += other.meme_variant;
        self.one_off += other.one_off;
        self.screenshot += other.screenshot;
        self.blank += other.blank;
    }
}

/// A rendered post image that is either borrowed from the cache
/// (screenshots, blanks — no per-post work at all) or owned (jittered
/// meme variants, one-offs).
#[derive(Debug)]
pub enum Rendered<'a> {
    /// Borrowed straight from the [`RenderCache`].
    Shared(&'a Image),
    /// Rendered (or jittered) for this specific post.
    Owned(Image),
}

impl Rendered<'_> {
    /// The image, however it is stored.
    pub fn as_image(&self) -> &Image {
        match self {
            Rendered::Shared(img) => img,
            Rendered::Owned(img) => img,
        }
    }
}

impl Dataset {
    /// Render one post's image through the cache.
    ///
    /// Byte-identical to [`Dataset::render_post_image`] for every
    /// [`ImageRef`] kind: meme variants apply
    /// [`VariantGenome::jitter_base`] to the cached canonical render
    /// with an rng seeded exactly as the uncached path seeds it;
    /// screenshots and blanks borrow the cached image; one-offs (and
    /// any ref missing from the cache, e.g. a fault-injected index)
    /// fall back to the uncached renderer.
    pub fn render_post_cached<'c>(
        &self,
        post: &Post,
        cache: &'c RenderCache,
        stats: &mut RenderStats,
    ) -> Rendered<'c> {
        match post.image {
            ImageRef::MemeVariant {
                meme,
                variant,
                jitter_seed,
            } => {
                stats.meme_variant += 1;
                match cache.variant_bases.get(meme).and_then(|v| v.get(variant)) {
                    Some(base) => {
                        stats.hits += 1;
                        let mut rng = seeded_rng(jitter_seed);
                        Rendered::Owned(VariantGenome::jitter_base(
                            base,
                            &JitterConfig::default(),
                            &mut rng,
                        ))
                    }
                    None => {
                        stats.misses += 1;
                        Rendered::Owned(self.render_post_image(post))
                    }
                }
            }
            ImageRef::OneOff { .. } => {
                stats.one_off += 1;
                stats.misses += 1;
                Rendered::Owned(self.render_post_image(post))
            }
            ImageRef::Screenshot { family_seed, .. } => {
                stats.screenshot += 1;
                match cache.screenshots.get(&family_seed) {
                    Some(img) => {
                        stats.hits += 1;
                        Rendered::Shared(img)
                    }
                    None => {
                        stats.misses += 1;
                        Rendered::Owned(self.render_post_image(post))
                    }
                }
            }
            ImageRef::Blank => {
                stats.blank += 1;
                stats.hits += 1;
                Rendered::Shared(&cache.blank)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::ScreenshotPlatform;
    use crate::dataset::SimConfig;

    fn tiny_dataset() -> Dataset {
        SimConfig::tiny(7).generate()
    }

    #[test]
    fn cached_renders_are_byte_identical_for_all_posts() {
        let d = tiny_dataset();
        let cache = RenderCache::build(&d);
        let mut stats = RenderStats::default();
        for post in &d.posts {
            let cached = d.render_post_cached(post, &cache, &mut stats);
            let direct = d.render_post_image(post);
            assert_eq!(
                cached.as_image().data(),
                direct.data(),
                "post {} diverged through the cache",
                post.id
            );
        }
        assert_eq!(stats.misses, stats.one_off, "only one-offs may miss");
        assert_eq!(
            stats.hits + stats.misses,
            d.posts.len() as u64,
            "every post is counted exactly once"
        );
        assert_eq!(
            stats.meme_variant + stats.one_off + stats.screenshot + stats.blank,
            d.posts.len() as u64
        );
    }

    #[test]
    fn blank_posts_share_the_cached_blank() {
        let d = tiny_dataset();
        let cache = RenderCache::build(&d);
        let mut stats = RenderStats::default();
        let blank_post = Post {
            image: ImageRef::Blank,
            ..d.posts[0].clone()
        };
        let cached = d.render_post_cached(&blank_post, &cache, &mut stats);
        assert!(matches!(cached, Rendered::Shared(_)));
        assert_eq!(
            cached.as_image().data(),
            d.render_post_image(&blank_post).data()
        );
        assert_eq!((stats.blank, stats.hits), (1, 1));
    }

    #[test]
    fn out_of_cache_refs_fall_back_to_direct_rendering() {
        let d = tiny_dataset();
        let cache = RenderCache::build(&d);
        let mut stats = RenderStats::default();
        // A fault-injected ref pointing outside the universe must not
        // panic through the cached path (the uncached path would; the
        // cache lookup itself is total and falls back only when the
        // family seed is unknown).
        let foreign_family = Post {
            image: ImageRef::Screenshot {
                platform: ScreenshotPlatform::Twitter,
                family_seed: u64::MAX,
            },
            ..d.posts[0].clone()
        };
        let cached = d.render_post_cached(&foreign_family, &cache, &mut stats);
        assert_eq!(
            cached.as_image().data(),
            d.render_post_image(&foreign_family).data()
        );
        assert_eq!((stats.screenshot, stats.misses), (1, 1));
    }

    #[test]
    fn accounting_matches_dataset_shape() {
        let d = tiny_dataset();
        let cache = RenderCache::build(&d);
        let n_variants: usize = d.universe.specs.iter().map(|s| s.variants.len()).sum();
        let n_families = d
            .posts
            .iter()
            .filter_map(|p| match p.image {
                ImageRef::Screenshot { family_seed, .. } => Some(family_seed),
                _ => None,
            })
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert_eq!(cache.entries(), n_variants + n_families + 1);
        assert_eq!(
            cache.bytes(),
            cache.entries() * IMAGE_SIZE * IMAGE_SIZE * std::mem::size_of::<f32>()
        );
    }

    #[test]
    fn stats_merge_adds_fieldwise() {
        let mut a = RenderStats {
            hits: 1,
            misses: 2,
            meme_variant: 3,
            one_off: 4,
            screenshot: 5,
            blank: 6,
        };
        let b = RenderStats {
            hits: 10,
            misses: 20,
            meme_variant: 30,
            one_off: 40,
            screenshot: 50,
            blank: 60,
        };
        a.merge(&b);
        assert_eq!(
            a,
            RenderStats {
                hits: 11,
                misses: 22,
                meme_variant: 33,
                one_off: 44,
                screenshot: 55,
                blank: 66,
            }
        );
    }
}
