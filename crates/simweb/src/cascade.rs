//! Ground-truth meme cascades.
//!
//! Each meme variant spreads through the five communities as a
//! multivariate Hawkes process with the meme's ground-truth parameters.
//! Unlike the plain `meme-hawkes` simulator, the immigrant (background)
//! intensity here is *time-inhomogeneous*:
//!
//! * communities are silent before their launch day (Gab starts a month
//!   late — §3.1);
//! * political memes surge around the US election and the 2nd
//!   presidential debate, reproducing the Fig. 8 spikes;
//! * a mild weekly ripple adds realism without changing any conclusion.
//!
//! Every event keeps its ground-truth root community, which the
//! evaluation uses to validate the fitted influence matrices.

use crate::community::Community;
use crate::universe::{MemeGroup, MemeSpec};
use meme_stats::dist::{Exponential, Poisson};
use meme_stats::WsRng;
use rand::distr::Distribution;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// One event of a variant cascade.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeEvent {
    /// Time in days since dataset start.
    pub t: f64,
    /// Community the post lands on.
    pub community: Community,
    /// Ground-truth root cause (the community whose background rate
    /// started this event's ancestry chain).
    pub root_community: Community,
    /// Whether this event is itself an immigrant.
    pub is_immigrant: bool,
}

/// Cascade-level configuration (timeline landmarks).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeConfig {
    /// Observation horizon in days (the paper's window is 13 months ≈
    /// 396 days).
    pub horizon: f64,
    /// Day of the US election spike (Nov 8, 2016 ≈ day 130).
    pub election_day: f64,
    /// Day of the 2nd presidential debate (Oct 9, 2016 ≈ day 100).
    pub debate_day: f64,
    /// Peak multiplier applied to political-meme background rates
    /// around the landmarks.
    pub political_boost: f64,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        Self {
            horizon: 396.0,
            election_day: 130.0,
            debate_day: 100.0,
            political_boost: 2.5,
        }
    }
}

impl CascadeConfig {
    /// Background-rate modulation factor for `spec` on `community` at
    /// time `t` (multiplies the stationary `mu`).
    pub fn modulation(&self, spec: &MemeSpec, community: Community, t: f64) -> f64 {
        if t < community.start_day() {
            return 0.0;
        }
        let mut m = 1.0;
        if spec.group == MemeGroup::Political {
            // Gaussian bumps around the election (all communities) and
            // the debate (Twitter-heavy, matching Fig. 8c).
            let bump = |center: f64, width: f64| -> f64 { (-((t - center) / width).powi(2)).exp() };
            m += self.political_boost * bump(self.election_day, 12.0);
            if community == Community::Twitter {
                m += self.political_boost * bump(self.debate_day, 5.0);
            }
        }
        // Gab's meme usage ramps up over time (§4.2.2: "memes are
        // increasingly more used on Gab").
        if community == Community::Gab {
            let ramp = ((t - community.start_day()) / self.horizon).clamp(0.0, 1.0);
            m *= 0.4 + 1.6 * ramp;
        }
        m
    }

    /// Upper bound of [`CascadeConfig::modulation`] over all times,
    /// needed for thinning.
    fn modulation_bound(&self, spec: &MemeSpec) -> f64 {
        let mut bound: f64 = 2.0; // Gab ramp max
        if spec.group == MemeGroup::Political {
            bound = bound.max(1.0 + 2.0 * self.political_boost);
        }
        bound
    }
}

/// Generate one variant's cascade.
///
/// The variant's immigrant rate on community `c` is
/// `spec.hawkes.mu[c] * variant_share * modulation(t)`; offspring follow
/// the meme's weight matrix and kernel. Events are returned sorted by
/// time.
pub fn generate_cascade(
    spec: &MemeSpec,
    variant: usize,
    config: &CascadeConfig,
    rng: &mut WsRng,
) -> Vec<CascadeEvent> {
    assert!(variant < spec.variants.len(), "variant index out of range");
    assert!(config.horizon > 0.0, "horizon must be positive");
    let share = spec.variant_shares[variant];
    let model = &spec.hawkes;
    let k = Community::COUNT;

    struct Node {
        t: f64,
        community: usize,
        root: usize,
        is_immigrant: bool,
    }
    let mut arena: Vec<Node> = Vec::new();

    // Immigrants by thinning an inhomogeneous Poisson process.
    let bound_factor = config.modulation_bound(spec);
    for c in 0..k {
        let community = Community::from_index(c);
        let base = model.mu[c] * share;
        if base <= 0.0 {
            continue;
        }
        let bound_rate = base * bound_factor;
        let n_candidates = Poisson::new(bound_rate * config.horizon)
            .expect("valid rate")
            .sample(rng);
        for _ in 0..n_candidates {
            let t = rng.random::<f64>() * config.horizon;
            let accept = config.modulation(spec, community, t) / bound_factor;
            if rng.random::<f64>() < accept {
                arena.push(Node {
                    t,
                    community: c,
                    root: c,
                    is_immigrant: true,
                });
            }
        }
    }

    // Offspring cascade.
    let delay = Exponential::new(model.beta).expect("valid beta");
    let mut cursor = 0usize;
    while cursor < arena.len() {
        let (t0, src, root) = (arena[cursor].t, arena[cursor].community, arena[cursor].root);
        for dst in 0..k {
            let w = model.w[src][dst];
            if w <= 0.0 {
                continue;
            }
            let n = Poisson::new(w).expect("valid weight").sample(rng);
            for _ in 0..n {
                let t = t0 + delay.sample(rng);
                // Offspring respect the destination's launch day: a Gab
                // repost cannot exist before Gab does.
                if t < config.horizon && t >= Community::from_index(dst).start_day() {
                    arena.push(Node {
                        t,
                        community: dst,
                        root,
                        is_immigrant: false,
                    });
                }
            }
        }
        cursor += 1;
    }

    arena.sort_by(|a, b| a.t.partial_cmp(&b.t).expect("finite times"));
    arena
        .into_iter()
        .map(|n| CascadeEvent {
            t: n.t,
            community: Community::from_index(n.community),
            root_community: Community::from_index(n.root),
            is_immigrant: n.is_immigrant,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Universe, UniverseConfig};
    use meme_stats::seeded_rng;

    fn universe() -> Universe {
        Universe::generate(
            &UniverseConfig {
                n_memes: 70,
                rate_scale: 0.5,
                ..UniverseConfig::default()
            },
            3,
        )
    }

    #[test]
    fn events_sorted_and_within_horizon() {
        let u = universe();
        let cfg = CascadeConfig::default();
        let mut rng = seeded_rng(1);
        let events = generate_cascade(&u.specs[0], 0, &cfg, &mut rng);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
        assert!(events.iter().all(|e| e.t >= 0.0 && e.t < cfg.horizon));
    }

    #[test]
    fn gab_events_respect_launch_day() {
        let u = universe();
        let cfg = CascadeConfig::default();
        let mut rng = seeded_rng(2);
        for spec in u.specs.iter().take(10) {
            for v in 0..spec.variants.len() {
                for e in generate_cascade(spec, v, &cfg, &mut rng) {
                    if e.community == Community::Gab {
                        assert!(e.t >= Community::Gab.start_day());
                    }
                }
            }
        }
    }

    #[test]
    fn immigrants_root_at_themselves() {
        let u = universe();
        let cfg = CascadeConfig::default();
        let mut rng = seeded_rng(3);
        let events = generate_cascade(&u.specs[0], 0, &cfg, &mut rng);
        for e in &events {
            if e.is_immigrant {
                assert_eq!(e.community, e.root_community);
            }
        }
        // Some offspring exist and some have foreign roots.
        assert!(events.iter().any(|e| !e.is_immigrant));
    }

    #[test]
    fn political_memes_spike_at_election() {
        let u = universe();
        let cfg = CascadeConfig::default();
        let spec = u
            .specs
            .iter()
            .find(|s| s.group == MemeGroup::Political)
            .expect("political meme exists");
        let mut rng = seeded_rng(4);
        let mut near = 0usize;
        let mut far = 0usize;
        for v in 0..spec.variants.len() {
            for _ in 0..8 {
                for e in generate_cascade(spec, v, &cfg, &mut rng) {
                    if (e.t - cfg.election_day).abs() < 12.0 {
                        near += 1;
                    } else if (e.t - 250.0).abs() < 12.0 {
                        far += 1;
                    }
                }
            }
        }
        assert!(
            near as f64 > 1.5 * far as f64,
            "election window {near} vs quiet window {far}"
        );
    }

    #[test]
    fn variant_share_scales_volume() {
        let u = universe();
        let spec = u
            .specs
            .iter()
            .find(|s| s.variants.len() >= 3)
            .expect("multi-variant meme exists");
        let cfg = CascadeConfig::default();
        // Compare the largest- and smallest-share variants.
        let (mut hi, mut lo) = (0usize, 0usize);
        for (i, s) in spec.variant_shares.iter().enumerate() {
            if *s > spec.variant_shares[hi] {
                hi = i;
            }
            if *s < spec.variant_shares[lo] {
                lo = i;
            }
        }
        if spec.variant_shares[hi] < 2.0 * spec.variant_shares[lo] {
            return; // shares too even to compare robustly
        }
        let mut rng = seeded_rng(5);
        let count = |v: usize, rng: &mut WsRng| -> usize {
            (0..6)
                .map(|_| generate_cascade(spec, v, &cfg, rng).len())
                .sum()
        };
        let n_hi = count(hi, &mut rng);
        let n_lo = count(lo, &mut rng);
        assert!(n_hi > n_lo, "share {hi}:{n_hi} vs {lo}:{n_lo}");
    }

    #[test]
    #[should_panic(expected = "variant index")]
    fn bad_variant_panics() {
        let u = universe();
        let mut rng = seeded_rng(6);
        let _ = generate_cascade(&u.specs[0], 99, &CascadeConfig::default(), &mut rng);
    }
}
