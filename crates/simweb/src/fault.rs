//! Fault injection — deterministic corruption of a generated dataset.
//!
//! Real crawls are dirty: timestamps go missing or non-sensical, vote
//! scores overflow, KYM galleries come back empty, the same stock image
//! floods a board, cascades die after one post. A [`FaultSpec`]
//! reproduces those pathologies *deterministically* (seeded, so chaos
//! tests are replayable) against a clean [`Dataset`], and the chaos
//! suite asserts the pipeline completes with degradation records
//! instead of panicking.
//!
//! Each knob is a fraction in `[0, 1]` of the eligible population;
//! [`FaultSpec::apply`] mutates the dataset in place and returns a
//! [`FaultReport`] counting what was actually corrupted.

use crate::dataset::{Dataset, ImageRef};
use meme_stats::{child_seed, seeded_rng};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// A deterministic corruption recipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed for all corruption draws.
    pub seed: u64,
    /// Fraction of posts whose timestamp becomes NaN.
    pub nan_times: f64,
    /// Fraction of scored posts whose score becomes ±(i64 extreme).
    pub absurd_scores: f64,
    /// Fraction of KYM entries whose gallery is emptied.
    pub empty_galleries: f64,
    /// Fraction of fringe posts replaced by one shared image (a
    /// duplicate flood: one pHash dominating the corpus).
    pub duplicate_images: f64,
    /// Fraction of fringe posts replaced by all-zero images.
    pub blank_images: f64,
    /// Fraction of memes starved down to a single-post cascade.
    pub truncate_memes: f64,
    /// Fraction of memes whose posts are removed entirely (empty
    /// cascades: the KYM entry exists, the event stream does not).
    pub drop_memes: f64,
    /// Multiplier on every timestamp (1.0 = off). Values near zero
    /// compress all cascades into a burst, pushing Hawkes fits toward
    /// the critical regime.
    pub time_compression: f64,
}

impl FaultSpec {
    /// A spec that corrupts nothing.
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            nan_times: 0.0,
            absurd_scores: 0.0,
            empty_galleries: 0.0,
            duplicate_images: 0.0,
            blank_images: 0.0,
            truncate_memes: 0.0,
            drop_memes: 0.0,
            time_compression: 1.0,
        }
    }

    /// NaN timestamps on a tenth of all posts.
    pub fn nan_storm(seed: u64) -> Self {
        Self {
            nan_times: 0.1,
            ..Self::clean(seed)
        }
    }

    /// Every vote score pinned to an i64 extreme.
    pub fn score_garbage(seed: u64) -> Self {
        Self {
            absurd_scores: 1.0,
            ..Self::clean(seed)
        }
    }

    /// Most KYM galleries come back empty.
    pub fn gallery_wipe(seed: u64) -> Self {
        Self {
            empty_galleries: 0.7,
            ..Self::clean(seed)
        }
    }

    /// One image floods most of the fringe boards.
    pub fn duplicate_flood(seed: u64) -> Self {
        Self {
            duplicate_images: 0.7,
            ..Self::clean(seed)
        }
    }

    /// Most fringe images render all-zero.
    pub fn blank_flood(seed: u64) -> Self {
        Self {
            blank_images: 0.7,
            ..Self::clean(seed)
        }
    }

    /// Most cascades starved to a single event; some erased outright.
    pub fn cascade_starvation(seed: u64) -> Self {
        Self {
            truncate_memes: 0.8,
            drop_memes: 0.1,
            ..Self::clean(seed)
        }
    }

    /// All activity compressed into 2% of the horizon.
    pub fn time_crunch(seed: u64) -> Self {
        Self {
            time_compression: 0.02,
            ..Self::clean(seed)
        }
    }

    /// Corrupt the dataset in place; returns what was done.
    pub fn apply(&self, dataset: &mut Dataset) -> FaultReport {
        let mut report = FaultReport::default();

        if self.nan_times > 0.0 {
            let mut rng = seeded_rng(child_seed(self.seed, 1));
            for p in &mut dataset.posts {
                if rng.random_bool(self.nan_times) {
                    p.t = f64::NAN;
                    report.nan_times += 1;
                }
            }
        }

        if self.absurd_scores > 0.0 {
            let mut rng = seeded_rng(child_seed(self.seed, 2));
            let mut flip = false;
            for p in &mut dataset.posts {
                let Some(score) = p.score.as_mut() else {
                    continue;
                };
                if rng.random_bool(self.absurd_scores) {
                    // Alternate extremes; MIN + 1 so that `-score` and
                    // `abs()` downstream cannot overflow either.
                    *score = if flip { i64::MIN + 1 } else { i64::MAX };
                    flip = !flip;
                    report.absurd_scores += 1;
                }
            }
        }

        if self.empty_galleries > 0.0 {
            let mut rng = seeded_rng(child_seed(self.seed, 3));
            for e in &mut dataset.kym_raw.entries {
                if rng.random_bool(self.empty_galleries) {
                    e.images.clear();
                    report.emptied_galleries += 1;
                }
            }
        }

        if self.duplicate_images > 0.0 {
            let mut rng = seeded_rng(child_seed(self.seed, 4));
            // Every flooded post shares one template seed, so all of
            // them render (and hash) identically.
            let shared = ImageRef::OneOff {
                seed: child_seed(self.seed, 0xD0_B1E5),
            };
            for p in &mut dataset.posts {
                if p.community.is_fringe() && rng.random_bool(self.duplicate_images) {
                    p.image = shared;
                    p.true_root = None;
                    report.duplicated_images += 1;
                }
            }
        }

        if self.blank_images > 0.0 {
            let mut rng = seeded_rng(child_seed(self.seed, 5));
            for p in &mut dataset.posts {
                if p.community.is_fringe() && rng.random_bool(self.blank_images) {
                    p.image = ImageRef::Blank;
                    p.true_root = None;
                    report.blanked_images += 1;
                }
            }
        }

        if self.truncate_memes > 0.0 {
            let mut rng = seeded_rng(child_seed(self.seed, 6));
            let n_memes = dataset.universe.specs.len();
            let starved: Vec<bool> = (0..n_memes)
                .map(|_| rng.random_bool(self.truncate_memes))
                .collect();
            report.starved_memes = starved.iter().filter(|&&s| s).count();
            // Posts are time-sorted, so the first post seen for a
            // starved meme is its cascade root; drop the rest.
            let mut seen = vec![false; n_memes];
            dataset.posts.retain(|p| match p.image {
                ImageRef::MemeVariant { meme, .. } if starved[meme] => {
                    let keep = !seen[meme];
                    seen[meme] = true;
                    keep
                }
                _ => true,
            });
            for (i, p) in dataset.posts.iter_mut().enumerate() {
                p.id = i;
            }
        }

        if self.drop_memes > 0.0 {
            let mut rng = seeded_rng(child_seed(self.seed, 7));
            let n_memes = dataset.universe.specs.len();
            let dropped: Vec<bool> = (0..n_memes)
                .map(|_| rng.random_bool(self.drop_memes))
                .collect();
            report.dropped_memes = dropped.iter().filter(|&&d| d).count();
            dataset.posts.retain(|p| match p.image {
                ImageRef::MemeVariant { meme, .. } => !dropped[meme],
                _ => true,
            });
            for (i, p) in dataset.posts.iter_mut().enumerate() {
                p.id = i;
            }
        }

        if self.time_compression != 1.0 {
            for p in &mut dataset.posts {
                p.t *= self.time_compression;
            }
            report.time_compressed = true;
        }

        report
    }
}

/// What [`FaultSpec::apply`] actually corrupted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Posts whose timestamp became NaN.
    pub nan_times: usize,
    /// Posts whose score was pinned to an extreme.
    pub absurd_scores: usize,
    /// KYM entries whose gallery was emptied.
    pub emptied_galleries: usize,
    /// Fringe posts replaced by the shared duplicate image.
    pub duplicated_images: usize,
    /// Fringe posts replaced by blank images.
    pub blanked_images: usize,
    /// Memes starved to single-post cascades.
    pub starved_memes: usize,
    /// Memes whose posts were removed entirely.
    pub dropped_memes: usize,
    /// Whether the timeline was compressed.
    pub time_compressed: bool,
}

impl FaultReport {
    /// Whether any corruption was applied.
    pub fn any(&self) -> bool {
        self.nan_times > 0
            || self.absurd_scores > 0
            || self.emptied_galleries > 0
            || self.duplicated_images > 0
            || self.blanked_images > 0
            || self.starved_memes > 0
            || self.dropped_memes > 0
            || self.time_compressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SimConfig;

    fn tiny() -> Dataset {
        SimConfig::tiny(41).generate()
    }

    #[test]
    fn clean_spec_is_identity() {
        let mut d = tiny();
        let before = d.posts.clone();
        let report = FaultSpec::clean(7).apply(&mut d);
        assert!(!report.any());
        assert_eq!(before, d.posts);
    }

    #[test]
    fn apply_is_deterministic() {
        let mut a = tiny();
        let mut b = tiny();
        let ra = FaultSpec::nan_storm(9).apply(&mut a);
        let rb = FaultSpec::nan_storm(9).apply(&mut b);
        assert_eq!(ra, rb);
        let na: Vec<usize> = a
            .posts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.t.is_nan())
            .map(|(i, _)| i)
            .collect();
        let nb: Vec<usize> = b
            .posts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.t.is_nan())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(na, nb);
        assert!(!na.is_empty());
    }

    #[test]
    fn nan_storm_hits_roughly_the_requested_fraction() {
        let mut d = tiny();
        let n = d.posts.len();
        let report = FaultSpec::nan_storm(5).apply(&mut d);
        let frac = report.nan_times as f64 / n as f64;
        assert!((0.05..0.2).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn duplicate_flood_shares_one_image() {
        let mut d = tiny();
        let report = FaultSpec::duplicate_flood(5).apply(&mut d);
        assert!(report.duplicated_images > 0);
        let mut seeds: Vec<u64> = d
            .posts
            .iter()
            .filter_map(|p| match p.image {
                ImageRef::OneOff { seed } => Some(seed),
                _ => None,
            })
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        // The shared seed plus the generator's own one-offs.
        let shared = child_seed(5, 0xD0_B1E5);
        assert!(seeds.contains(&shared));
        let count = d
            .posts
            .iter()
            .filter(|p| p.image == ImageRef::OneOff { seed: shared })
            .count();
        assert_eq!(count, report.duplicated_images);
    }

    #[test]
    fn blank_posts_render_all_zero() {
        let mut d = tiny();
        let report = FaultSpec::blank_flood(5).apply(&mut d);
        assert!(report.blanked_images > 0);
        let blank = d
            .posts
            .iter()
            .find(|p| p.image == ImageRef::Blank)
            .expect("a blank post");
        let img = d.render_post_image(blank);
        assert!(img.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cascade_starvation_leaves_single_event_cascades() {
        let mut d = tiny();
        let before = d.posts.len();
        let report = FaultSpec::cascade_starvation(5).apply(&mut d);
        assert!(report.starved_memes > 0);
        assert!(report.dropped_memes > 0);
        assert!(d.posts.len() < before);
        // Dropped memes vanish from the corpus: fewer distinct memes
        // retain posts than the universe defines.
        let with_posts: std::collections::HashSet<usize> = d
            .posts
            .iter()
            .filter_map(|p| match p.image {
                ImageRef::MemeVariant { meme, .. } => Some(meme),
                _ => None,
            })
            .collect();
        assert!(with_posts.len() + report.dropped_memes <= d.universe.specs.len());
        // Ids were reindexed.
        for (i, p) in d.posts.iter().enumerate() {
            assert_eq!(p.id, i);
        }
        // Starved memes really have one post each: count per meme and
        // check the overall distribution still contains singletons.
        let mut per_meme = std::collections::HashMap::new();
        for p in &d.posts {
            if let ImageRef::MemeVariant { meme, .. } = p.image {
                *per_meme.entry(meme).or_insert(0usize) += 1;
            }
        }
        let singles = per_meme.values().filter(|&&c| c == 1).count();
        assert!(singles >= report.starved_memes.min(per_meme.len()) / 2);
    }

    #[test]
    fn score_garbage_pins_every_score() {
        let mut d = tiny();
        let report = FaultSpec::score_garbage(5).apply(&mut d);
        assert!(report.absurd_scores > 0);
        for p in &d.posts {
            if let Some(s) = p.score {
                assert!(s == i64::MAX || s == i64::MIN + 1, "score {s}");
            }
        }
    }

    #[test]
    fn gallery_wipe_empties_most_entries() {
        let mut d = tiny();
        let total = d.kym_raw.entries.len();
        let report = FaultSpec::gallery_wipe(5).apply(&mut d);
        assert!(report.emptied_galleries > total / 2);
        let empty = d
            .kym_raw
            .entries
            .iter()
            .filter(|e| e.images.is_empty())
            .count();
        assert!(empty >= report.emptied_galleries);
    }

    #[test]
    fn time_crunch_compresses_the_horizon() {
        let mut d = tiny();
        let max_before = d.posts.iter().map(|p| p.t).fold(0.0f64, f64::max);
        FaultSpec::time_crunch(5).apply(&mut d);
        let max_after = d.posts.iter().map(|p| p.t).fold(0.0f64, f64::max);
        assert!(max_after < max_before * 0.05);
    }
}
