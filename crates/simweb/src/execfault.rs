//! Execution-fault injection — deterministic faults in the *machinery*
//! that runs the pipeline, as opposed to the *data* it runs on
//! ([`crate::fault::FaultSpec`]).
//!
//! Real batch runs die for reasons the dataset never sees: a checkpoint
//! write hits a full disk, a crash tears a half-written file, a worker
//! panics on one pathological item, a network-backed render flakes once
//! and succeeds on retry. An [`ExecFaultSpec`] reproduces those
//! pathologies *deterministically*: every decision is a pure function
//! of `(seed, site, attempt)`, so a chaos schedule replays bit-for-bit
//! and a retried run can be asserted byte-identical to a clean one.
//!
//! This module is deliberately substrate-free — stages are named by
//! string, items and writes by index — so the supervision layer in
//! `meme-core` can adapt it to its own types without a dependency
//! cycle. The spec answers three questions:
//!
//! * [`ExecFaultSpec::stage_fault`] — should this *stage attempt* panic
//!   or fail transiently?
//! * [`ExecFaultSpec::item_fault`] — should this *item* fail on this
//!   attempt (transiently) or on every attempt (poison)?
//! * [`ExecFaultSpec::write_fault`] — should this *checkpoint write*
//!   fail outright, or be torn (a prefix lands on disk and the fsync
//!   lies)?

use meme_stats::child_seed;

/// What an injected stage-level fault does to one stage attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecStageFault {
    /// No fault; the attempt runs normally.
    Pass,
    /// The stage panics mid-attempt (the supervisor must contain it).
    Panic,
    /// The stage fails with a retryable transient error.
    Transient,
}

/// What an injected item-level fault does to one item on one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecItemFault {
    /// The item processes normally.
    Pass,
    /// The item fails on this attempt but will succeed on a later one.
    Transient,
    /// The item fails on every attempt — a poison item that must be
    /// quarantined, never retried forever.
    Poison,
}

/// What an injected I/O fault does to one checkpoint write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecWriteFault {
    /// The write succeeds.
    Pass,
    /// The write fails with an error (disk full, permission flap).
    Fail,
    /// The write *appears* to succeed but only a prefix reaches disk —
    /// the crash-mid-`write` / lying-fsync case. `keep_fraction` of the
    /// bytes survive.
    Torn {
        /// Fraction of the payload that lands on disk, in `[0, 1]`.
        keep_fraction: f64,
    },
}

/// A stage-level fault rule: the named stage misbehaves on attempts
/// `0..fail_attempts`.
#[derive(Debug, Clone, PartialEq)]
pub struct StageFaultRule {
    /// Stage name (`"hash"`, `"cluster"`, …) or `"*"` for every stage.
    pub stage: String,
    /// `true` → panic; `false` → transient typed error.
    pub panics: bool,
    /// Attempts `0..fail_attempts` are hit; later attempts succeed.
    /// `u32::MAX` makes the fault persistent.
    pub fail_attempts: u32,
}

/// An item-level fault rule: a seeded `fraction` of the named stage's
/// items misbehave.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemFaultRule {
    /// Stage name the rule applies to.
    pub stage: String,
    /// Fraction of items affected, in `[0, 1]` (seeded selection).
    pub fraction: f64,
    /// `None` → poison (fails every attempt). `Some(n)` → transient:
    /// fails on attempts `0..n`, succeeds afterwards.
    pub fail_attempts: Option<u32>,
}

/// A write-level fault rule covering write indices
/// `from_write..to_write` (half-open).
#[derive(Debug, Clone, PartialEq)]
pub struct WriteFaultRule {
    /// First affected write index (writes are counted per medium).
    pub from_write: usize,
    /// One past the last affected write index.
    pub to_write: usize,
    /// The fault applied to writes in range.
    pub fault: ExecWriteFault,
}

/// A deterministic execution-fault schedule.
///
/// Rules are consulted in order; the first matching rule decides.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecFaultSpec {
    /// Seed for all per-item selection draws.
    pub seed: u64,
    /// Stage-level faults (panics, transient stage errors).
    pub stage_faults: Vec<StageFaultRule>,
    /// Item-level faults (transient and poison items).
    pub item_faults: Vec<ItemFaultRule>,
    /// Checkpoint-write faults (failures and torn writes).
    pub write_faults: Vec<WriteFaultRule>,
}

impl ExecFaultSpec {
    /// A schedule that injects nothing.
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Every stage panics on its first attempt, then runs clean — the
    /// canonical containment-plus-retry exercise.
    pub fn panic_once_everywhere(seed: u64) -> Self {
        Self {
            stage_faults: vec![StageFaultRule {
                stage: "*".to_string(),
                panics: true,
                fail_attempts: 1,
            }],
            ..Self::clean(seed)
        }
    }

    /// One stage panics on every attempt — retries must give up with a
    /// typed error, never an abort.
    pub fn persistent_panic(seed: u64, stage: &str) -> Self {
        Self {
            stage_faults: vec![StageFaultRule {
                stage: stage.to_string(),
                panics: true,
                fail_attempts: u32::MAX,
            }],
            ..Self::clean(seed)
        }
    }

    /// One stage fails transiently on attempts `0..failures`.
    pub fn transient_stage(seed: u64, stage: &str, failures: u32) -> Self {
        Self {
            stage_faults: vec![StageFaultRule {
                stage: stage.to_string(),
                panics: false,
                fail_attempts: failures,
            }],
            ..Self::clean(seed)
        }
    }

    /// A seeded `fraction` of a stage's items fail once, then succeed —
    /// the flaky-I/O regime a retry absorbs completely.
    pub fn flaky_items(seed: u64, stage: &str, fraction: f64) -> Self {
        Self {
            item_faults: vec![ItemFaultRule {
                stage: stage.to_string(),
                fraction,
                fail_attempts: Some(1),
            }],
            ..Self::clean(seed)
        }
    }

    /// A seeded `fraction` of a stage's items fail on *every* attempt —
    /// poison that must end up quarantined.
    pub fn poison_items(seed: u64, stage: &str, fraction: f64) -> Self {
        Self {
            item_faults: vec![ItemFaultRule {
                stage: stage.to_string(),
                fraction,
                fail_attempts: None,
            }],
            ..Self::clean(seed)
        }
    }

    /// The first `failures` checkpoint writes fail outright.
    pub fn write_blackout(seed: u64, failures: usize) -> Self {
        Self {
            write_faults: vec![WriteFaultRule {
                from_write: 0,
                to_write: failures,
                fault: ExecWriteFault::Fail,
            }],
            ..Self::clean(seed)
        }
    }

    /// Checkpoint write number `write` is torn: `keep_fraction` of its
    /// bytes land on disk and the write still reports success.
    pub fn torn_write(seed: u64, write: usize, keep_fraction: f64) -> Self {
        Self {
            write_faults: vec![WriteFaultRule {
                from_write: write,
                to_write: write + 1,
                fault: ExecWriteFault::Torn { keep_fraction },
            }],
            ..Self::clean(seed)
        }
    }

    /// Whether this schedule can inject anything at all (lets hot loops
    /// skip per-item consultation when idle).
    pub fn is_active(&self) -> bool {
        !self.stage_faults.is_empty() || !self.item_faults.is_empty()
    }

    /// The fault (if any) for one attempt of the named stage.
    pub fn stage_fault(&self, stage: &str, attempt: u32) -> ExecStageFault {
        for rule in &self.stage_faults {
            if (rule.stage == "*" || rule.stage == stage) && attempt < rule.fail_attempts {
                return if rule.panics {
                    ExecStageFault::Panic
                } else {
                    ExecStageFault::Transient
                };
            }
        }
        ExecStageFault::Pass
    }

    /// The fault (if any) for one item of the named stage on the given
    /// attempt. Selection is a pure function of `(seed, stage, item)`:
    /// the same items are hit on every attempt, which is what makes
    /// transient faults clear on retry and poison faults stick.
    pub fn item_fault(&self, stage: &str, item: usize, attempt: u32) -> ExecItemFault {
        for rule in &self.item_faults {
            if rule.stage != stage && rule.stage != "*" {
                continue;
            }
            if self.item_roll(&rule.stage, stage, item) >= rule.fraction {
                continue;
            }
            return match rule.fail_attempts {
                None => ExecItemFault::Poison,
                Some(n) if attempt < n => ExecItemFault::Transient,
                Some(_) => ExecItemFault::Pass,
            };
        }
        ExecItemFault::Pass
    }

    /// The fault (if any) for checkpoint write number `write`.
    pub fn write_fault(&self, write: usize) -> ExecWriteFault {
        for rule in &self.write_faults {
            if (rule.from_write..rule.to_write).contains(&write) {
                return rule.fault;
            }
        }
        ExecWriteFault::Pass
    }

    /// Uniform draw in `[0, 1)` for `(seed, rule-stage, stage, item)` —
    /// SplitMix64 finalization via [`child_seed`], no RNG state.
    fn item_roll(&self, rule_stage: &str, stage: &str, item: usize) -> f64 {
        let tag = if rule_stage == "*" { stage } else { rule_stage };
        let mut h = self.seed;
        for b in tag.bytes() {
            h = child_seed(h, u64::from(b));
        }
        let bits = child_seed(h, item as u64);
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_spec_injects_nothing() {
        let spec = ExecFaultSpec::clean(7);
        assert!(!spec.is_active());
        assert_eq!(spec.stage_fault("hash", 0), ExecStageFault::Pass);
        assert_eq!(spec.item_fault("hash", 3, 0), ExecItemFault::Pass);
        assert_eq!(spec.write_fault(0), ExecWriteFault::Pass);
    }

    #[test]
    fn panic_once_clears_on_second_attempt() {
        let spec = ExecFaultSpec::panic_once_everywhere(7);
        for stage in ["hash", "cluster", "site", "annotate", "associate"] {
            assert_eq!(spec.stage_fault(stage, 0), ExecStageFault::Panic);
            assert_eq!(spec.stage_fault(stage, 1), ExecStageFault::Pass);
        }
    }

    #[test]
    fn persistent_panic_never_clears() {
        let spec = ExecFaultSpec::persistent_panic(7, "cluster");
        assert_eq!(spec.stage_fault("cluster", 0), ExecStageFault::Panic);
        assert_eq!(spec.stage_fault("cluster", 999), ExecStageFault::Panic);
        assert_eq!(spec.stage_fault("hash", 0), ExecStageFault::Pass);
    }

    #[test]
    fn transient_stage_clears_after_scheduled_failures() {
        let spec = ExecFaultSpec::transient_stage(7, "site", 2);
        assert_eq!(spec.stage_fault("site", 0), ExecStageFault::Transient);
        assert_eq!(spec.stage_fault("site", 1), ExecStageFault::Transient);
        assert_eq!(spec.stage_fault("site", 2), ExecStageFault::Pass);
    }

    #[test]
    fn item_selection_is_deterministic_and_roughly_proportional() {
        let spec = ExecFaultSpec::flaky_items(11, "hash", 0.1);
        let hits: Vec<usize> = (0..10_000)
            .filter(|&i| spec.item_fault("hash", i, 0) == ExecItemFault::Transient)
            .collect();
        let again: Vec<usize> = (0..10_000)
            .filter(|&i| spec.item_fault("hash", i, 0) == ExecItemFault::Transient)
            .collect();
        assert_eq!(hits, again, "selection must be deterministic");
        assert!(
            (500..2_000).contains(&hits.len()),
            "fraction badly off: {} / 10000",
            hits.len()
        );
        // The same items clear on the retry attempt.
        for &i in hits.iter().take(20) {
            assert_eq!(spec.item_fault("hash", i, 1), ExecItemFault::Pass);
        }
        // Other stages are untouched.
        assert_eq!(
            spec.item_fault("associate", hits[0], 0),
            ExecItemFault::Pass
        );
    }

    #[test]
    fn poison_items_never_clear() {
        let spec = ExecFaultSpec::poison_items(13, "hash", 0.05);
        let poisoned: Vec<usize> = (0..2_000)
            .filter(|&i| spec.item_fault("hash", i, 0) == ExecItemFault::Poison)
            .collect();
        assert!(!poisoned.is_empty());
        for &i in &poisoned {
            assert_eq!(spec.item_fault("hash", i, 7), ExecItemFault::Poison);
        }
    }

    #[test]
    fn different_seeds_pick_different_items() {
        let a = ExecFaultSpec::poison_items(1, "hash", 0.05);
        let b = ExecFaultSpec::poison_items(2, "hash", 0.05);
        let pick = |s: &ExecFaultSpec| -> Vec<usize> {
            (0..2_000)
                .filter(|&i| s.item_fault("hash", i, 0) == ExecItemFault::Poison)
                .collect()
        };
        assert_ne!(pick(&a), pick(&b));
    }

    #[test]
    fn write_faults_cover_their_range() {
        let spec = ExecFaultSpec::write_blackout(7, 2);
        assert_eq!(spec.write_fault(0), ExecWriteFault::Fail);
        assert_eq!(spec.write_fault(1), ExecWriteFault::Fail);
        assert_eq!(spec.write_fault(2), ExecWriteFault::Pass);

        let torn = ExecFaultSpec::torn_write(7, 4, 0.5);
        assert_eq!(torn.write_fault(3), ExecWriteFault::Pass);
        assert_eq!(
            torn.write_fault(4),
            ExecWriteFault::Torn { keep_fraction: 0.5 }
        );
        assert_eq!(torn.write_fault(5), ExecWriteFault::Pass);
    }

    #[test]
    fn wildcard_stage_rules_apply_per_stage() {
        let spec = ExecFaultSpec {
            item_faults: vec![ItemFaultRule {
                stage: "*".to_string(),
                fraction: 0.1,
                fail_attempts: None,
            }],
            ..ExecFaultSpec::clean(3)
        };
        // A wildcard rule still seeds per-stage, so the hit sets differ.
        let hash_hits: Vec<usize> = (0..1_000)
            .filter(|&i| spec.item_fault("hash", i, 0) == ExecItemFault::Poison)
            .collect();
        let assoc_hits: Vec<usize> = (0..1_000)
            .filter(|&i| spec.item_fault("associate", i, 0) == ExecItemFault::Poison)
            .collect();
        assert!(!hash_hits.is_empty() && !assoc_hits.is_empty());
        assert_ne!(hash_hits, assoc_hits);
    }
}
