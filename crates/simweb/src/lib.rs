//! Synthetic Web-ecosystem simulator — the data substrate of the
//! reproduction.
//!
//! The original study measured 2.6B posts / 160M images crawled from
//! Twitter, Reddit, 4chan's /pol/, and Gab over 13 months, plus a Know
//! Your Meme crawl. None of that data is available here, so this crate
//! generates a *ground-truth-complete* synthetic equivalent:
//!
//! * [`community`] — the five communities the paper models (/pol/,
//!   Reddit, Twitter, Gab, The_Donald) with posting volumes, image
//!   fractions, subreddit structure, and vote-score models;
//! * [`universe`] — a meme universe: named meme specs with KYM-style
//!   categories and tags (including the racist/political groups),
//!   procedural image templates, and branching variants;
//! * [`cascade`] — ground-truth multivariate Hawkes cascades that decide
//!   when and where each meme variant is posted, with true parent and
//!   root-cause lineage retained;
//! * [`kymgen`] — a synthetic KYM site whose galleries mix true variant
//!   images with social-screenshot noise (exercising the Step-4 filter);
//! * [`dataset`] — the assembled corpus: image posts (lazy-rendered),
//!   per-day post totals, the KYM site, and every ground truth the
//!   evaluation needs.
//!
//! Everything is deterministic given the [`SimConfig`] seed.

#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // weight-matrix loops read clearer with explicit indices
#![warn(missing_docs)]

pub mod cascade;
pub mod community;
pub mod dataset;
pub mod execfault;
pub mod fault;
pub mod kymgen;
pub mod rendercache;
pub mod universe;

pub use cascade::{generate_cascade, CascadeConfig, CascadeEvent};
pub use community::{Community, CommunityProfile, ScreenshotPlatform, SUBREDDITS};
pub use dataset::{
    Dataset, ImageRef, Post, PostTruth, SimConfig, SimConfigError, SimScale, IMAGE_SIZE,
};
pub use execfault::{
    ExecFaultSpec, ExecItemFault, ExecStageFault, ExecWriteFault, ItemFaultRule, StageFaultRule,
    WriteFaultRule,
};
pub use fault::{FaultReport, FaultSpec};
pub use kymgen::{generate_kym, GalleryImage, KymGenConfig, RawKymEntry, RawKymSite};
pub use rendercache::{RenderCache, RenderStats, Rendered};
pub use universe::{MemeGroup, MemeSpec, Universe, UniverseConfig};
