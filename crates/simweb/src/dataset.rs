//! Dataset assembly: the synthetic counterpart of the paper's Table-1
//! corpus.
//!
//! A [`Dataset`] holds every *image post* across the five communities
//! (meme-variant posts from the ground-truth cascades plus one-off
//! image posts), per-day total post counts (the Fig. 8 denominators),
//! and the raw KYM site. Images are **not** materialized — each post
//! carries an [`ImageRef`] that [`Dataset::render_post_image`] expands
//! on demand, matching the paper's own practice ("after computing the
//! pHashes, we delete the images").

use crate::cascade::{generate_cascade, CascadeConfig};
use crate::community::{Community, CommunityProfile, SUBREDDITS};
use crate::kymgen::{generate_kym, GalleryImage, KymGenConfig, RawKymSite};
use crate::universe::{MemeGroup, Universe, UniverseConfig};
use meme_annotate::screenshot::render_screenshot;
use meme_imaging::image::Image;
use meme_imaging::synth::{JitterConfig, TemplateGenome};
use meme_stats::dist::{Categorical, Poisson};
use meme_stats::{child_seed, seeded_rng};
use rand::distr::Distribution;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Render resolution for all synthetic images.
pub const IMAGE_SIZE: usize = 64;

/// What a post's image is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ImageRef {
    /// A meme-variant render.
    MemeVariant {
        /// Meme id in the universe.
        meme: usize,
        /// Variant index.
        variant: usize,
        /// Per-post jitter seed.
        jitter_seed: u64,
    },
    /// A one-off image (DBSCAN noise mass).
    OneOff {
        /// Unique template seed.
        seed: u64,
    },
    /// A social-network screenshot post. Screenshots are posted in
    /// *families* (many re-posts of the same viral screenshot), so they
    /// form the un-annotated clusters the paper observed ("similar
    /// screenshots of social networks posts", §4.1.1) — and they are
    /// what KYM gallery screenshots spuriously match when Step 4 is
    /// disabled.
    Screenshot {
        /// Styled platform.
        platform: crate::community::ScreenshotPlatform,
        /// Family seed: posts sharing it show the same screenshot.
        family_seed: u64,
    },
    /// An all-zero image (fault injection: every blank post hashes to
    /// the same pHash, the pathological duplicate workload that breaks
    /// multi-index hashing's candidate pruning).
    Blank,
}

/// One image post.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Post {
    /// Post id (index into `Dataset::posts`).
    pub id: usize,
    /// Community.
    pub community: Community,
    /// Time in days since dataset start.
    pub t: f64,
    /// Subreddit for Reddit/The_Donald posts (index into
    /// [`SUBREDDITS`]).
    pub subreddit: Option<usize>,
    /// Vote score where the platform has one.
    pub score: Option<i64>,
    /// The image.
    pub image: ImageRef,
    /// Ground truth: the community that root-caused this post
    /// (meme posts only).
    pub true_root: Option<Community>,
}

/// Ground-truth identity of a post's image family, for clustering
/// audits: either a meme or a repeated screenshot family. One-off
/// images have no identity (they are *supposed* to be DBSCAN noise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PostTruth {
    /// The image belongs to a meme (by universe id).
    Meme(usize),
    /// The image is a social-network screenshot. Granularity matches
    /// the paper's human audit: a cluster of assorted post screenshots
    /// is consistently "screenshots", just as two variants of one meme
    /// merging is not a labeling error.
    Screenshot,
}

impl Post {
    /// Ground-truth identity for purity audits ([`PostTruth`]).
    pub fn truth_key(&self) -> Option<PostTruth> {
        match self.image {
            ImageRef::MemeVariant { meme, .. } => Some(PostTruth::Meme(meme)),
            ImageRef::Screenshot { .. } => Some(PostTruth::Screenshot),
            ImageRef::OneOff { .. } | ImageRef::Blank => None,
        }
    }

    /// Ground-truth meme/variant of the post's image, if it is one.
    pub fn true_variant(&self) -> Option<(usize, usize)> {
        match self.image {
            ImageRef::MemeVariant { meme, variant, .. } => Some((meme, variant)),
            ImageRef::OneOff { .. } | ImageRef::Screenshot { .. } | ImageRef::Blank => None,
        }
    }
}

/// Preset dataset scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimScale {
    /// Unit/integration-test scale: a couple thousand images, seconds
    /// end-to-end.
    Tiny,
    /// Example scale: tens of thousands of images, < 1 minute.
    Small,
    /// Evaluation scale for the repro binaries: order 10⁵ images.
    Default,
}

impl SimScale {
    fn universe_config(self) -> UniverseConfig {
        match self {
            SimScale::Tiny => UniverseConfig {
                n_memes: 60,
                rate_scale: 0.06,
                mean_variants: 2.0,
                ..UniverseConfig::default()
            },
            SimScale::Small => UniverseConfig {
                n_memes: 250,
                rate_scale: 0.045,
                ..UniverseConfig::default()
            },
            SimScale::Default => UniverseConfig {
                n_memes: 450,
                rate_scale: 0.05,
                ..UniverseConfig::default()
            },
        }
    }

    fn cascade_config(self) -> CascadeConfig {
        match self {
            SimScale::Tiny => CascadeConfig {
                horizon: 120.0,
                election_day: 60.0,
                debate_day: 45.0,
                ..CascadeConfig::default()
            },
            _ => CascadeConfig::default(),
        }
    }

    /// Multiplier on community total post volume.
    fn volume_factor(self) -> f64 {
        match self {
            SimScale::Tiny => 0.01,
            SimScale::Small => 0.05,
            SimScale::Default => 0.12,
        }
    }

    fn kym_config(self) -> KymGenConfig {
        match self {
            SimScale::Tiny => KymGenConfig {
                images_per_variant: 3.0,
                absent_entries: 5,
                ..KymGenConfig::default()
            },
            _ => KymGenConfig::default(),
        }
    }
}

/// Why a [`SimConfig`] cannot generate a dataset.
///
/// Historically an invalid horizon was only caught deep inside
/// `Dataset::generate` — `horizon <= 0` underflowed `horizon_days - 1`
/// (a panic) and a NaN horizon silently truncated to `horizon_days = 0`
/// via `as usize`. Validation now rejects both up front with a typed
/// error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimConfigError {
    /// `cascade.horizon` must be finite and strictly positive (days).
    InvalidHorizon {
        /// The offending value (NaN survives the round-trip as NaN).
        horizon: f64,
    },
    /// A community has no [`CommunityProfile`] in `profiles`.
    MissingProfile {
        /// The community without a profile.
        community: Community,
    },
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidHorizon { horizon } => write!(
                f,
                "cascade.horizon must be finite and positive, got {horizon}"
            ),
            Self::MissingProfile { community } => {
                write!(f, "no community profile for {}", community.name())
            }
        }
    }
}

impl std::error::Error for SimConfigError {}

/// Full simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Scale preset.
    pub scale: SimScale,
    /// Master seed; everything is a deterministic function of it.
    pub seed: u64,
    /// Universe parameters (derived from the scale, overridable).
    pub universe: UniverseConfig,
    /// Cascade timeline parameters.
    pub cascade: CascadeConfig,
    /// KYM site parameters.
    pub kym: KymGenConfig,
    /// Community profiles.
    pub profiles: Vec<CommunityProfile>,
}

impl SimConfig {
    /// A configuration at the given scale and seed.
    pub fn new(scale: SimScale, seed: u64) -> Self {
        Self {
            scale,
            seed,
            universe: scale.universe_config(),
            cascade: scale.cascade_config(),
            kym: scale.kym_config(),
            profiles: CommunityProfile::defaults(),
        }
    }

    /// Test-scale shortcut.
    pub fn tiny(seed: u64) -> Self {
        Self::new(SimScale::Tiny, seed)
    }

    /// Example-scale shortcut.
    pub fn small(seed: u64) -> Self {
        Self::new(SimScale::Small, seed)
    }

    /// Evaluation-scale shortcut.
    pub fn default_scale(seed: u64) -> Self {
        Self::new(SimScale::Default, seed)
    }

    /// Check the configuration without generating anything.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        let horizon = self.cascade.horizon;
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(SimConfigError::InvalidHorizon { horizon });
        }
        for community in Community::ALL {
            if !self.profiles.iter().any(|p| p.community == community) {
                return Err(SimConfigError::MissingProfile { community });
            }
        }
        Ok(())
    }

    /// Generate the dataset, rejecting an invalid configuration with a
    /// typed error instead of panicking mid-generation.
    pub fn try_generate(&self) -> Result<Dataset, SimConfigError> {
        Dataset::try_generate(self.clone())
    }

    /// Generate the dataset.
    ///
    /// # Panics
    /// Panics when [`validate`](Self::validate) rejects the
    /// configuration; use [`try_generate`](Self::try_generate) for a
    /// typed error.
    pub fn generate(&self) -> Dataset {
        Dataset::generate(self.clone())
    }
}

/// The assembled synthetic corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// The generating configuration.
    pub config: SimConfig,
    /// Observation horizon in whole days.
    pub horizon_days: usize,
    /// Ground-truth meme universe.
    pub universe: Universe,
    /// All image posts, sorted by time.
    pub posts: Vec<Post>,
    /// Total posts (text + image) per community per day:
    /// `daily_totals[community_index][day]`.
    pub daily_totals: Vec<Vec<u64>>,
    /// The raw (unfiltered) synthetic KYM site.
    pub kym_raw: RawKymSite,
}

impl Dataset {
    /// Generate a dataset from a configuration.
    ///
    /// # Panics
    /// Panics when [`SimConfig::validate`] rejects the configuration;
    /// use [`try_generate`](Self::try_generate) for a typed error.
    pub fn generate(config: SimConfig) -> Dataset {
        Self::try_generate(config).expect("invalid SimConfig")
    }

    /// Generate a dataset, returning a typed error for an invalid
    /// configuration (non-finite or non-positive horizon, missing
    /// community profile) instead of panicking mid-generation.
    pub fn try_generate(config: SimConfig) -> Result<Dataset, SimConfigError> {
        config.validate()?;
        let seed = config.seed;
        let universe = Universe::generate(&config.universe, child_seed(seed, 1));
        let kym_raw = generate_kym(&universe, &config.kym, child_seed(seed, 2));
        let horizon = config.cascade.horizon;
        let horizon_days = horizon.ceil() as usize;

        // --- Meme posts from ground-truth cascades.
        let mut posts: Vec<Post> = Vec::new();
        let mut rng = seeded_rng(child_seed(seed, 3));
        let subreddit_weights_political = [30.0, 4.0, 2.0, 8.0, 2.0, 2.5, 6.0, 2.0, 1.5, 1.5];
        let subreddit_weights_racist = [18.0, 4.5, 3.5, 1.0, 3.0, 2.0, 0.5, 1.5, 1.0, 4.0];
        let subreddit_weights_neutral = [10.0, 8.0, 5.0, 1.5, 4.0, 3.0, 1.0, 2.5, 2.0, 1.0];
        let sub_political = Categorical::new(&subreddit_weights_political).expect("valid weights");
        let sub_racist = Categorical::new(&subreddit_weights_racist).expect("valid weights");
        let sub_neutral = Categorical::new(&subreddit_weights_neutral).expect("valid weights");

        let mut jitter_counter = 0u64;
        for spec in &universe.specs {
            let mut cascade_rng = seeded_rng(child_seed(seed, 0xCA5C_0000 + spec.id as u64));
            for variant in 0..spec.variants.len() {
                let events = generate_cascade(spec, variant, &config.cascade, &mut cascade_rng);
                for e in events {
                    jitter_counter += 1;
                    let (community, subreddit) = match e.community {
                        // Reddit-process meme posts land on a subreddit
                        // chosen by meme group; a draw of The_Donald's
                        // slot is re-routed to a general subreddit
                        // because T_D is its own process.
                        Community::Reddit => {
                            let dist = match spec.group {
                                MemeGroup::Political => &sub_political,
                                MemeGroup::Racist => &sub_racist,
                                MemeGroup::Neutral => &sub_neutral,
                            };
                            let mut s = dist.sample(&mut rng);
                            if s == 0 {
                                s = 1 + (spec.id % (SUBREDDITS.len() - 1));
                            }
                            (Community::Reddit, Some(s))
                        }
                        Community::TheDonald => (Community::TheDonald, Some(0)),
                        c => (c, None),
                    };
                    let profile = config
                        .profiles
                        .iter()
                        .find(|p| p.community == community)
                        .expect("profile exists");
                    let score = profile.has_score().then(|| {
                        profile.draw_score(
                            spec.group == MemeGroup::Political,
                            spec.group == MemeGroup::Racist,
                            &mut rng,
                        )
                    });
                    posts.push(Post {
                        id: 0,
                        community,
                        t: e.t,
                        subreddit,
                        score,
                        image: ImageRef::MemeVariant {
                            meme: spec.id,
                            variant,
                            jitter_seed: child_seed(seed, 0x11779 + jitter_counter),
                        },
                        true_root: Some(e.root_community),
                    });
                }
            }
        }

        // --- One-off image posts per community.
        // Indexed by Community::index(); ALL is ordered that way (the
        // debug assertion pins the assumption for future reorderings).
        debug_assert!(Community::ALL
            .iter()
            .enumerate()
            .all(|(i, c)| c.index() == i));
        let meme_counts: Vec<usize> = Community::ALL
            .iter()
            .map(|c| posts.iter().filter(|p| p.community == *c).count())
            .collect();
        let mut oneoff_counter = 0u64;
        for (ci, &community) in Community::ALL.iter().enumerate() {
            let profile = config
                .profiles
                .iter()
                .find(|p| p.community == community)
                .expect("profile exists");
            let n = (meme_counts[ci] as f64 * profile.oneoff_ratio).round() as usize;
            let start = community.start_day();
            for _ in 0..n {
                oneoff_counter += 1;
                let t = start + rng.random::<f64>() * (horizon - start);
                let subreddit = match community {
                    Community::Reddit => Some(1 + rng.random_range(0..SUBREDDITS.len() - 1)),
                    Community::TheDonald => Some(0),
                    _ => None,
                };
                let score = profile
                    .has_score()
                    .then(|| profile.draw_score(false, false, &mut rng));
                posts.push(Post {
                    id: 0,
                    community,
                    t,
                    subreddit,
                    score,
                    image: ImageRef::OneOff {
                        seed: child_seed(seed, 0x0FF_0000 + oneoff_counter),
                    },
                    true_root: None,
                });
            }
        }

        // --- Screenshot-post families on the fringe communities: the
        // paper found clusters of near-identical social-network
        // screenshots among the un-annotated mass.
        let mut family_counter = 0u64;
        for &community in Community::FRINGE.iter() {
            let profile = config
                .profiles
                .iter()
                .find(|p| p.community == community)
                .expect("profile exists");
            let meme_posts = meme_counts[community.index()];
            let n_families =
                ((meme_posts as f64 * profile.screenshot_family_rate).round() as usize).max(1);
            let start = community.start_day();
            for _ in 0..n_families {
                family_counter += 1;
                let family_seed = child_seed(seed, 0x5C_0000 + family_counter);
                let platform = crate::community::ScreenshotPlatform::ALL
                    [rng.random_range(0..crate::community::ScreenshotPlatform::ALL.len())];
                // Family sizes: most are viral enough to clear minPts.
                let copies = 3 + rng.random_range(0..10usize);
                for _ in 0..copies {
                    let t = start + rng.random::<f64>() * (horizon - start);
                    let subreddit = match community {
                        Community::TheDonald => Some(0),
                        _ => None,
                    };
                    let score = profile
                        .has_score()
                        .then(|| profile.draw_score(false, false, &mut rng));
                    posts.push(Post {
                        id: 0,
                        community,
                        t,
                        subreddit,
                        score,
                        image: ImageRef::Screenshot {
                            platform,
                            family_seed,
                        },
                        true_root: None,
                    });
                }
            }
        }

        // Sort by time, assign ids.
        posts.sort_by(|a, b| a.t.partial_cmp(&b.t).expect("finite times"));
        for (i, p) in posts.iter_mut().enumerate() {
            p.id = i;
        }

        // --- Daily totals (text + image posts).
        let mut daily_totals = vec![vec![0u64; horizon_days]; Community::COUNT];
        let mut totals_rng = seeded_rng(child_seed(seed, 4));
        for (ci, &community) in Community::ALL.iter().enumerate() {
            let profile = config
                .profiles
                .iter()
                .find(|p| p.community == community)
                .expect("profile exists");
            let per_day = profile.daily_posts * config.scale.volume_factor();
            let sampler = Poisson::new(per_day.max(0.0)).expect("valid rate");
            for (day, slot) in daily_totals[ci].iter_mut().enumerate() {
                if (day as f64) < community.start_day() {
                    continue;
                }
                *slot = sampler.sample(&mut totals_rng);
            }
        }
        // Totals can never be below the image posts actually emitted.
        for p in &posts {
            let ci = p.community.index();
            let day = (p.t.floor() as usize).min(horizon_days - 1);
            // Count image posts; bump the total if the Poisson draw came
            // in under the realized image volume.
            if daily_totals[ci][day] == 0 {
                daily_totals[ci][day] = 1;
            }
        }
        let mut image_per_day = vec![vec![0u64; horizon_days]; Community::COUNT];
        for p in &posts {
            let day = (p.t.floor() as usize).min(horizon_days - 1);
            image_per_day[p.community.index()][day] += 1;
        }
        for ci in 0..Community::COUNT {
            for day in 0..horizon_days {
                if daily_totals[ci][day] < image_per_day[ci][day] {
                    daily_totals[ci][day] = image_per_day[ci][day];
                }
            }
        }

        Ok(Dataset {
            config,
            horizon_days,
            universe,
            posts,
            daily_totals,
            kym_raw,
        })
    }

    /// Render one post's image.
    pub fn render_post_image(&self, post: &Post) -> Image {
        match post.image {
            ImageRef::MemeVariant {
                meme,
                variant,
                jitter_seed,
            } => {
                let mut rng = seeded_rng(jitter_seed);
                self.universe.specs[meme].variants[variant].render_jittered(
                    IMAGE_SIZE,
                    &JitterConfig::default(),
                    &mut rng,
                )
            }
            ImageRef::OneOff { seed } => TemplateGenome::new(seed).render(IMAGE_SIZE),
            ImageRef::Screenshot {
                platform,
                family_seed,
            } => {
                let mut rng = seeded_rng(family_seed);
                render_screenshot(platform.to_source(), IMAGE_SIZE, &mut rng)
            }
            ImageRef::Blank => Image::filled(IMAGE_SIZE, IMAGE_SIZE, 0.0),
        }
    }

    /// Render one KYM gallery image.
    pub fn render_gallery_image(&self, g: &GalleryImage) -> Image {
        match *g {
            GalleryImage::Variant {
                meme,
                variant,
                jitter_seed,
            } => {
                let mut rng = seeded_rng(jitter_seed);
                self.universe.specs[meme].variants[variant].render_jittered(
                    IMAGE_SIZE,
                    &JitterConfig::default(),
                    &mut rng,
                )
            }
            GalleryImage::Foreign {
                template_seed,
                jitter_seed,
            } => {
                let mut rng = seeded_rng(jitter_seed);
                meme_imaging::synth::VariantGenome::base(TemplateGenome::new(template_seed))
                    .render_jittered(IMAGE_SIZE, &JitterConfig::default(), &mut rng)
            }
            GalleryImage::Screenshot { platform, seed } => {
                let mut rng = seeded_rng(seed);
                render_screenshot(platform, IMAGE_SIZE, &mut rng)
            }
        }
    }

    /// Posts on one community.
    pub fn posts_of(&self, community: Community) -> impl Iterator<Item = &Post> {
        self.posts.iter().filter(move |p| p.community == community)
    }

    /// Total posts per community over the window (Table 1's first
    /// column).
    pub fn total_posts(&self, community: Community) -> u64 {
        self.daily_totals[community.index()].iter().sum()
    }

    /// Observation horizon in days.
    pub fn horizon(&self) -> f64 {
        self.config.cascade.horizon
    }
}

impl CommunityProfile {
    /// Whether this profile's community carries scores (helper so the
    /// generation loop reads naturally).
    fn has_score(&self) -> bool {
        self.community.has_scores()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        SimConfig::tiny(11).generate()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SimConfig::tiny(5).generate();
        let b = SimConfig::tiny(5).generate();
        assert_eq!(a.posts, b.posts);
        assert_eq!(a.daily_totals, b.daily_totals);
    }

    /// Regression: `horizon <= 0` used to underflow `horizon_days - 1`
    /// (a usize panic deep in generation) and a NaN horizon silently
    /// produced `horizon_days = 0` via `as usize`. Both are now typed
    /// validation errors.
    #[test]
    fn degenerate_horizons_are_typed_errors() {
        for horizon in [0.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut config = SimConfig::tiny(1);
            config.cascade.horizon = horizon;
            assert!(
                matches!(
                    config.validate(),
                    Err(SimConfigError::InvalidHorizon { .. })
                ),
                "horizon {horizon} must fail validation"
            );
            assert!(
                config.try_generate().is_err(),
                "horizon {horizon} must not generate"
            );
        }
    }

    #[test]
    fn missing_profile_is_a_typed_error() {
        let mut config = SimConfig::tiny(1);
        config.profiles.retain(|p| p.community != Community::Gab);
        match config.validate() {
            Err(SimConfigError::MissingProfile { community }) => {
                assert_eq!(community, Community::Gab);
            }
            other => panic!("expected MissingProfile, got {other:?}"),
        }
    }

    #[test]
    fn try_generate_matches_generate() {
        let a = SimConfig::tiny(5).try_generate().expect("valid config");
        let b = SimConfig::tiny(5).generate();
        assert_eq!(a.posts, b.posts);
        assert_eq!(a.daily_totals, b.daily_totals);
    }

    #[test]
    fn posts_sorted_with_dense_ids() {
        let d = tiny();
        assert!(!d.posts.is_empty());
        for (i, p) in d.posts.iter().enumerate() {
            assert_eq!(p.id, i);
        }
        for w in d.posts.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
    }

    #[test]
    fn every_community_posts() {
        let d = tiny();
        for c in Community::ALL {
            assert!(d.posts_of(c).count() > 0, "{} has no image posts", c.name());
            assert!(d.total_posts(c) > 0);
        }
    }

    #[test]
    fn volume_ordering_matches_paper() {
        let d = tiny();
        // Total posts: Twitter > Reddit > /pol/ > Gab (Table 1).
        assert!(d.total_posts(Community::Twitter) > d.total_posts(Community::Reddit));
        assert!(d.total_posts(Community::Reddit) > d.total_posts(Community::Pol));
        assert!(d.total_posts(Community::Pol) > d.total_posts(Community::Gab));
    }

    #[test]
    fn scores_only_where_supported() {
        let d = tiny();
        for p in &d.posts {
            assert_eq!(p.score.is_some(), p.community.has_scores());
            match p.community {
                Community::Reddit | Community::TheDonald => {
                    assert!(p.subreddit.is_some())
                }
                _ if p.community == Community::TheDonald => {}
                _ => {}
            }
            if p.community == Community::TheDonald {
                assert_eq!(p.subreddit, Some(0));
            }
            if !matches!(p.community, Community::Reddit | Community::TheDonald) {
                assert!(p.subreddit.is_none());
            }
        }
    }

    #[test]
    fn gab_posts_respect_launch() {
        let d = tiny();
        for p in d.posts_of(Community::Gab) {
            assert!(p.t >= Community::Gab.start_day());
        }
        // Pre-launch days have zero totals.
        let gi = Community::Gab.index();
        for day in 0..(Community::Gab.start_day() as usize) {
            assert_eq!(d.daily_totals[gi][day], 0);
        }
    }

    #[test]
    fn meme_posts_have_roots_oneoffs_do_not() {
        let d = tiny();
        let mut memes = 0;
        let mut oneoffs = 0;
        for p in &d.posts {
            match p.image {
                ImageRef::MemeVariant { .. } => {
                    memes += 1;
                    assert!(p.true_root.is_some());
                    assert!(p.true_variant().is_some());
                }
                ImageRef::OneOff { .. } => {
                    oneoffs += 1;
                    assert!(p.true_root.is_none());
                    assert!(p.true_variant().is_none());
                }
                ImageRef::Screenshot { .. } => {
                    assert!(p.true_root.is_none());
                    assert!(p.true_variant().is_none());
                    assert!(p.community.is_fringe());
                }
                ImageRef::Blank => panic!("generator never emits blank images"),
            }
        }
        assert!(memes > 100, "meme posts {memes}");
        assert!(
            oneoffs > memes,
            "one-offs {oneoffs} must dominate memes {memes}"
        );
    }

    #[test]
    fn daily_totals_cover_image_posts() {
        let d = tiny();
        let mut image_per_day = vec![vec![0u64; d.horizon_days]; Community::COUNT];
        for p in &d.posts {
            let day = (p.t.floor() as usize).min(d.horizon_days - 1);
            image_per_day[p.community.index()][day] += 1;
        }
        for ci in 0..Community::COUNT {
            for day in 0..d.horizon_days {
                assert!(d.daily_totals[ci][day] >= image_per_day[ci][day]);
            }
        }
    }

    #[test]
    fn rendering_works_for_all_ref_kinds() {
        let d = tiny();
        let meme_post = d
            .posts
            .iter()
            .find(|p| matches!(p.image, ImageRef::MemeVariant { .. }))
            .unwrap();
        let oneoff_post = d
            .posts
            .iter()
            .find(|p| matches!(p.image, ImageRef::OneOff { .. }))
            .unwrap();
        for p in [meme_post, oneoff_post] {
            let img = d.render_post_image(p);
            assert_eq!(img.width(), IMAGE_SIZE);
            // Deterministic.
            assert_eq!(img, d.render_post_image(p));
        }
        for g in d.kym_raw.entries[0].images.iter().take(3) {
            let img = d.render_gallery_image(g);
            assert_eq!(img.width(), IMAGE_SIZE);
        }
    }

    #[test]
    fn screenshot_families_repeat_and_render() {
        let d = tiny();
        use std::collections::HashMap;
        let mut families: HashMap<u64, usize> = HashMap::new();
        for p in &d.posts {
            if let ImageRef::Screenshot { family_seed, .. } = p.image {
                *families.entry(family_seed).or_insert(0) += 1;
            }
        }
        assert!(!families.is_empty(), "no screenshot families generated");
        // Families are multi-post (that is what makes them cluster).
        assert!(families.values().any(|&c| c >= 3));
        // Same family renders the identical image.
        let shot = d
            .posts
            .iter()
            .find(|p| matches!(p.image, ImageRef::Screenshot { .. }))
            .unwrap();
        assert_eq!(d.render_post_image(shot), d.render_post_image(shot));
    }

    #[test]
    fn fringe_communities_have_enough_meme_mass_to_cluster() {
        let d = tiny();
        for c in Community::FRINGE {
            let memes = d
                .posts_of(c)
                .filter(|p| matches!(p.image, ImageRef::MemeVariant { .. }))
                .count();
            assert!(memes > 20, "{}: only {memes} meme posts", c.name());
        }
    }
}
