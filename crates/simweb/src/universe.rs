//! The ground-truth meme universe.
//!
//! Every image the simulator posts descends from a [`MemeSpec`]: a named
//! meme (or person/event/site/culture entry, mirroring KYM's categories)
//! with a procedural image template, a set of structural variants (the
//! future DBSCAN clusters), per-community affinities, and a ground-truth
//! Hawkes model governing its spread. The catalog seeds the most
//! prominent entries from the paper's Tables 3–5 so the reproduced
//! tables read like the originals; synthetic filler specs provide the
//! long tail, including the *uncatalogued* cluster mass (the paper
//! found only 13%–24% of fringe clusters carry KYM annotations).

use crate::community::Community;
use meme_annotate::kym::KymCategory;
use meme_hawkes::HawkesModel;
use meme_imaging::synth::{TemplateGenome, VariantGenome};
use meme_stats::dist::{Dirichlet, Zipf};
use meme_stats::{child_seed, seeded_rng};
use rand::distr::Distribution;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// The paper's two high-level meme groups plus everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemeGroup {
    /// Tagged racist/antisemitic (4.4% of memes in the paper).
    Racist,
    /// Politics-related (21.2%).
    Political,
    /// Everything else.
    Neutral,
}

/// A named catalog row: the curated part of the universe.
struct CatalogRow {
    name: &'static str,
    category: KymCategory,
    tags: &'static [&'static str],
    origin: &'static str,
    group: MemeGroup,
    /// Whether the meme is mainstream-flavoured (Twitter/Reddit native)
    /// rather than fringe-flavoured.
    mainstream: bool,
}

/// Curated entries drawn from Tables 3–5 of the paper.
const CATALOG: &[CatalogRow] = &[
    // --- Frog family and fringe memes.
    CatalogRow {
        name: "Feels Bad Man/Sad Frog",
        category: KymCategory::Meme,
        tags: &["frog", "pepe"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Smug Frog",
        category: KymCategory::Meme,
        tags: &["frog", "pepe"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Pepe the Frog",
        category: KymCategory::Meme,
        tags: &["frog", "pepe"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Apu Apustaja",
        category: KymCategory::Meme,
        tags: &["frog", "pepe"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Angry Pepe",
        category: KymCategory::Meme,
        tags: &["frog", "pepe"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Happy Merchant",
        category: KymCategory::Meme,
        tags: &["antisemitism"],
        origin: "4chan",
        group: MemeGroup::Racist,
        mainstream: false,
    },
    CatalogRow {
        name: "A. Wyatt Mann",
        category: KymCategory::Meme,
        tags: &["racism"],
        origin: "4chan",
        group: MemeGroup::Racist,
        mainstream: false,
    },
    CatalogRow {
        name: "Serbia Strong/Remove Kebab",
        category: KymCategory::Meme,
        tags: &["racism"],
        origin: "Youtube",
        group: MemeGroup::Racist,
        mainstream: false,
    },
    CatalogRow {
        name: "Cult of Kek",
        category: KymCategory::Meme,
        tags: &["frog", "pepe"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Bait This Is Bait",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "I Know That Feel Bro",
        category: KymCategory::Meme,
        tags: &["wojak"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Wojak/Feels Guy",
        category: KymCategory::Meme,
        tags: &["wojak"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Spurdo Sparde",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Dubs Guy/Check'em",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Counter Signal Memes",
        category: KymCategory::Meme,
        tags: &["politics"],
        origin: "4chan",
        group: MemeGroup::Political,
        mainstream: false,
    },
    CatalogRow {
        name: "Computer Reaction Faces",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Reaction Images",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Absolutely Disgusting",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "Unknown",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Laughing Tom Cruise",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "Unknown",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Awoo",
        category: KymCategory::Meme,
        tags: &["anime"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Doom Paul It's Happening",
        category: KymCategory::Meme,
        tags: &["politics"],
        origin: "4chan",
        group: MemeGroup::Political,
        mainstream: false,
    },
    // --- Political memes.
    CatalogRow {
        name: "Make America Great Again",
        category: KymCategory::Meme,
        tags: &["trump", "politics"],
        origin: "Twitter",
        group: MemeGroup::Political,
        mainstream: false,
    },
    CatalogRow {
        name: "Clinton Trump Duet",
        category: KymCategory::Meme,
        tags: &["clinton", "trump"],
        origin: "Twitter",
        group: MemeGroup::Political,
        mainstream: true,
    },
    CatalogRow {
        name: "Donald Trump's Wall",
        category: KymCategory::Meme,
        tags: &["trump", "politics"],
        origin: "Reddit",
        group: MemeGroup::Political,
        mainstream: false,
    },
    CatalogRow {
        name: "Jesusland",
        category: KymCategory::Meme,
        tags: &["politics"],
        origin: "Unknown",
        group: MemeGroup::Political,
        mainstream: false,
    },
    CatalogRow {
        name: "Based Stickman",
        category: KymCategory::Meme,
        tags: &["politics"],
        origin: "Twitter",
        group: MemeGroup::Political,
        mainstream: false,
    },
    CatalogRow {
        name: "Picardia",
        category: KymCategory::Meme,
        tags: &["politics"],
        origin: "Unknown",
        group: MemeGroup::Political,
        mainstream: false,
    },
    CatalogRow {
        name: "Kekistan",
        category: KymCategory::Meme,
        tags: &["politics"],
        origin: "4chan",
        group: MemeGroup::Political,
        mainstream: false,
    },
    // --- Mainstream memes.
    CatalogRow {
        name: "Roll Safe",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "Twitter",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Evil Kermit",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "Twitter",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Arthur's Fist",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "Twitter",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Nut Button",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "Twitter",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Spongebob Mock",
        category: KymCategory::Meme,
        tags: &["spongebob"],
        origin: "Twitter",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Expanding Brain",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "Reddit",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Manning Face",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "Reddit",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "That's the Joke",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "Reddit",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Confession Bear",
        category: KymCategory::Meme,
        tags: &["advice animal"],
        origin: "Reddit",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "This is Fine",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "Reddit",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Demotivational Posters",
        category: KymCategory::Meme,
        tags: &["image macro"],
        origin: "Unknown",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Rage Guy",
        category: KymCategory::Meme,
        tags: &["rage comics"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Conceited Reaction",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "Twitter",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Salt Bae",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "Twitter",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Harambe the Gorilla",
        category: KymCategory::Meme,
        tags: &["reaction"],
        origin: "Reddit",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    // --- People (Table 5).
    CatalogRow {
        name: "Donald Trump",
        category: KymCategory::Person,
        tags: &["trump", "politics"],
        origin: "Unknown",
        group: MemeGroup::Political,
        mainstream: false,
    },
    CatalogRow {
        name: "Adolf Hitler",
        category: KymCategory::Person,
        tags: &["racism", "politics"],
        origin: "Unknown",
        group: MemeGroup::Racist,
        mainstream: false,
    },
    CatalogRow {
        name: "Hillary Clinton",
        category: KymCategory::Person,
        tags: &["clinton", "politics"],
        origin: "Unknown",
        group: MemeGroup::Political,
        mainstream: true,
    },
    CatalogRow {
        name: "Bernie Sanders",
        category: KymCategory::Person,
        tags: &["politics"],
        origin: "Unknown",
        group: MemeGroup::Political,
        mainstream: true,
    },
    CatalogRow {
        name: "Vladimir Putin",
        category: KymCategory::Person,
        tags: &["politics"],
        origin: "Unknown",
        group: MemeGroup::Political,
        mainstream: false,
    },
    CatalogRow {
        name: "Barack Obama",
        category: KymCategory::Person,
        tags: &["politics"],
        origin: "Unknown",
        group: MemeGroup::Political,
        mainstream: true,
    },
    CatalogRow {
        name: "Kim Jong Un",
        category: KymCategory::Person,
        tags: &["politics"],
        origin: "Unknown",
        group: MemeGroup::Political,
        mainstream: true,
    },
    CatalogRow {
        name: "Mitt Romney",
        category: KymCategory::Person,
        tags: &["politics"],
        origin: "Unknown",
        group: MemeGroup::Political,
        mainstream: false,
    },
    CatalogRow {
        name: "Bill Nye",
        category: KymCategory::Person,
        tags: &["science"],
        origin: "Unknown",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Chelsea Manning",
        category: KymCategory::Person,
        tags: &["politics"],
        origin: "Unknown",
        group: MemeGroup::Political,
        mainstream: true,
    },
    // --- Events.
    CatalogRow {
        name: "#CNNBlackmail",
        category: KymCategory::Event,
        tags: &["politics", "trump"],
        origin: "Reddit",
        group: MemeGroup::Political,
        mainstream: false,
    },
    CatalogRow {
        name: "2016 US Election",
        category: KymCategory::Event,
        tags: &["politics", "presidential election"],
        origin: "Unknown",
        group: MemeGroup::Political,
        mainstream: false,
    },
    CatalogRow {
        name: "Brexit",
        category: KymCategory::Event,
        tags: &["politics"],
        origin: "Twitter",
        group: MemeGroup::Political,
        mainstream: true,
    },
    CatalogRow {
        name: "#TrumpAnime/Rick Wilson",
        category: KymCategory::Event,
        tags: &["politics", "trump"],
        origin: "Twitter",
        group: MemeGroup::Political,
        mainstream: false,
    },
    CatalogRow {
        name: "Gamergate",
        category: KymCategory::Event,
        tags: &["controversy"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    // --- Sites.
    CatalogRow {
        name: "/pol/",
        category: KymCategory::Site,
        tags: &["4chan"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Know Your Meme",
        category: KymCategory::Site,
        tags: &["meme database"],
        origin: "Unknown",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Tumblr",
        category: KymCategory::Site,
        tags: &["social network"],
        origin: "Tumblr",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    // --- Cultures & subcultures.
    CatalogRow {
        name: "Alt-Right",
        category: KymCategory::Culture,
        tags: &["politics", "racism"],
        origin: "4chan",
        group: MemeGroup::Racist,
        mainstream: false,
    },
    CatalogRow {
        name: "Feminism",
        category: KymCategory::Culture,
        tags: &["politics"],
        origin: "Tumblr",
        group: MemeGroup::Political,
        mainstream: true,
    },
    CatalogRow {
        name: "Trolling",
        category: KymCategory::Culture,
        tags: &["behavior"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "Rage Comics",
        category: KymCategory::Subculture,
        tags: &["comics"],
        origin: "4chan",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Spongebob Squarepants",
        category: KymCategory::Subculture,
        tags: &["cartoon"],
        origin: "Youtube",
        group: MemeGroup::Neutral,
        mainstream: true,
    },
    CatalogRow {
        name: "Warhammer 40000",
        category: KymCategory::Subculture,
        tags: &["games"],
        origin: "Unknown",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
    CatalogRow {
        name: "rwby",
        category: KymCategory::Subculture,
        tags: &["anime"],
        origin: "Youtube",
        group: MemeGroup::Neutral,
        mainstream: false,
    },
];

/// A fully specified meme (or meme-like image family).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemeSpec {
    /// Universe-wide meme id.
    pub id: usize,
    /// Display name.
    pub name: String,
    /// KYM category (drives Tables 3–5 splits).
    pub category: KymCategory,
    /// KYM-style tags (drive the racist/political grouping).
    pub tags: Vec<String>,
    /// Platform of origin (Fig. 4c).
    pub origin: String,
    /// High-level group.
    pub group: MemeGroup,
    /// Whether the synthetic KYM site has an entry for this meme.
    /// Uncatalogued specs become the paper's un-annotated clusters.
    pub catalogued: bool,
    /// People referenced (for the custom metric's `people` feature).
    pub people: Vec<String>,
    /// Cultures referenced (for the `culture` feature).
    pub cultures: Vec<String>,
    /// Image template.
    pub template: TemplateGenome,
    /// Structural variants — each is a ground-truth cluster.
    pub variants: Vec<VariantGenome>,
    /// Relative share of the meme's posts carried by each variant.
    pub variant_shares: Vec<f64>,
    /// Popularity weight (Zipf mass).
    pub popularity: f64,
    /// Per-community background-rate multipliers.
    pub affinity: [f64; Community::COUNT],
    /// Ground-truth Hawkes model for this meme's spread (per-variant
    /// background rates are `mu * variant_share`).
    pub hawkes: HawkesModel,
}

impl MemeSpec {
    /// Whether the spec is in the paper's politics group.
    pub fn is_political(&self) -> bool {
        self.group == MemeGroup::Political
    }

    /// Whether the spec is in the paper's racism group.
    pub fn is_racist(&self) -> bool {
        self.group == MemeGroup::Racist
    }
}

/// Universe generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniverseConfig {
    /// Total number of meme specs (curated catalog + synthetic filler).
    pub n_memes: usize,
    /// Fraction of *filler* specs that get KYM entries (curated specs
    /// always do). Tuned so annotated-cluster coverage lands in the
    /// paper's 13%–24% band.
    pub filler_catalogued_fraction: f64,
    /// Zipf exponent for meme popularity.
    pub popularity_exponent: f64,
    /// Mean number of variants per meme (popular memes get more).
    pub mean_variants: f64,
    /// Overall Hawkes background scale (events/day for an
    /// average-popularity meme in its best community).
    pub rate_scale: f64,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        Self {
            n_memes: 450,
            filler_catalogued_fraction: 0.08,
            popularity_exponent: 1.05,
            mean_variants: 3.0,
            rate_scale: 0.05,
        }
    }
}

/// The generated meme universe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Universe {
    /// All meme specs, `specs[i].id == i`.
    pub specs: Vec<MemeSpec>,
}

impl Universe {
    /// Generate a universe deterministically from a seed.
    pub fn generate(config: &UniverseConfig, seed: u64) -> Self {
        assert!(config.n_memes > 0, "need at least one meme");
        let mut rng = seeded_rng(child_seed(seed, 0x0111));
        // Only a slice of the universe is curated/catalogued: the paper
        // found that just 13%-24% of fringe clusters match any KYM
        // entry — most clusters are recurring-but-undocumented image
        // families. Curated specs take the head of the popularity Zipf;
        // filler specs get moderate uniform popularity so they form real
        // clusters (the un-annotated mass) rather than noise.
        let curated_count = CATALOG.len().min((config.n_memes / 8).max(8));
        let zipf =
            Zipf::new(curated_count, config.popularity_exponent).expect("valid Zipf parameters");
        let catalog_order = catalog_priority_order();

        let mut specs = Vec::with_capacity(config.n_memes);
        for id in 0..config.n_memes {
            let curated = id < curated_count;
            let (name, category, tags, origin, group, mainstream, catalogued) = if curated {
                let row = &CATALOG[catalog_order[id]];
                (
                    row.name.to_string(),
                    row.category,
                    row.tags.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
                    row.origin.to_string(),
                    row.group,
                    row.mainstream,
                    true,
                )
            } else {
                // Synthetic filler: mostly neutral one-community image
                // families (the "miscellaneous images unrelated to
                // memes" the paper found in un-annotated clusters).
                let group = match rng.random_range(0..100u32) {
                    0..=3 => MemeGroup::Racist,
                    4..=20 => MemeGroup::Political,
                    _ => MemeGroup::Neutral,
                };
                let mainstream = rng.random_bool(0.35);
                let catalogued = rng.random_bool(config.filler_catalogued_fraction);
                // Catalogued filler entries follow Fig. 4a's category mix
                // (memes 57%, subcultures 30%, the rest split among
                // cultures/events/sites/people); uncatalogued image
                // families have no KYM identity so stay plain memes.
                let category = if catalogued {
                    match rng.random_range(0..100u32) {
                        0..=56 => KymCategory::Meme,
                        57..=86 => KymCategory::Subculture,
                        87..=89 => KymCategory::Culture,
                        90..=93 => KymCategory::Event,
                        94..=96 => KymCategory::Site,
                        _ => KymCategory::Person,
                    }
                } else {
                    KymCategory::Meme
                };
                let noun = match category {
                    KymCategory::Meme => "Meme",
                    KymCategory::Subculture => "Subculture",
                    KymCategory::Culture => "Culture",
                    KymCategory::Event => "Event",
                    KymCategory::Site => "Site",
                    KymCategory::Person => "Person",
                };
                (
                    format!("Synthetic {noun} #{id}"),
                    category,
                    vec![match group {
                        MemeGroup::Racist => "racism".to_string(),
                        MemeGroup::Political => "politics".to_string(),
                        MemeGroup::Neutral => "misc".to_string(),
                    }],
                    "Unknown".to_string(),
                    group,
                    mainstream,
                    catalogued,
                )
            };

            let popularity = if curated {
                // The hits: Zipf mass scaled so the head dominates.
                (zipf.pmf(id + 1) * curated_count as f64 * 1.2).max(0.7)
            } else {
                rng.random_range(0.3..1.0)
            };
            let affinity = affinity_for(group, mainstream, &mut rng);

            // Variant count grows with popularity.
            let n_variants = (1.0
                + (config.mean_variants - 1.0) * popularity.min(4.0)
                + rng.random_range(0.0..1.0))
            .round()
            .clamp(1.0, 12.0) as usize;
            let template = TemplateGenome::new(child_seed(seed, 0xBEEF + id as u64));
            let mut variants = Vec::with_capacity(n_variants);
            for v in 0..n_variants {
                if v == 0 {
                    variants.push(VariantGenome::base(template));
                } else {
                    variants.push(VariantGenome::random(
                        template,
                        child_seed(seed, (id as u64) << 8 | v as u64),
                        1 + v % 2,
                    ));
                }
            }
            let shares = if n_variants == 1 {
                vec![1.0]
            } else {
                Dirichlet::symmetric(n_variants, 1.2)
                    .expect("n_variants >= 2")
                    .sample(&mut rng)
            };

            let hawkes = hawkes_for(group, &affinity, popularity, config.rate_scale, &mut rng);

            let people = match category {
                KymCategory::Person => vec![name.clone()],
                _ if group == MemeGroup::Political && rng.random_bool(0.4) => {
                    vec!["Donald Trump".to_string()]
                }
                _ => vec![],
            };
            let cultures = match group {
                MemeGroup::Racist => vec!["Alt-Right".to_string()],
                MemeGroup::Political if rng.random_bool(0.3) => {
                    vec!["Alt-Right".to_string()]
                }
                _ if tags.iter().any(|t| t == "frog" || t == "pepe") => {
                    vec!["Frog Memes".to_string()]
                }
                _ => vec![],
            };

            specs.push(MemeSpec {
                id,
                name,
                category,
                tags,
                origin,
                group,
                catalogued,
                people,
                cultures,
                template,
                variants,
                variant_shares: shares,
                popularity,
                affinity,
                hawkes,
            });
        }
        Self { specs }
    }

    /// Number of specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Total ground-truth clusters (variants across all specs).
    pub fn total_variants(&self) -> usize {
        self.specs.iter().map(|s| s.variants.len()).sum()
    }
}

/// Order in which catalog rows enter small universes: the paper's most
/// prominent entries (across all six categories) first, so that even a
/// test-scale universe exercises Tables 3–5.
fn catalog_priority_order() -> Vec<usize> {
    const HEAD: [&str; 18] = [
        "Donald Trump",
        "Feels Bad Man/Sad Frog",
        "Smug Frog",
        "Happy Merchant",
        "Make America Great Again",
        "Pepe the Frog",
        "Roll Safe",
        "Adolf Hitler",
        "2016 US Election",
        "Evil Kermit",
        "Manning Face",
        "Apu Apustaja",
        "Hillary Clinton",
        "Alt-Right",
        "That's the Joke",
        "Angry Pepe",
        "Bernie Sanders",
        "#CNNBlackmail",
    ];
    let mut order: Vec<usize> = HEAD
        .iter()
        .map(|name| {
            CATALOG
                .iter()
                .position(|row| row.name == *name)
                .expect("priority head names exist in the catalog")
        })
        .collect();
    for (i, _) in CATALOG.iter().enumerate() {
        if !order.contains(&i) {
            order.push(i);
        }
    }
    order
}

/// Per-community affinity multipliers for a meme group, with jitter.
/// These encode the paper's popularity findings: racist memes
/// concentrate on /pol/ and Gab; political memes peak on The_Donald and
/// /pol/; mainstream "fun" memes live on Twitter and Reddit.
fn affinity_for(
    group: MemeGroup,
    mainstream: bool,
    rng: &mut meme_stats::WsRng,
) -> [f64; Community::COUNT] {
    // Order: Pol, Reddit, Twitter, Gab, TheDonald. Calibrated so the
    // emergent image volumes reproduce Table 1's ordering
    // (Twitter > Reddit > /pol/ > T_D > Gab) while racist/political
    // concentration matches Tables 3-5.
    let base = match (group, mainstream) {
        (MemeGroup::Racist, _) => [3.0, 0.15, 0.12, 0.5, 0.35],
        (MemeGroup::Political, false) => [1.8, 0.6, 0.6, 0.3, 1.1],
        (MemeGroup::Political, true) => [0.8, 1.2, 1.4, 0.2, 0.8],
        (MemeGroup::Neutral, false) => [2.2, 0.5, 0.4, 0.22, 0.5],
        (MemeGroup::Neutral, true) => [0.3, 1.5, 2.4, 0.08, 0.3],
    };
    let mut out = [0.0; Community::COUNT];
    for (o, b) in out.iter_mut().zip(base) {
        *o = b * rng.random_range(0.7..1.3);
    }
    out
}

/// Build the ground-truth Hawkes model for one meme.
///
/// The weight regime encodes the paper's §5.2 headline: /pol/ posts
/// enormous volume but each post spawns little abroad (least efficient);
/// The_Donald posts little but each post spawns the most elsewhere
/// (most efficient).
fn hawkes_for(
    group: MemeGroup,
    affinity: &[f64; Community::COUNT],
    popularity: f64,
    rate_scale: f64,
    rng: &mut meme_stats::WsRng,
) -> HawkesModel {
    // Rows src -> dst in order Pol, Reddit, Twitter, Gab, TheDonald.
    let mut w = [
        [0.30, 0.010, 0.010, 0.006, 0.009],
        [0.030, 0.33, 0.060, 0.010, 0.020],
        [0.020, 0.035, 0.30, 0.008, 0.012],
        [0.020, 0.020, 0.012, 0.25, 0.012],
        [0.095, 0.150, 0.080, 0.045, 0.30],
    ];
    match group {
        MemeGroup::Racist => {
            // /pol/ spreads racist memes harder (Fig. 13).
            for dst in 1..Community::COUNT {
                w[0][dst] *= 1.8;
            }
            // The_Donald spreads racist memes less than non-racist.
            for dst in 0..Community::COUNT {
                if dst != 4 {
                    w[4][dst] *= 0.5;
                }
            }
        }
        MemeGroup::Political => {
            // Political memes travel better everywhere, /pol/ and T_D
            // most (Fig. 14).
            for dst in 1..Community::COUNT {
                w[0][dst] *= 1.6;
            }
            for dst in 0..Community::COUNT {
                if dst != 4 {
                    w[4][dst] *= 1.3;
                }
            }
        }
        MemeGroup::Neutral => {}
    }
    // Per-meme jitter.
    let w: Vec<Vec<f64>> = w
        .iter()
        .map(|row| {
            row.iter()
                .map(|x| x * rng.random_range(0.75..1.25))
                .collect()
        })
        .collect();
    let mu: Vec<f64> = affinity
        .iter()
        .map(|a| rate_scale * popularity * a)
        .collect();
    let model = HawkesModel::new(mu, w, 3.0).expect("generated parameters are valid");
    debug_assert!(model.is_stationary(), "ground-truth models must be stable");
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Universe {
        Universe::generate(
            &UniverseConfig {
                n_memes: 80,
                ..UniverseConfig::default()
            },
            42,
        )
    }

    #[test]
    fn deterministic_generation() {
        let cfg = UniverseConfig {
            n_memes: 75,
            ..UniverseConfig::default()
        };
        assert_eq!(Universe::generate(&cfg, 1), Universe::generate(&cfg, 1));
    }

    #[test]
    fn curated_catalog_is_preserved() {
        let u = small();
        assert_eq!(u.specs[0].name, "Donald Trump");
        let trump = &u.specs[0];
        assert_eq!(trump.category, KymCategory::Person);
        assert!(trump.is_political());
        let merchant = u.specs.iter().find(|s| s.name == "Happy Merchant").unwrap();
        assert!(merchant.is_racist());
        assert!(merchant.catalogued);
        // The priority head covers multiple KYM categories even in a
        // small universe.
        let curated: Vec<_> = u
            .specs
            .iter()
            .filter(|s| !s.name.starts_with("Synthetic"))
            .collect();
        assert!(curated.iter().any(|s| s.category == KymCategory::Person));
        assert!(curated.iter().any(|s| s.category == KymCategory::Meme));
        assert!(curated.iter().any(|s| s.category == KymCategory::Event));
    }

    #[test]
    fn ids_match_positions() {
        let u = small();
        for (i, s) in u.specs.iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }

    #[test]
    fn all_ground_truth_models_are_stationary() {
        let u = small();
        for s in &u.specs {
            assert!(s.hawkes.is_stationary(), "meme {} is supercritical", s.name);
            assert_eq!(s.hawkes.k(), Community::COUNT);
        }
    }

    #[test]
    fn variant_shares_are_distributions() {
        let u = small();
        for s in &u.specs {
            assert_eq!(s.variants.len(), s.variant_shares.len());
            let total: f64 = s.variant_shares.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: {total}", s.name);
        }
    }

    #[test]
    fn racist_memes_prefer_fringe() {
        let u = small();
        for s in u.specs.iter().filter(|s| s.is_racist()) {
            let pol = s.affinity[Community::Pol.index()];
            let twitter = s.affinity[Community::Twitter.index()];
            let gab = s.affinity[Community::Gab.index()];
            assert!(pol > twitter * 3.0, "{}", s.name);
            assert!(gab > twitter, "{}", s.name);
        }
    }

    #[test]
    fn the_donald_is_most_externally_efficient() {
        // Per-event external offspring: T_D row sum (off-diagonal) must
        // beat /pol/'s in every generated model for neutral/political
        // memes.
        let u = small();
        for s in &u.specs {
            if s.is_racist() {
                continue; // racist T_D weights are deliberately damped
            }
            let ext = |src: usize| -> f64 {
                (0..Community::COUNT)
                    .filter(|d| *d != src)
                    .map(|d| s.hawkes.w[src][d])
                    .sum()
            };
            assert!(
                ext(Community::TheDonald.index()) > ext(Community::Pol.index()),
                "{}: T_D {} vs pol {}",
                s.name,
                ext(4),
                ext(0)
            );
        }
    }

    #[test]
    fn most_specs_are_uncatalogued() {
        // Table 2: only 13%-24% of clusters carry KYM annotations — the
        // universe must be dominated by undocumented image families.
        let u = Universe::generate(
            &UniverseConfig {
                n_memes: 300,
                ..UniverseConfig::default()
            },
            9,
        );
        let catalogued = u.specs.iter().filter(|s| s.catalogued).count();
        let frac = catalogued as f64 / u.specs.len() as f64;
        assert!(frac < 0.4, "catalogued spec fraction {frac}");
        assert!(frac > 0.05, "catalogued spec fraction {frac}");
    }

    #[test]
    fn curated_head_dominates_popularity() {
        let u = small();
        let max_filler = u
            .specs
            .iter()
            .filter(|s| s.name.starts_with("Synthetic"))
            .map(|s| s.popularity)
            .fold(0.0f64, f64::max);
        assert!(u.specs[0].popularity > max_filler);
        assert!(u.total_variants() >= u.len());
    }
}
