//! Cross-crate integration below the pipeline level: hashing ↔ index ↔
//! clustering agreement, Hawkes fit ↔ attribution ↔ residuals, and the
//! custom metric over real annotation output.

use origins_of_memes::annotate::annotator::annotate_clusters;
use origins_of_memes::annotate::kym::{KymCategory, KymEntry, KymSite};
use origins_of_memes::cluster::dbscan::{dbscan_with_index, DbscanParams};
use origins_of_memes::core::metric::{ClusterDescriptor, ClusterDistance};
use origins_of_memes::hawkes::{
    fit_em, residual_analysis, simulate_branching, strip_lineage, EmConfig, HawkesModel,
};
use origins_of_memes::imaging::synth::{JitterConfig, TemplateGenome, VariantGenome};
use origins_of_memes::index::{BruteForceIndex, HammingIndex, MihIndex};
use origins_of_memes::phash::{ImageHasher, PHash, PerceptualHasher};
use origins_of_memes::stats::seeded_rng;

/// Render a small synthetic corpus: `n_memes` templates, two variants
/// each, several jittered posts per variant, plus one-off noise.
fn corpus(n_memes: u64, posts_per_variant: usize, seed: u64) -> (Vec<PHash>, Vec<Option<u64>>) {
    let hasher = PerceptualHasher::new();
    let mut rng = seeded_rng(seed);
    let mut hashes = Vec::new();
    let mut truth = Vec::new();
    for m in 0..n_memes {
        let template = TemplateGenome::new(1000 + m);
        for v in 0..2u64 {
            let variant = if v == 0 {
                VariantGenome::base(template)
            } else {
                VariantGenome::random(template, m * 7 + v, 1)
            };
            for _ in 0..posts_per_variant {
                let img = variant.render_jittered(64, &JitterConfig::default(), &mut rng);
                hashes.push(hasher.hash(&img));
                truth.push(Some(m));
            }
        }
    }
    // One-off noise images.
    for k in 0..(n_memes * posts_per_variant as u64) {
        let img = TemplateGenome::new(500_000 + k).render(64);
        hashes.push(hasher.hash(&img));
        truth.push(None);
    }
    (hashes, truth)
}

#[test]
fn image_to_cluster_roundtrip_recovers_memes() {
    let (hashes, truth) = corpus(8, 8, 1);
    let index = MihIndex::new(hashes.clone(), 8);
    let clustering = dbscan_with_index(&index, DbscanParams::default(), 0);
    // Every meme should yield at least one cluster; noise should be
    // mostly the one-off images.
    assert!(
        clustering.n_clusters() >= 8,
        "{} clusters",
        clustering.n_clusters()
    );
    let purity = origins_of_memes::cluster::purity::majority_purity(&clustering, &truth);
    assert!(purity > 0.97, "purity {purity}");
    // Most one-offs are noise.
    let noise_oneoffs = clustering
        .labels()
        .iter()
        .zip(&truth)
        .filter(|(l, t)| l.is_none() && t.is_none())
        .count();
    let total_oneoffs = truth.iter().filter(|t| t.is_none()).count();
    assert!(
        noise_oneoffs as f64 / total_oneoffs as f64 > 0.95,
        "{noise_oneoffs}/{total_oneoffs} one-offs are noise"
    );
}

#[test]
fn index_engines_agree_on_real_hashes() {
    let (hashes, _) = corpus(5, 6, 2);
    let brute = BruteForceIndex::new(hashes.clone());
    let mih = MihIndex::new(hashes.clone(), 8);
    for (i, &h) in hashes.iter().enumerate().step_by(7) {
        assert_eq!(
            brute.radius_query(h, 8),
            mih.radius_query(h, 8),
            "query {i}"
        );
    }
}

#[test]
fn annotation_over_rendered_galleries() {
    // Build a KYM site from rendered gallery hashes and check medoid
    // matching end to end without the simulator.
    let hasher = PerceptualHasher::new();
    let mut rng = seeded_rng(3);
    let template = TemplateGenome::new(77);
    let variant = VariantGenome::base(template);
    let gallery: Vec<PHash> = (0..6)
        .map(|_| hasher.hash(&variant.render_jittered(64, &JitterConfig::default(), &mut rng)))
        .collect();
    let site = KymSite::new(vec![KymEntry {
        id: 0,
        name: "Test Frog".into(),
        category: KymCategory::Meme,
        tags: vec!["frog".into()],
        origin: "4chan".into(),
        gallery,
        people: vec![],
        cultures: vec![],
    }]);
    let medoid = hasher.hash(&variant.render(64));
    let anns = annotate_clusters(&[medoid], &site, 8);
    assert!(anns[0].is_annotated(), "medoid should match its gallery");
    assert_eq!(anns[0].representative, Some(0));

    // A different template must not match.
    let other = hasher.hash(&TemplateGenome::new(40_404).render(64));
    let anns = annotate_clusters(&[other], &site, 8);
    assert!(!anns[0].is_annotated());
}

#[test]
fn hawkes_fit_passes_residual_diagnostics() {
    let truth =
        HawkesModel::new(vec![0.4, 0.2], vec![vec![0.3, 0.2], vec![0.1, 0.25]], 2.0).unwrap();
    let mut rng = seeded_rng(4);
    let events = strip_lineage(&simulate_branching(&truth, 1200.0, &mut rng));
    let fit = fit_em(
        &events,
        2,
        1200.0,
        &EmConfig {
            beta: 2.0,
            max_iters: 150,
            ..EmConfig::default()
        },
    )
    .unwrap();
    // The fitted model should explain its own training data: the
    // time-rescaling residuals must look unit-exponential.
    let report = residual_analysis(&fit.model, &events, 1200.0).unwrap();
    assert!(report.passes(0.005), "p-values {:?}", report.p_value);
}

#[test]
fn metric_separates_meme_families_from_hashes() {
    // Hash-level end-to-end: two visually distinct templates produce
    // descriptors whose cross-family distance exceeds within-family.
    let hasher = PerceptualHasher::new();
    let mut rng = seeded_rng(5);
    let make = |template_seed: u64, rng: &mut _| -> ClusterDescriptor {
        let v = VariantGenome::base(TemplateGenome::new(template_seed));
        let img = v.render_jittered(64, &JitterConfig::default(), rng);
        ClusterDescriptor::unannotated(hasher.hash(&img))
    };
    let a1 = make(1, &mut rng);
    let a2 = make(1, &mut rng);
    let b1 = make(2, &mut rng);
    let metric = ClusterDistance::default();
    let within = metric.distance(&a1, &a2);
    let across = metric.distance(&a1, &b1);
    assert!(within < across, "within-family {within} vs across {across}");
    assert!(within < 0.45, "within-family distance {within} above kappa");
}
