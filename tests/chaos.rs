//! Chaos suite: the pipeline must *complete with degradation records*,
//! never panic, under deterministic fault injection.
//!
//! Every test generates a clean Tiny dataset, corrupts it with one
//! [`FaultSpec`] preset, and drives the full Fig. 2 pipeline (plus
//! Step-7 robust influence where relevant). The assertions are about
//! graceful degradation: runs finish, fallbacks are *recorded*, and
//! clean parts of the data stay analyzable.

use origins_of_memes::core::pipeline::{
    Degradation, Pipeline, PipelineConfig, PipelineOutput, ScreenshotFilterMode,
};
use origins_of_memes::core::runner::StageId;
use origins_of_memes::hawkes::InfluenceEstimator;
use origins_of_memes::metrics::{Metrics, Registry};
use origins_of_memes::simweb::{Community, Dataset, FaultSpec, SimConfig};
use std::sync::Arc;

/// Generate, corrupt, run. Panics (failing the test) if the pipeline
/// does not complete.
fn run_corrupted(spec: FaultSpec) -> (Dataset, PipelineOutput) {
    let mut dataset = SimConfig::tiny(31).generate();
    let report = spec.apply(&mut dataset);
    assert!(report.any(), "preset corrupted nothing");
    let out = Pipeline::new(PipelineConfig::fast())
        .run(&dataset)
        .expect("pipeline completes under corruption");
    (dataset, out)
}

fn robust_influence(dataset: &Dataset, out: &PipelineOutput) -> Vec<Degradation> {
    let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
    let (_, degradations) = out.estimate_influence_robust(dataset, &estimator, 2);
    degradations
}

#[test]
fn chaos_nan_storm_skips_poisoned_clusters() {
    let (dataset, out) = run_corrupted(FaultSpec::nan_storm(1));
    // Steps 1–6 are timestamp-agnostic and must finish clean.
    assert_eq!(out.occurrences.len(), dataset.posts.len());
    // Step 7: clusters whose event stream caught a NaN are skipped and
    // recorded, not fatal.
    let degradations = robust_influence(&dataset, &out);
    assert!(
        degradations
            .iter()
            .any(|d| matches!(d, Degradation::HawkesClusterSkipped { .. })),
        "no skips recorded: {degradations:?}"
    );
    // The strict path refuses the same data with a typed error.
    let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
    assert!(out.estimate_influence(&dataset, &estimator, 2).is_err());
}

#[test]
fn chaos_duplicate_flood_is_absorbed_by_dedup() {
    // Duplicate-hash collapsing (DESIGN.md §10) builds the cluster index
    // over *unique* hashes, so a flood of exact copies no longer forces
    // the degenerate-corpus MIH demotion — it is absorbed upstream.
    let mut dataset = SimConfig::tiny(31).generate();
    let report = FaultSpec::duplicate_flood(2).apply(&mut dataset);
    assert!(report.any(), "preset corrupted nothing");
    let registry = Arc::new(Registry::new());
    let out = Pipeline::new(PipelineConfig::fast())
        .with_metrics(Metrics::from_registry(Arc::clone(&registry)))
        .run(&dataset)
        .expect("pipeline completes under corruption");
    assert!(
        !out.degradations.iter().any(|d| matches!(
            d,
            Degradation::IndexFellBack {
                stage: StageId::Cluster,
                ..
            }
        )),
        "dedup should keep MIH viable under a duplicate flood: {:?}",
        out.degradations
    );
    let snap = registry.snapshot();
    assert!(
        snap.counters.get("index.engine.mih").copied().unwrap_or(0) >= 1,
        "cluster index should stay on MIH: {:?}",
        snap.counters
    );
    let collapse = snap.gauges["cluster.dedup_collapse_ratio"];
    assert!(
        collapse < 1.0,
        "a duplicate flood must collapse hashes (ratio {collapse})"
    );
    // …and the run is still a full run.
    assert_eq!(out.occurrences.len(), dataset.posts.len());
    robust_influence(&dataset, &out);
}

#[test]
fn chaos_blank_flood_is_absorbed_by_dedup() {
    // All-zero pHashes collapse to a single unique hash; the index never
    // sees the flood, so no fallback is recorded and the run completes.
    let (dataset, out) = run_corrupted(FaultSpec::blank_flood(3));
    assert!(
        !out.degradations
            .iter()
            .any(|d| matches!(d, Degradation::IndexFellBack { .. })),
        "dedup should absorb an all-zero pHash flood: {:?}",
        out.degradations
    );
    assert_eq!(out.occurrences.len(), dataset.posts.len());
    robust_influence(&dataset, &out);
}

#[test]
fn chaos_gallery_wipe_still_annotates_or_degrades_gracefully() {
    let (dataset, out) = run_corrupted(FaultSpec::gallery_wipe(4));
    // Wiping most galleries shrinks annotation coverage but must not
    // break the association step (an empty index matches nothing).
    assert_eq!(out.annotations.len(), out.clustering.n_clusters());
    assert_eq!(out.occurrences.len(), dataset.posts.len());
    robust_influence(&dataset, &out);
}

#[test]
fn chaos_score_garbage_is_harmless_to_the_image_pipeline() {
    let (dataset, out) = run_corrupted(FaultSpec::score_garbage(5));
    assert_eq!(out.post_hashes.len(), dataset.posts.len());
    assert!(out.clustering.n_clusters() > 0);
    robust_influence(&dataset, &out);
}

#[test]
fn chaos_cascade_starvation_completes() {
    let (dataset, out) = run_corrupted(FaultSpec::cascade_starvation(6));
    assert_eq!(out.post_hashes.len(), dataset.posts.len());
    // Single-event cascades are fittable or skipped — never fatal.
    robust_influence(&dataset, &out);
}

#[test]
fn chaos_time_crunch_completes() {
    let (dataset, out) = run_corrupted(FaultSpec::time_crunch(7));
    assert_eq!(out.occurrences.len(), dataset.posts.len());
    // Near-critical timing may or may not converge per cluster; both
    // outcomes must be recorded, not fatal.
    robust_influence(&dataset, &out);
}

#[test]
fn chaos_cnn_divergence_falls_back_to_oracle() {
    let dataset = SimConfig::tiny(32).generate();
    let mut config = PipelineConfig::fast();
    let train = origins_of_memes::annotate::TrainConfig {
        epochs: 1,
        batch_size: 16,
        learning_rate: f32::NAN, // every attempt diverges
        ..Default::default()
    };
    config.screenshot_filter = ScreenshotFilterMode::Train {
        corpus_scale: 0.004,
        config: train,
    };
    let out = Pipeline::new(config)
        .run(&dataset)
        .expect("fallback completes");
    let fell_back = out.degradations.iter().any(
        |d| matches!(d, Degradation::ScreenshotFilterFellBack { attempts, .. } if *attempts >= 2),
    );
    assert!(
        fell_back,
        "no filter fallback recorded: {:?}",
        out.degradations
    );
    // Oracle fallback means no trained-classifier metrics…
    assert!(out.screenshot_metrics.is_none());
    // …but screenshots still get filtered (oracle ground truth).
    assert!(out.annotations.len() == out.clustering.n_clusters());
}

#[test]
fn chaos_degradations_survive_serialization() {
    // Duplicate floods are absorbed by dedup these days, so provoke a
    // degradation that still occurs: a screenshot filter that diverges
    // on every training attempt and falls back to the oracle.
    let dataset = SimConfig::tiny(8).generate();
    let mut config = PipelineConfig::fast();
    let train = origins_of_memes::annotate::TrainConfig {
        epochs: 1,
        batch_size: 16,
        learning_rate: f32::NAN,
        ..Default::default()
    };
    config.screenshot_filter = ScreenshotFilterMode::Train {
        corpus_scale: 0.004,
        config: train,
    };
    let out = Pipeline::new(config)
        .run(&dataset)
        .expect("fallback completes");
    assert!(!out.degradations.is_empty());
    let back = PipelineOutput::from_json(&out.to_json()).expect("roundtrip");
    assert_eq!(back.degradations, out.degradations);
}
