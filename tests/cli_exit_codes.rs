//! The `memes` binary follows the workspace exit-code convention shared
//! with `memes-lint`: `0` clean, `1` violations (the validated artifact
//! failed its check), `2` operational failure (unreadable files, bad
//! usage). These tests pin the `validate-metrics` subcommand to it.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn memes(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memes"))
        .args(args)
        .output()
        .expect("spawn memes")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("memes terminated by signal")
}

fn tmp_file(tag: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("memes-cli-{tag}-{}.json", std::process::id()));
    fs::write(&path, content).expect("write temp metrics file");
    path
}

#[test]
fn validate_metrics_accepts_a_real_registry_export() {
    // An empty registry is the smallest schema-valid export.
    let registry = origins_of_memes::metrics::Registry::new();
    let path = tmp_file("valid", &registry.to_json());
    let out = memes(&["validate-metrics", path.to_str().unwrap()]);
    let _ = fs::remove_file(&path);
    assert_eq!(
        exit_code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn invalid_metrics_content_exits_one() {
    let path = tmp_file("invalid", "{\"schema_version\": 9999}");
    let out = memes(&["validate-metrics", path.to_str().unwrap()]);
    let _ = fs::remove_file(&path);
    assert_eq!(
        exit_code(&out),
        1,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn unreadable_metrics_file_exits_two() {
    let missing = std::env::temp_dir().join(format!(
        "memes-cli-no-such-file-{}.json",
        std::process::id()
    ));
    let out = memes(&["validate-metrics", missing.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn bad_usage_exits_two() {
    assert_eq!(exit_code(&memes(&[])), 2, "no subcommand");
    assert_eq!(exit_code(&memes(&["validate-metrics"])), 2, "missing FILE");
    assert_eq!(
        exit_code(&memes(&["no-such-command"])),
        2,
        "unknown command"
    );
    assert_eq!(
        exit_code(&memes(&["run", "--no-such-flag"])),
        2,
        "unknown flag"
    );
    assert_eq!(exit_code(&memes(&["fsck"])), 2, "fsck without CKPT");
    assert_eq!(
        exit_code(&memes(&["quarantine"])),
        2,
        "quarantine without subaction"
    );
    assert_eq!(
        exit_code(&memes(&["quarantine", "frobnicate", "x.jsonl"])),
        2,
        "unknown quarantine subaction"
    );
    assert_eq!(
        exit_code(&memes(&["run", "--chaos", "no-such-preset"])),
        2,
        "unknown chaos preset"
    );
}

#[test]
fn fsck_missing_file_exits_two_and_garbage_exits_one() {
    let missing = std::env::temp_dir().join(format!(
        "memes-cli-fsck-missing-{}.ckpt",
        std::process::id()
    ));
    assert_eq!(exit_code(&memes(&["fsck", missing.to_str().unwrap()])), 2);

    let garbage = tmp_file("fsck-garbage", "this is not a checkpoint");
    let out = memes(&["fsck", garbage.to_str().unwrap()]);
    let _ = fs::remove_file(&garbage);
    assert_eq!(
        exit_code(&out),
        1,
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("torn"),
        "garbage must be classified torn: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn quarantine_ls_follows_the_convention() {
    let missing = std::env::temp_dir().join(format!(
        "memes-cli-quarantine-missing-{}.jsonl",
        std::process::id()
    ));
    assert_eq!(
        exit_code(&memes(&["quarantine", "ls", missing.to_str().unwrap()])),
        2,
        "unreadable file is operational"
    );

    let malformed = tmp_file("quarantine-bad", "{ not json\n");
    let out = memes(&["quarantine", "ls", malformed.to_str().unwrap()]);
    let _ = fs::remove_file(&malformed);
    assert_eq!(exit_code(&out), 1, "malformed file is a violation");

    let entry = origins_of_memes::core::quarantine::QuarantineEntry {
        stage: origins_of_memes::core::runner::StageId::Hash,
        item: 3,
        reason: origins_of_memes::core::quarantine::QuarantineReason::PoisonItem {
            attempts: 2,
            detail: "cli test".to_string(),
        },
    };
    let valid = tmp_file(
        "quarantine-ok",
        &origins_of_memes::core::quarantine::encode_jsonl(&[entry]),
    );
    let out = memes(&["quarantine", "ls", valid.to_str().unwrap()]);
    let _ = fs::remove_file(&valid);
    assert_eq!(
        exit_code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("poison item"),
        "listing must render the typed reason"
    );
}
