//! The `memes` binary follows the workspace exit-code convention shared
//! with `memes-lint`: `0` clean, `1` violations (the validated artifact
//! failed its check), `2` operational failure (unreadable files, bad
//! usage). These tests pin the `validate-metrics` subcommand to it.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn memes(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memes"))
        .args(args)
        .output()
        .expect("spawn memes")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("memes terminated by signal")
}

fn tmp_file(tag: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("memes-cli-{tag}-{}.json", std::process::id()));
    fs::write(&path, content).expect("write temp metrics file");
    path
}

#[test]
fn validate_metrics_accepts_a_real_registry_export() {
    // An empty registry is the smallest schema-valid export.
    let registry = origins_of_memes::metrics::Registry::new();
    let path = tmp_file("valid", &registry.to_json());
    let out = memes(&["validate-metrics", path.to_str().unwrap()]);
    let _ = fs::remove_file(&path);
    assert_eq!(
        exit_code(&out),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn invalid_metrics_content_exits_one() {
    let path = tmp_file("invalid", "{\"schema_version\": 9999}");
    let out = memes(&["validate-metrics", path.to_str().unwrap()]);
    let _ = fs::remove_file(&path);
    assert_eq!(
        exit_code(&out),
        1,
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn unreadable_metrics_file_exits_two() {
    let missing = std::env::temp_dir().join(format!(
        "memes-cli-no-such-file-{}.json",
        std::process::id()
    ));
    let out = memes(&["validate-metrics", missing.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn bad_usage_exits_two() {
    assert_eq!(exit_code(&memes(&[])), 2, "no subcommand");
    assert_eq!(exit_code(&memes(&["validate-metrics"])), 2, "missing FILE");
    assert_eq!(
        exit_code(&memes(&["no-such-command"])),
        2,
        "unknown command"
    );
    assert_eq!(
        exit_code(&memes(&["run", "--no-such-flag"])),
        2,
        "unknown flag"
    );
}
