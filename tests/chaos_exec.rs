//! Execution-fault chaos suite (DESIGN.md §11).
//!
//! The data-fault suite (`tests/chaos.rs`) corrupts the *corpus*; this
//! suite corrupts the *execution*: stages panic, stages and items fail
//! transiently, items are poison, checkpoint writes fail or tear. The
//! supervised runner must hold one line for every injection:
//!
//! * retryable faults retry to success, and the recovered output is
//!   **byte-identical** to an uninterrupted clean run;
//! * poison items are quarantined with typed reasons, recorded as a
//!   degradation, and deterministic across identical runs;
//! * persistent faults surface as **typed errors** — never a panic,
//!   never an abort, never silent corruption;
//! * a torn final checkpoint rolls back to the previous generation on
//!   resume and still converges to the clean output.

use origins_of_memes::core::pipeline::{
    Degradation, Pipeline, PipelineConfig, PipelineError, PipelineOutput,
};
use origins_of_memes::core::quarantine::{read_quarantine, QuarantineReason};
use origins_of_memes::core::runner::{prev_checkpoint_path, StageId};
use origins_of_memes::core::supervise::{FaultyMedium, SpecFaults, StagePolicy, SupervisedRunner};
use origins_of_memes::simweb::{Dataset, ExecFaultSpec, SimConfig};
use std::path::PathBuf;
use std::sync::Arc;

const SEED: u64 = 31;

fn dataset() -> Dataset {
    SimConfig::tiny(SEED).generate()
}

fn supervised(faults: ExecFaultSpec) -> SupervisedRunner {
    SupervisedRunner::new(Pipeline::new(PipelineConfig::fast()))
        .with_exec_faults(Arc::new(SpecFaults(faults)))
}

/// The reference output of an unsupervised, fault-free run.
fn clean_output(dataset: &Dataset) -> PipelineOutput {
    Pipeline::new(PipelineConfig::fast())
        .run(dataset)
        .expect("clean pipeline completes")
}

/// Byte-level equality modulo the degradation ledger (rollback and
/// quarantine are *supposed* to appear there).
fn json_sans_degradations(output: &PipelineOutput) -> String {
    let mut stripped = output.clone();
    stripped.degradations.clear();
    stripped.to_json()
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("memes-chaos-exec-{}-{name}", std::process::id()));
    p
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(prev_checkpoint_path(path));
}

#[test]
fn transient_stage_faults_retry_to_byte_identical_output() {
    let data = dataset();
    let run = supervised(ExecFaultSpec::transient_stage(SEED, "*", 2))
        .run(&data)
        .expect("two transient failures fit a 3-attempt budget");
    assert_eq!(run.report.total_retries(), 2 * StageId::ALL.len() as u32);
    assert_eq!(run.report.panics_contained, 0);
    assert!(
        run.report.total_backoff_ticks > 0,
        "retries must account logical backoff"
    );
    let out = run.expect_complete();
    assert_eq!(
        out.to_json(),
        clean_output(&data).to_json(),
        "retried output must be byte-identical to a clean run"
    );
}

#[test]
fn panics_are_contained_and_retried_in_every_stage() {
    let data = dataset();
    let run = supervised(ExecFaultSpec::panic_once_everywhere(SEED))
        .run(&data)
        .expect("one panic per stage fits the retry budget");
    assert_eq!(
        run.report.panics_contained,
        StageId::ALL.len() as u32,
        "every stage should have panicked exactly once"
    );
    let out = run.expect_complete();
    assert_eq!(
        out.to_json(),
        clean_output(&data).to_json(),
        "post-panic retry must converge to the clean output"
    );
}

#[test]
fn persistent_panic_is_a_typed_error_never_an_abort() {
    let data = dataset();
    let err = supervised(ExecFaultSpec::persistent_panic(SEED, "cluster"))
        .run(&data)
        .expect_err("a panic on every attempt must exhaust the budget");
    match err {
        PipelineError::StagePanicked { stage, detail } => {
            assert_eq!(stage, StageId::Cluster);
            assert!(
                detail.contains("injected"),
                "panic payload should be preserved: {detail}"
            );
        }
        other => panic!("expected StagePanicked, got: {other}"),
    }
}

#[test]
fn exhausted_transient_stage_is_a_typed_error() {
    let data = dataset();
    let err = supervised(ExecFaultSpec::transient_stage(SEED, "hash", 99))
        .with_policy(StagePolicy {
            max_attempts: 2,
            ..StagePolicy::default()
        })
        .run(&data)
        .expect_err("99 failures cannot fit a 2-attempt budget");
    assert!(
        matches!(
            err,
            PipelineError::Stage {
                stage: StageId::Hash,
                ..
            }
        ),
        "expected a typed stage error, got: {err}"
    );
}

#[test]
fn flaky_items_are_retried_to_byte_identical_output() {
    let data = dataset();
    let run = supervised(ExecFaultSpec::flaky_items(SEED, "hash", 0.1))
        .run(&data)
        .expect("single-attempt item flake fits the budget");
    assert!(
        run.report.total_retries() >= 1,
        "flaky items must force at least one stage retry"
    );
    assert_eq!(run.report.quarantined_items, 0);
    let out = run.expect_complete();
    assert_eq!(
        out.to_json(),
        clean_output(&data).to_json(),
        "items that recover on retry must leave no trace in the output"
    );
}

#[test]
fn poison_items_are_quarantined_with_typed_reasons() {
    let data = dataset();
    let qpath = tmp_path("poison.jsonl");
    let run = supervised(ExecFaultSpec::poison_items(SEED, "hash", 0.05))
        .with_quarantine(&qpath)
        .run(&data)
        .expect("poison items must not sink the run");
    assert!(
        run.report.quarantined_items > 0,
        "a 5% poison fraction on a tiny corpus must hit something"
    );

    let entries = read_quarantine(&qpath).expect("quarantine file parses");
    assert_eq!(entries.len(), run.report.quarantined_items);
    for e in &entries {
        assert_eq!(e.stage, StageId::Hash);
        assert!(e.item < data.posts.len(), "entry must index a real post");
        let QuarantineReason::PoisonItem { attempts, .. } = &e.reason;
        assert!(*attempts >= 1);
    }

    let out = run.expect_complete();
    assert!(
        out.degradations
            .iter()
            .any(|d| matches!(d, Degradation::ItemsQuarantined { stage: StageId::Hash, items } if *items == entries.len())),
        "quarantine must be recorded as a degradation: {:?}",
        out.degradations
    );
    cleanup(&qpath);
}

#[test]
fn poison_quarantine_is_deterministic_across_runs() {
    let data = dataset();
    let spec = ExecFaultSpec::poison_items(SEED, "associate", 0.05);
    let a = supervised(spec.clone()).run(&data).expect("first run");
    let b = supervised(spec).run(&data).expect("second run");
    assert_eq!(a.report.quarantined_items, b.report.quarantined_items);
    let (a, b) = (a.expect_complete(), b.expect_complete());
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "identical fault schedules must produce identical outputs"
    );
    assert!(a.degradations.iter().any(|d| matches!(
        d,
        Degradation::ItemsQuarantined {
            stage: StageId::Associate,
            ..
        }
    )));
}

#[test]
fn checkpoint_write_blackout_is_retried_through() {
    let data = dataset();
    let ckpt = tmp_path("blackout.ckpt");
    cleanup(&ckpt);
    let spec = ExecFaultSpec::write_blackout(SEED, 2);
    let run = SupervisedRunner::new(Pipeline::new(PipelineConfig::fast()))
        .with_checkpoint(&ckpt)
        .with_medium(Arc::new(FaultyMedium::new(spec)))
        .run(&data)
        .expect("two failed writes fit a 3-attempt save budget");
    assert_eq!(run.report.checkpoint_write_retries, 2);
    assert_eq!(run.report.checkpoint_writes, StageId::ALL.len() as u32);
    let out = run.expect_complete();
    assert_eq!(out.to_json(), clean_output(&data).to_json());
    cleanup(&ckpt);
}

#[test]
fn persistent_write_blackout_is_a_typed_error() {
    let data = dataset();
    let ckpt = tmp_path("blackout-persistent.ckpt");
    cleanup(&ckpt);
    let spec = ExecFaultSpec::write_blackout(SEED, usize::MAX);
    let err = SupervisedRunner::new(Pipeline::new(PipelineConfig::fast()))
        .with_checkpoint(&ckpt)
        .with_medium(Arc::new(FaultyMedium::new(spec)))
        .run(&data)
        .expect_err("a medium that never writes must fail typed");
    assert!(
        matches!(err, PipelineError::CheckpointIo(_)),
        "expected CheckpointIo, got: {err}"
    );
    cleanup(&ckpt);
}

#[test]
fn torn_final_write_rolls_back_and_resumes_byte_identical() {
    let data = dataset();
    let ckpt = tmp_path("torn-final.ckpt");
    cleanup(&ckpt);
    // One checkpoint temp-write per stage; tear the last (index 4). The
    // torn write *reports success* (the lying-fsync crash), so the run
    // itself completes — the damage is only discovered on resume.
    let spec = ExecFaultSpec::torn_write(SEED, StageId::ALL.len() - 1, 0.5);
    let first = SupervisedRunner::new(Pipeline::new(PipelineConfig::fast()))
        .with_checkpoint(&ckpt)
        .with_medium(Arc::new(FaultyMedium::new(spec)))
        .run(&data)
        .expect("a torn write is silent at write time");
    let clean = clean_output(&data);
    assert_eq!(first.expect_complete().to_json(), clean.to_json());
    assert!(
        prev_checkpoint_path(&ckpt).exists(),
        "the previous generation must survive the torn final write"
    );

    // Resume on a healthy disk: the torn current generation must roll
    // back to `.prev` (4 of 5 stages), re-run the rest, and converge.
    let resumed = SupervisedRunner::new(Pipeline::new(PipelineConfig::fast()))
        .with_checkpoint(&ckpt)
        .resume(&data)
        .expect("rollback must rescue the torn checkpoint");
    assert!(resumed.report.rolled_back, "rollback must be reported");
    let out = resumed.expect_complete();
    assert!(
        out.degradations
            .iter()
            .any(|d| matches!(d, Degradation::CheckpointRolledBack { .. })),
        "rollback must be recorded as a degradation: {:?}",
        out.degradations
    );
    assert_eq!(
        json_sans_degradations(&out),
        json_sans_degradations(&clean),
        "the rolled-back resume must converge to the clean output"
    );
    cleanup(&ckpt);
}

#[test]
fn torn_checkpoint_without_previous_generation_is_typed_corrupt() {
    let data = dataset();
    let ckpt = tmp_path("torn-no-prev.ckpt");
    cleanup(&ckpt);
    let complete = SupervisedRunner::new(Pipeline::new(PipelineConfig::fast()))
        .with_checkpoint(&ckpt)
        .run(&data)
        .expect("clean supervised run");
    drop(complete);
    // Tear the only generation by hand and remove the rollback target.
    let bytes = std::fs::read(&ckpt).expect("checkpoint written");
    std::fs::write(&ckpt, &bytes[..bytes.len() / 3]).expect("truncate");
    let _ = std::fs::remove_file(prev_checkpoint_path(&ckpt));

    let err = SupervisedRunner::new(Pipeline::new(PipelineConfig::fast()))
        .with_checkpoint(&ckpt)
        .resume(&data)
        .expect_err("no generation left to roll back to");
    match err {
        PipelineError::CheckpointCorrupt(detail) => {
            assert!(detail.contains("torn"), "must classify torn: {detail}");
            assert!(
                detail.contains("no previous generation"),
                "must explain the failed rollback: {detail}"
            );
        }
        other => panic!("expected CheckpointCorrupt, got: {other}"),
    }
    cleanup(&ckpt);
}

#[test]
fn supervised_clean_run_matches_bare_pipeline_exactly() {
    let data = dataset();
    let run = SupervisedRunner::new(Pipeline::new(PipelineConfig::fast()))
        .run(&data)
        .expect("supervision of a healthy run is invisible");
    assert_eq!(run.report.total_retries(), 0);
    assert_eq!(run.report.panics_contained, 0);
    assert_eq!(run.report.quarantined_items, 0);
    assert_eq!(
        run.expect_complete().to_json(),
        clean_output(&data).to_json()
    );
}
