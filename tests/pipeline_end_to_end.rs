//! Cross-crate integration: the full seven-step pipeline against the
//! synthetic ecosystem, checked against the paper's qualitative claims
//! (the "shape targets" of DESIGN.md §4).

use origins_of_memes::cluster::dbscan::DbscanParams;
use origins_of_memes::core::analysis::{self, MemeFilter};
use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig, PipelineOutput};
use origins_of_memes::hawkes::InfluenceEstimator;
use origins_of_memes::simweb::{Community, Dataset, SimConfig};
use std::sync::OnceLock;

fn fixture() -> &'static (Dataset, PipelineOutput) {
    static FIXTURE: OnceLock<(Dataset, PipelineOutput)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = SimConfig::tiny(99).generate();
        let output = Pipeline::new(PipelineConfig::fast())
            .run(&dataset)
            .expect("pipeline runs");
        (dataset, output)
    })
}

#[test]
fn table1_volume_ordering() {
    let (dataset, output) = fixture();
    let rows = analysis::table1(dataset, output);
    // Twitter > Reddit > /pol/ > Gab in total posts (Table 1).
    assert!(rows[0].posts > rows[1].posts);
    assert!(rows[1].posts > rows[2].posts);
    assert!(rows[2].posts > rows[3].posts);
    // Every platform has more posts than image posts.
    for r in rows.iter().take(4) {
        assert!(r.posts > r.posts_with_images, "{}", r.platform);
    }
}

#[test]
fn fringe_noise_mass_in_paper_band() {
    let (_, output) = fixture();
    // Table 2: 63%-69% noise. Allow a generous band at test scale.
    let noise = output.clustering.noise_fraction();
    assert!((0.45..0.90).contains(&noise), "noise fraction {noise}");
}

#[test]
fn annotation_coverage_is_partial() {
    let (_, output) = fixture();
    let annotated = output.annotated_clusters().len() as f64;
    let total = output.clustering.n_clusters() as f64;
    let coverage = annotated / total;
    // Table 2: 13%-24% in the paper; the synthetic universe lands
    // higher but must stay clearly partial.
    assert!(
        (0.05..0.70).contains(&coverage),
        "annotation coverage {coverage}"
    );
}

#[test]
fn racist_memes_concentrate_on_fringe_communities() {
    let (dataset, output) = fixture();
    let share = |community: Community| -> f64 {
        let mut racist = 0usize;
        let mut total = 0usize;
        for (post, occ) in dataset.posts.iter().zip(&output.occurrences) {
            if post.community != community {
                continue;
            }
            let Some(cluster) = occ else { continue };
            total += 1;
            if output.cluster_is_racist(*cluster) {
                racist += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            racist as f64 / total as f64
        }
    };
    let pol = share(Community::Pol);
    let twitter = share(Community::Twitter);
    assert!(
        pol > twitter,
        "/pol/ racist share {pol} vs Twitter {twitter}"
    );
}

#[test]
fn political_memes_spike_at_election() {
    let (dataset, output) = fixture();
    let series = analysis::fig8_series(dataset, output, MemeFilter::Political);
    let election = dataset.config.cascade.election_day as usize;
    // Combined across communities: the election fortnight beats a
    // quiet fortnight.
    let total_at = |day: usize| -> f64 {
        series
            .iter()
            .flat_map(|(_, s)| s.get(day.saturating_sub(7)..(day + 7).min(s.len())))
            .flatten()
            .sum()
    };
    let near = total_at(election);
    let quiet = total_at(election + 45);
    assert!(
        near > quiet,
        "election window {near} vs quiet window {quiet}"
    );
}

#[test]
fn reddit_scores_follow_fig9() {
    let (dataset, output) = fixture();
    let s = analysis::fig9_scores(dataset, output, Community::Reddit);
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    if s.political.len() > 30 && s.non_political.len() > 30 {
        assert!(
            mean(&s.political) > mean(&s.non_political),
            "political {} vs non {}",
            mean(&s.political),
            mean(&s.non_political)
        );
    }
}

#[test]
fn the_donald_tops_subreddit_table() {
    let (dataset, output) = fixture();
    let rows = analysis::table6(dataset, output, MemeFilter::All, 10);
    assert_eq!(rows[0].subreddit, "The_Donald");
}

#[test]
fn influence_shape_matches_paper_headline() {
    // §5.2: /pol/ has large raw influence but the lowest efficiency;
    // The_Donald is the most efficient external spreader. Verified on
    // the *fitted* model, end to end through the pipeline.
    let (dataset, output) = fixture();
    let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
    let influence = output
        .estimate_influence(dataset, &estimator, 0)
        .expect("estimation succeeds");
    let ext = influence.total.total_external_normalized();
    let td = ext[Community::TheDonald.index()];
    let pol = ext[Community::Pol.index()];
    assert!(td > pol, "T_D efficiency {td}% must exceed /pol/ {pol}%");
    // /pol/'s raw external influence mass still dominates Gab's.
    let raw = influence.total.percent_of_destination();
    let pol_on_twitter = raw[Community::Pol.index()][Community::Twitter.index()];
    let gab_on_twitter = raw[Community::Gab.index()][Community::Twitter.index()];
    assert!(
        pol_on_twitter > gab_on_twitter,
        "pol->twitter {pol_on_twitter} vs gab->twitter {gab_on_twitter}"
    );
}

#[test]
fn fitted_influence_tracks_ground_truth() {
    let (dataset, output) = fixture();
    let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
    let influence = output
        .estimate_influence(dataset, &estimator, 0)
        .expect("estimation succeeds");
    let fitted = influence.total.percent_of_destination();

    let mut truth = vec![vec![0.0f64; Community::COUNT]; Community::COUNT];
    for (post, occ) in dataset.posts.iter().zip(&output.occurrences) {
        if occ.is_none() {
            continue;
        }
        if let Some(root) = post.true_root {
            truth[root.index()][post.community.index()] += 1.0;
        }
    }
    let truth =
        origins_of_memes::hawkes::InfluenceMatrix::from_counts(truth).percent_of_destination();
    for src in 0..Community::COUNT {
        for dst in 0..Community::COUNT {
            let err = (fitted[src][dst] - truth[src][dst]).abs();
            assert!(
                err < 20.0,
                "cell {src}->{dst}: fitted {:.1} vs truth {:.1}",
                fitted[src][dst],
                truth[src][dst]
            );
        }
    }
}

#[test]
fn eps_sweep_shape() {
    let (dataset, output) = fixture();
    let rows = analysis::eps_sweep(dataset, output, &[2, 8, 10], 5, 0);
    assert!(rows[0].noise_pct > rows[1].noise_pct);
    assert!(rows[1].noise_pct >= rows[2].noise_pct);
    assert!(rows[1].purity > 0.9, "purity at 8: {}", rows[1].purity);
}

#[test]
fn custom_dbscan_params_flow_through() {
    let (dataset, _) = fixture();
    let strict = Pipeline::new(PipelineConfig {
        dbscan: DbscanParams { eps: 4, min_pts: 5 },
        ..PipelineConfig::fast()
    })
    .run(dataset)
    .expect("pipeline runs");
    let default = Pipeline::new(PipelineConfig::fast())
        .run(dataset)
        .expect("pipeline runs");
    assert!(strict.clustering.noise_fraction() > default.clustering.noise_fraction());
}
