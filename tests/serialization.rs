//! Persistence: datasets and pipeline runs round-trip through JSON, so
//! the expensive hashing step can be done once and analyzed many times
//! (the paper's batch/one-time split, §3.3).

use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig, PipelineOutput};
use origins_of_memes::simweb::{Dataset, SimConfig};

#[test]
fn dataset_roundtrips_through_json() {
    let dataset = SimConfig::tiny(5).generate();
    let json = serde_json::to_string(&dataset).expect("dataset serializes");
    let back: Dataset = serde_json::from_str(&json).expect("dataset deserializes");
    assert_eq!(back.posts, dataset.posts);
    assert_eq!(back.daily_totals, dataset.daily_totals);
    assert_eq!(back.kym_raw, dataset.kym_raw);
    assert_eq!(back.universe, dataset.universe);
    // A restored dataset renders identical images.
    let post = &dataset.posts[0];
    assert_eq!(
        back.render_post_image(post),
        dataset.render_post_image(post)
    );
}

#[test]
fn pipeline_output_roundtrips_and_stays_analyzable() {
    let dataset = SimConfig::tiny(5).generate();
    let output = Pipeline::new(PipelineConfig::fast())
        .run(&dataset)
        .expect("pipeline runs");
    let json = output.to_json();
    let back = PipelineOutput::from_json(&json).expect("output deserializes");
    assert_eq!(back.post_hashes, output.post_hashes);
    assert_eq!(back.occurrences, output.occurrences);
    assert_eq!(back.annotations, output.annotations);
    assert_eq!(back.annotated_clusters(), output.annotated_clusters());
    // Step-7 analysis works on the restored run.
    let restored_events = back.all_cluster_events(&dataset);
    let original_events = output.all_cluster_events(&dataset);
    assert_eq!(restored_events, original_events);
}

#[test]
fn corrupt_json_is_rejected() {
    assert!(PipelineOutput::from_json("{\"not\": \"a run\"}").is_err());
    assert!(PipelineOutput::from_json("").is_err());
}
