//! Persistence: datasets and pipeline runs round-trip through JSON, so
//! the expensive hashing step can be done once and analyzed many times
//! (the paper's batch/one-time split, §3.3).

use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig, PipelineOutput};
use origins_of_memes::simweb::{Dataset, SimConfig};

#[test]
fn dataset_roundtrips_through_json() {
    let dataset = SimConfig::tiny(5).generate();
    let json = serde_json::to_string(&dataset).expect("dataset serializes");
    let back: Dataset = serde_json::from_str(&json).expect("dataset deserializes");
    assert_eq!(back.posts, dataset.posts);
    assert_eq!(back.daily_totals, dataset.daily_totals);
    assert_eq!(back.kym_raw, dataset.kym_raw);
    assert_eq!(back.universe, dataset.universe);
    // A restored dataset renders identical images.
    let post = &dataset.posts[0];
    assert_eq!(
        back.render_post_image(post),
        dataset.render_post_image(post)
    );
}

#[test]
fn pipeline_output_roundtrips_and_stays_analyzable() {
    let dataset = SimConfig::tiny(5).generate();
    let output = Pipeline::new(PipelineConfig::fast())
        .run(&dataset)
        .expect("pipeline runs");
    let json = output.to_json();
    let back = PipelineOutput::from_json(&json).expect("output deserializes");
    assert_eq!(back.post_hashes, output.post_hashes);
    assert_eq!(back.occurrences, output.occurrences);
    assert_eq!(back.annotations, output.annotations);
    assert_eq!(back.annotated_clusters(), output.annotated_clusters());
    // Step-7 analysis works on the restored run.
    let restored_events = back.all_cluster_events(&dataset);
    let original_events = output.all_cluster_events(&dataset);
    assert_eq!(restored_events, original_events);
}

#[test]
fn corrupt_json_is_rejected() {
    assert!(PipelineOutput::from_json("{\"not\": \"a run\"}").is_err());
    assert!(PipelineOutput::from_json("").is_err());
}

#[test]
fn checkpoints_roundtrip_preserving_stage_equality() {
    use origins_of_memes::core::runner::{
        decode_checkpoint, encode_checkpoint, prev_checkpoint_path, PipelineRunner, RunnerOutcome,
        StageId,
    };
    let dataset = SimConfig::tiny(5).generate();
    let pipeline = Pipeline::new(PipelineConfig::fast());
    let mut path = std::env::temp_dir();
    path.push(format!(
        "memes-serialization-ckpt-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(prev_checkpoint_path(&path));
    let outcome = PipelineRunner::new(pipeline.clone())
        .with_checkpoint(&path)
        .halt_after(StageId::Cluster)
        .run(&dataset)
        .expect("runner halts cleanly");
    assert!(matches!(
        outcome,
        RunnerOutcome::Halted {
            after: StageId::Cluster
        }
    ));

    // On-disk checkpoints carry the integrity envelope (DESIGN.md §11);
    // decode_checkpoint verifies it before handing back the payload.
    let saved = std::fs::read(&path).expect("checkpoint written");
    let ckpt = decode_checkpoint(&saved).expect("checkpoint decodes");
    assert_eq!(ckpt.completed, vec![StageId::Hash, StageId::Cluster]);
    assert_eq!(ckpt.next_stage(), Some(StageId::Site));
    assert!(!ckpt.is_complete());

    // Re-encoding is a fixed point: envelope and payload identical.
    let back = decode_checkpoint(&encode_checkpoint(&ckpt)).expect("roundtrip decodes");
    assert_eq!(back.completed, ckpt.completed);
    assert_eq!(back.dataset_fingerprint, ckpt.dataset_fingerprint);
    assert_eq!(encode_checkpoint(&back), encode_checkpoint(&ckpt));

    // The partial state already carries the cluster stage's outputs.
    assert!(ckpt.state.post_hashes.is_some());
    assert!(ckpt.state.clustering.is_some());
    assert!(ckpt.state.site.is_none());
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(prev_checkpoint_path(&path));
}
