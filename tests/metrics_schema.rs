//! End-to-end observability: a metrics-enabled pipeline run must export
//! JSON that (a) passes the shared DESIGN.md §7 schema validator and
//! (b) carries the per-stage spans, throughput gauges, Hawkes EM
//! counters, and degradation counters the acceptance criteria promise.

use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig};
use origins_of_memes::core::runner::PipelineRunner;
use origins_of_memes::hawkes::InfluenceEstimator;
use origins_of_memes::metrics::{Metrics, Registry};
use origins_of_memes::observability::validate_metrics_json;
use origins_of_memes::simweb::{Community, SimConfig};
use std::sync::Arc;

#[test]
fn metrics_export_passes_schema_validation_and_covers_the_run() {
    let dataset = SimConfig::tiny(7).generate();
    let registry = Arc::new(Registry::new());
    let metrics = Metrics::from_registry(Arc::clone(&registry));
    let output = PipelineRunner::new(Pipeline::new(PipelineConfig::fast()))
        .with_metrics(metrics.clone())
        .run(&dataset)
        .unwrap()
        .expect_complete();
    let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
    let _ = output.estimate_influence_instrumented(&dataset, &estimator, 0, &metrics);

    let json = registry.to_json();
    validate_metrics_json(&json).unwrap();

    // The acceptance surface: one schema-documented export with stage
    // wall time, throughput, EM iterations, and degradation visibility.
    let snap = registry.snapshot();
    for span in [
        "pipeline",
        "pipeline/hash",
        "pipeline/cluster",
        "pipeline/site",
        "pipeline/annotate",
        "pipeline/associate",
        "pipeline/influence",
    ] {
        let s = &snap.spans[span];
        assert_eq!(s.calls, 1, "{span}");
        assert!(s.total_secs >= 0.0, "{span}");
    }
    assert_eq!(snap.counters["hash.images"], dataset.posts.len() as u64);
    assert!(snap.gauges["hash.images_per_sec"] > 0.0);
    assert!(snap.counters["hawkes.em_iterations_total"] > 0);
    assert_eq!(
        snap.counters["hawkes.clusters_fitted"] + snap.counters["hawkes.clusters_skipped"],
        snap.counters["hawkes.clusters_total"]
    );
    let em = &snap.histograms["hawkes.em_iterations"];
    assert_eq!(em.count, snap.counters["hawkes.clusters_fitted"]);
}

#[test]
fn disabled_metrics_change_nothing_and_export_nothing() {
    let dataset = SimConfig::tiny(8).generate();
    let pipeline = Pipeline::new(PipelineConfig::fast());
    let plain = pipeline.run(&dataset).unwrap();

    let registry = Arc::new(Registry::new());
    let instrumented = Pipeline::new(PipelineConfig::fast())
        .with_metrics(Metrics::from_registry(Arc::clone(&registry)))
        .run(&dataset)
        .unwrap();
    // Observability must be read-only: identical output either way.
    assert_eq!(plain.to_json(), instrumented.to_json());

    // And a disabled handle records nothing.
    let m = Metrics::disabled();
    m.inc("x");
    m.span("y").finish();
    assert!(m.to_json().is_none());
}
