//! `memes serve` / `memes lookup` follow the workspace exit-code
//! convention ([`Exit`](origins_of_memes::analysis)): `0` hit, `1`
//! miss, `2` operational (bad usage, unloadable artifact, unreachable
//! server). The serve test also pins the startup contract scripts rely
//! on: the bound address is the first stdout line, so `--addr
//! 127.0.0.1:0` (a free port) stays discoverable.

use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig};
use origins_of_memes::simweb::SimConfig;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::sync::OnceLock;

/// One tiny completed-run artifact shared by every test in this file,
/// plus the hex rendering of an annotated cluster's medoid (a
/// guaranteed hit) — built once, the pipeline run dominates the cost.
fn artifact() -> &'static (PathBuf, String) {
    static ART: OnceLock<(PathBuf, String)> = OnceLock::new();
    ART.get_or_init(|| {
        let dataset = SimConfig::tiny(17).generate();
        let output = Pipeline::new(PipelineConfig::fast()).run(&dataset).unwrap();
        let ann = output
            .annotations
            .iter()
            .find(|a| a.is_annotated())
            .expect("tiny(17) run has annotated clusters");
        let medoid = format!("{}", output.medoid_hashes[ann.cluster]);
        let path =
            std::env::temp_dir().join(format!("memes-cli-serve-{}.json", std::process::id()));
        std::fs::write(&path, output.to_json()).expect("write artifact");
        (path, medoid)
    })
}

fn memes(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memes"))
        .args(args)
        .output()
        .expect("spawn memes")
}

/// Spawn `memes serve` with extra flags and return the child plus the
/// bound address parsed from the startup banner.
fn spawn_serve(extra: &[&str]) -> (std::process::Child, String) {
    let (path, _) = artifact();
    let mut server = Command::new(env!("CARGO_BIN_EXE_memes"))
        .args(["serve", "--artifact", path.to_str().unwrap()])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn memes serve");
    let mut line = String::new();
    BufReader::new(server.stdout.take().expect("piped stdout"))
        .read_line(&mut line)
        .expect("read serve banner");
    let addr = line
        .trim()
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    (server, addr)
}

/// Read one newline-terminated response from the server.
fn read_response(stream: &std::net::TcpStream) -> String {
    let mut line = String::new();
    BufReader::new(stream.try_clone().expect("clone stream"))
        .read_line(&mut line)
        .expect("read response line");
    line.trim_end().to_string()
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("memes terminated by signal")
}

#[test]
fn local_lookup_exits_zero_on_hit_and_one_on_miss() {
    let (path, medoid) = artifact();
    let path = path.to_str().unwrap();

    let hit = memes(&["lookup", medoid, "--artifact", path]);
    assert_eq!(
        exit_code(&hit),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&hit.stderr)
    );
    let stdout = String::from_utf8_lossy(&hit.stdout);
    assert!(stdout.contains("\"found\":true"), "{stdout}");
    assert!(stdout.contains("\"distance\":0"), "{stdout}");

    // All-ones is ~32 bits from a pHash medoid — far past θ = 8.
    let miss = memes(&["lookup", "ffffffffffffffff", "--artifact", path]);
    assert_eq!(exit_code(&miss), 1);
    assert!(String::from_utf8_lossy(&miss.stdout).contains("\"found\":false"));
}

#[test]
fn serve_answers_remote_lookups_on_a_discovered_port() {
    let (path, medoid) = artifact();
    let mut server = Command::new(env!("CARGO_BIN_EXE_memes"))
        .args(["serve", "--artifact", path.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn memes serve");
    // First stdout line announces the bound address (port 0 → free
    // port); that is the whole discovery protocol.
    let mut line = String::new();
    BufReader::new(server.stdout.take().expect("piped stdout"))
        .read_line(&mut line)
        .expect("read serve banner");
    let addr = line
        .trim()
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();

    let hit = memes(&["lookup", medoid, "--addr", &addr]);
    let miss = memes(&["lookup", "ffffffffffffffff", "--addr", &addr]);
    server.kill().expect("kill memes serve");
    let _ = server.wait();

    assert_eq!(
        exit_code(&hit),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&hit.stderr)
    );
    assert!(String::from_utf8_lossy(&hit.stdout).contains("\"found\":true"));
    assert_eq!(exit_code(&miss), 1);
}

#[test]
fn serve_times_out_idle_clients_with_a_typed_error() {
    let (mut server, addr) = spawn_serve(&["--read-timeout-ms", "300"]);
    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    // Send nothing: the per-line read budget expires and the server
    // answers with the typed timeout, then closes the connection.
    let response = read_response(&stream);
    assert_eq!(response, r#"{"error":"read timeout"}"#);
    use std::io::Read;
    let mut rest = Vec::new();
    let n = stream
        .try_clone()
        .expect("clone stream")
        .read_to_end(&mut rest)
        .unwrap_or(0);
    assert_eq!(n, 0, "connection closes after the timeout");
    server.kill().expect("kill memes serve");
    let _ = server.wait();
}

#[test]
fn serve_rejects_oversized_request_lines() {
    let (mut server, addr) = spawn_serve(&["--max-line-bytes", "4096"]);
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    use std::io::Write;
    // A newline-free blob past the cap: the server must reject it with
    // a typed error naming the limit rather than buffer indefinitely.
    let blob = vec![b'a'; 16 * 1024];
    let _ = stream.write_all(&blob);
    let _ = stream.flush();
    let response = read_response(&stream);
    assert!(
        response.contains("exceeds") && response.contains("4096"),
        "typed oversize rejection names the cap: {response}"
    );
    server.kill().expect("kill memes serve");
    let _ = server.wait();
}

#[test]
fn serve_sheds_connections_past_the_cap_with_a_typed_error() {
    let (_, medoid) = artifact();
    let (mut server, addr) = spawn_serve(&["--max-conns", "2"]);
    // Prove both slots are held by live, *working* connections first:
    // each holder completes a lookup and stays open.
    let holders: Vec<std::net::TcpStream> = (0..2)
        .map(|_| {
            let mut s = std::net::TcpStream::connect(&addr).expect("holder connects");
            use std::io::Write;
            s.write_all(format!("{{\"hash\": \"{medoid}\"}}\n").as_bytes())
                .expect("send lookup");
            let response = read_response(&s);
            assert!(
                response.starts_with("{\"found\""),
                "lookup answered: {response}"
            );
            s
        })
        .collect();
    // With the cap provably full, the next accept is shed typed.
    let shed = std::net::TcpStream::connect(&addr).expect("third connects");
    let response = read_response(&shed);
    assert_eq!(response, r#"{"error":"overloaded"}"#);
    drop(holders);
    server.kill().expect("kill memes serve");
    let _ = server.wait();
}

/// In-process twin of the spawned-server tests: `Server::shutdown` must
/// join the acceptor, every worker, and every connection reader — the
/// process thread count returns exactly to its pre-start baseline.
#[test]
fn shutdown_joins_every_reader_thread() {
    use origins_of_memes::metrics::Metrics;
    use origins_of_memes::serve::{Server, ServerConfig, Snapshot, SnapshotStore, DEFAULT_THETA};
    use std::sync::Arc;

    fn live_threads() -> Option<usize> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
    }

    // Build the snapshot (and warm the shared artifact) *before* taking
    // the thread baseline, so pipeline internals cannot skew the count.
    let _ = artifact();
    let dataset = SimConfig::tiny(17).generate();
    let output = Pipeline::new(PipelineConfig::fast()).run(&dataset).unwrap();
    let snapshot = Snapshot::build(&output, None, DEFAULT_THETA, 0).expect("snapshot builds");
    let store = Arc::new(SnapshotStore::new(snapshot));
    let Some(baseline) = live_threads() else {
        return; // no procfs — nothing to assert on this platform
    };

    let config = ServerConfig {
        workers: 2,
        read_timeout_ms: 5_000,
        ..ServerConfig::default()
    };
    let server = Server::start(store, config, Metrics::disabled()).expect("start server");
    let addr = server.local_addr();
    // Park idle readers, then shut down underneath them.
    let holders: Vec<std::net::TcpStream> = (0..3)
        .map(|_| std::net::TcpStream::connect(addr).expect("holder connects"))
        .collect();
    while server.active_connections() < 3 {
        std::thread::yield_now();
    }
    assert!(live_threads().unwrap_or(0) > baseline, "readers are live");

    server.shutdown();
    // Tests in this binary run in parallel, so unrelated harness
    // threads may *exit* between the two measurements — but any leaked
    // server thread would push the count strictly above the baseline.
    let after = live_threads().unwrap_or(0);
    assert!(
        after <= baseline,
        "shutdown must join every server thread: {after} > {baseline}"
    );
    drop(holders);
}

#[test]
fn serve_and_lookup_bad_usage_exits_two() {
    let (path, medoid) = artifact();
    let path = path.to_str().unwrap();

    assert_eq!(exit_code(&memes(&["serve"])), 2, "serve without --artifact");
    assert_eq!(
        exit_code(&memes(&["lookup", medoid])),
        2,
        "lookup without a source"
    );
    assert_eq!(
        exit_code(&memes(&[
            "lookup",
            medoid,
            "--artifact",
            path,
            "--addr",
            "127.0.0.1:1"
        ])),
        2,
        "lookup with both sources"
    );
    assert_eq!(
        exit_code(&memes(&["lookup", "--artifact", path])),
        2,
        "lookup without HASH"
    );
    assert_eq!(
        exit_code(&memes(&["lookup", "zz", "--artifact", path])),
        2,
        "malformed hash"
    );
    assert_eq!(
        exit_code(&memes(&[
            "lookup",
            medoid,
            "--artifact",
            "/no/such/artifact.json"
        ])),
        2,
        "unloadable artifact"
    );
    assert_eq!(
        exit_code(&memes(&["lookup", medoid, "--addr", "127.0.0.1:1"])),
        2,
        "unreachable server"
    );
    assert_eq!(
        exit_code(&memes(&["serve", "--artifact", "/no/such/artifact.json"])),
        2,
        "serve with unloadable artifact"
    );
}
