//! `memes serve` / `memes lookup` follow the workspace exit-code
//! convention ([`Exit`](origins_of_memes::analysis)): `0` hit, `1`
//! miss, `2` operational (bad usage, unloadable artifact, unreachable
//! server). The serve test also pins the startup contract scripts rely
//! on: the bound address is the first stdout line, so `--addr
//! 127.0.0.1:0` (a free port) stays discoverable.

use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig};
use origins_of_memes::simweb::SimConfig;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};
use std::sync::OnceLock;

/// One tiny completed-run artifact shared by every test in this file,
/// plus the hex rendering of an annotated cluster's medoid (a
/// guaranteed hit) — built once, the pipeline run dominates the cost.
fn artifact() -> &'static (PathBuf, String) {
    static ART: OnceLock<(PathBuf, String)> = OnceLock::new();
    ART.get_or_init(|| {
        let dataset = SimConfig::tiny(17).generate();
        let output = Pipeline::new(PipelineConfig::fast()).run(&dataset).unwrap();
        let ann = output
            .annotations
            .iter()
            .find(|a| a.is_annotated())
            .expect("tiny(17) run has annotated clusters");
        let medoid = format!("{}", output.medoid_hashes[ann.cluster]);
        let path =
            std::env::temp_dir().join(format!("memes-cli-serve-{}.json", std::process::id()));
        std::fs::write(&path, output.to_json()).expect("write artifact");
        (path, medoid)
    })
}

fn memes(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_memes"))
        .args(args)
        .output()
        .expect("spawn memes")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("memes terminated by signal")
}

#[test]
fn local_lookup_exits_zero_on_hit_and_one_on_miss() {
    let (path, medoid) = artifact();
    let path = path.to_str().unwrap();

    let hit = memes(&["lookup", medoid, "--artifact", path]);
    assert_eq!(
        exit_code(&hit),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&hit.stderr)
    );
    let stdout = String::from_utf8_lossy(&hit.stdout);
    assert!(stdout.contains("\"found\":true"), "{stdout}");
    assert!(stdout.contains("\"distance\":0"), "{stdout}");

    // All-ones is ~32 bits from a pHash medoid — far past θ = 8.
    let miss = memes(&["lookup", "ffffffffffffffff", "--artifact", path]);
    assert_eq!(exit_code(&miss), 1);
    assert!(String::from_utf8_lossy(&miss.stdout).contains("\"found\":false"));
}

#[test]
fn serve_answers_remote_lookups_on_a_discovered_port() {
    let (path, medoid) = artifact();
    let mut server = Command::new(env!("CARGO_BIN_EXE_memes"))
        .args(["serve", "--artifact", path.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn memes serve");
    // First stdout line announces the bound address (port 0 → free
    // port); that is the whole discovery protocol.
    let mut line = String::new();
    BufReader::new(server.stdout.take().expect("piped stdout"))
        .read_line(&mut line)
        .expect("read serve banner");
    let addr = line
        .trim()
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();

    let hit = memes(&["lookup", medoid, "--addr", &addr]);
    let miss = memes(&["lookup", "ffffffffffffffff", "--addr", &addr]);
    server.kill().expect("kill memes serve");
    let _ = server.wait();

    assert_eq!(
        exit_code(&hit),
        0,
        "stderr: {}",
        String::from_utf8_lossy(&hit.stderr)
    );
    assert!(String::from_utf8_lossy(&hit.stdout).contains("\"found\":true"));
    assert_eq!(exit_code(&miss), 1);
}

#[test]
fn serve_and_lookup_bad_usage_exits_two() {
    let (path, medoid) = artifact();
    let path = path.to_str().unwrap();

    assert_eq!(exit_code(&memes(&["serve"])), 2, "serve without --artifact");
    assert_eq!(
        exit_code(&memes(&["lookup", medoid])),
        2,
        "lookup without a source"
    );
    assert_eq!(
        exit_code(&memes(&[
            "lookup",
            medoid,
            "--artifact",
            path,
            "--addr",
            "127.0.0.1:1"
        ])),
        2,
        "lookup with both sources"
    );
    assert_eq!(
        exit_code(&memes(&["lookup", "--artifact", path])),
        2,
        "lookup without HASH"
    );
    assert_eq!(
        exit_code(&memes(&["lookup", "zz", "--artifact", path])),
        2,
        "malformed hash"
    );
    assert_eq!(
        exit_code(&memes(&[
            "lookup",
            medoid,
            "--artifact",
            "/no/such/artifact.json"
        ])),
        2,
        "unloadable artifact"
    );
    assert_eq!(
        exit_code(&memes(&["lookup", medoid, "--addr", "127.0.0.1:1"])),
        2,
        "unreachable server"
    );
    assert_eq!(
        exit_code(&memes(&["serve", "--artifact", "/no/such/artifact.json"])),
        2,
        "serve with unloadable artifact"
    );
}
