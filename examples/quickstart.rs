//! Quickstart: simulate a small Web ecosystem and run the paper's
//! seven-step pipeline end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig};
use origins_of_memes::hawkes::InfluenceEstimator;
use origins_of_memes::simweb::{Community, SimConfig};

fn main() {
    // 1. A deterministic synthetic ecosystem: five communities, a
    //    ground-truth meme universe, and a synthetic Know Your Meme
    //    site. Everything derives from the seed.
    let dataset = SimConfig::tiny(2024).generate();
    println!(
        "dataset: {} image posts across {} communities, {} memes, {} KYM entries",
        dataset.posts.len(),
        Community::COUNT,
        dataset.universe.len(),
        dataset.kym_raw.len()
    );

    // 2. Steps 1-6: hash, cluster, filter, annotate, associate.
    //    `PipelineConfig::fast()` uses the ground-truth screenshot
    //    oracle; `PipelineConfig::default()` trains the Appendix-C CNN.
    let output = Pipeline::new(PipelineConfig::fast())
        .run(&dataset)
        .expect("pipeline runs");
    println!(
        "clustering: {} clusters, {:.1}% noise",
        output.clustering.n_clusters(),
        100.0 * output.clustering.noise_fraction()
    );
    let annotated = output.annotated_clusters();
    println!(
        "annotation: {} clusters matched KYM entries",
        annotated.len()
    );

    // Inspect the top annotated cluster.
    if let Some(&cluster) = annotated.first() {
        if let Some(entry) = output.representative_entry(cluster) {
            println!(
                "cluster {cluster}: '{}' ({}), medoid hash {}",
                entry.name,
                entry.category.name(),
                output.medoid_hashes[cluster]
            );
        }
    }

    // 3. Step 7: fit a Hawkes model per annotated cluster and estimate
    //    which community drives the meme ecosystem.
    let estimator = InfluenceEstimator::new(Community::COUNT, 3.0);
    let influence = output
        .estimate_influence(&dataset, &estimator, 0)
        .expect("influence estimation succeeds");
    let ext = influence.total.total_external_normalized();
    println!("\nper-community external influence (normalized, % of own events):");
    for c in Community::ALL {
        println!("  {:<8} {:>7.2}%", c.name(), ext[c.index()]);
    }
    let best = Community::ALL
        .into_iter()
        .max_by(|a, b| ext[a.index()].partial_cmp(&ext[b.index()]).expect("finite"))
        .expect("non-empty");
    println!("most efficient meme spreader: {}", best.name());
}
