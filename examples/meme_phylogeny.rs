//! Meme phylogeny: use the paper's custom cluster distance metric
//! (§2.3) to build a dendrogram of meme variants (Fig. 6) and the
//! κ-threshold cluster graph (Fig. 7).
//!
//! ```text
//! cargo run --release --example meme_phylogeny
//! ```

use origins_of_memes::cluster::hier::Linkage;
use origins_of_memes::core::dendro::Phylogeny;
use origins_of_memes::core::graph::{ClusterGraph, GraphConfig};
use origins_of_memes::core::metric::{ClusterDescriptor, ClusterDistance};
use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig};
use origins_of_memes::simweb::{Community, SimConfig};

fn main() {
    let dataset = SimConfig::tiny(42).generate();
    let output = Pipeline::new(PipelineConfig::fast())
        .run(&dataset)
        .expect("pipeline runs");

    // Describe every annotated cluster: medoid hash + the union of its
    // KYM annotations (meme names, people, cultures).
    let mut descriptors = Vec::new();
    let mut labels = Vec::new();
    for ann in output.annotations.iter().filter(|a| a.is_annotated()) {
        let rep = output.site.entry(ann.representative.expect("annotated"));
        descriptors.push(ClusterDescriptor::from_annotation(
            output.medoid_hashes[ann.cluster],
            ann,
            &output.site,
        ));
        let medoid_post = output.medoid_posts[ann.cluster];
        let prefix = match dataset.posts[medoid_post].community {
            Community::Pol => "4",
            Community::TheDonald => "D",
            Community::Gab => "G",
            _ => "?",
        };
        labels.push(format!(
            "{prefix}@{}",
            rep.name.to_lowercase().replace(' ', "-")
        ));
    }
    println!("{} annotated clusters described", descriptors.len());

    let metric = ClusterDistance::default();

    // Eq. 2 in action: the perceptual decay for the paper's tau = 25.
    println!("\nr_perceptual under tau = 25 (Fig. 3's middle curve):");
    for d in [0u32, 4, 8, 16, 32, 64] {
        println!("  d = {d:>2}: {:.3}", metric.r_perceptual(d));
    }

    // Fig. 6: hierarchical clustering of the described clusters.
    if let Some(phylo) = Phylogeny::build(&descriptors, labels.clone(), &metric) {
        let families = phylo.family_listing(0.45);
        println!("\ndendrogram cut at 0.45 -> {} families:", families.len());
        for (i, family) in families.iter().enumerate().take(8) {
            println!(
                "  family {i}: {} clusters, e.g. {}",
                family.len(),
                family
                    .iter()
                    .take(4)
                    .copied()
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        let _ = Linkage::Average; // the linkage the phylogeny uses
    }

    // Fig. 7: the kappa-threshold graph.
    let graph = ClusterGraph::build(
        &descriptors,
        &labels,
        &metric,
        &GraphConfig {
            kappa: 0.45,
            min_degree: 1,
        },
    );
    println!(
        "\ncluster graph at kappa 0.45: {} nodes, {} edges, {} components, purity {:.2}",
        graph.node_count(),
        graph.edge_count(),
        graph.n_components,
        graph.component_purity()
    );
    println!("\nGraphviz DOT (first lines):");
    for line in graph.to_dot().lines().take(6) {
        println!("  {line}");
    }
}
