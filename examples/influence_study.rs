//! Influence study: fit multivariate Hawkes models to per-meme event
//! streams and compare the recovered influence against the simulator's
//! ground-truth lineage — the §5 experiment in miniature.
//!
//! ```text
//! cargo run --release --example influence_study
//! ```

use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig};
use origins_of_memes::hawkes::{Fitter, GibbsConfig, InfluenceEstimator, InfluenceMatrix};
use origins_of_memes::simweb::{Community, SimConfig};

fn print_matrix(title: &str, m: &[Vec<f64>]) {
    println!("--- {title} ---");
    print!("{:>9}", "src\\dst");
    for c in Community::ALL {
        print!("{:>9}", c.name());
    }
    println!();
    for (src, row) in m.iter().enumerate() {
        print!("{:>9}", Community::ALL[src].name());
        for v in row {
            print!("{v:>8.1}%");
        }
        println!();
    }
}

fn main() {
    let dataset = SimConfig::tiny(7).generate();
    let output = Pipeline::new(PipelineConfig::fast())
        .run(&dataset)
        .expect("pipeline runs");

    // Ground truth influence from the simulator's lineage.
    let mut truth = vec![vec![0.0f64; Community::COUNT]; Community::COUNT];
    for (post, occ) in dataset.posts.iter().zip(&output.occurrences) {
        if occ.is_none() {
            continue;
        }
        if let Some(root) = post.true_root {
            truth[root.index()][post.community.index()] += 1.0;
        }
    }
    let truth = InfluenceMatrix::from_counts(truth);

    // EM fit (deterministic maximum likelihood).
    let em = InfluenceEstimator::new(Community::COUNT, 3.0);
    let em_fit = output
        .estimate_influence(&dataset, &em, 0)
        .expect("EM estimation succeeds");

    // Gibbs fit (the paper's Bayesian approach).
    let gibbs = InfluenceEstimator::with_fitter(
        Community::COUNT,
        Fitter::Gibbs(
            GibbsConfig {
                beta: 3.0,
                samples: 60,
                burn_in: 30,
                ..GibbsConfig::default()
            },
            99,
        ),
    );
    let gibbs_fit = output
        .estimate_influence(&dataset, &gibbs, 0)
        .expect("Gibbs estimation succeeds");

    println!("percent of destination events caused by each source (Fig. 11 view):\n");
    print_matrix(
        "ground truth (simulator lineage)",
        &truth.percent_of_destination(),
    );
    print_matrix(
        "EM fit + root-cause attribution",
        &em_fit.total.percent_of_destination(),
    );
    print_matrix(
        "Gibbs fit + root-cause attribution",
        &gibbs_fit.total.percent_of_destination(),
    );

    // Mean absolute error of each fitter against truth.
    let mae = |fit: &InfluenceMatrix| -> f64 {
        let a = fit.percent_of_destination();
        let b = truth.percent_of_destination();
        let mut total = 0.0;
        for s in 0..Community::COUNT {
            for d in 0..Community::COUNT {
                total += (a[s][d] - b[s][d]).abs();
            }
        }
        total / (Community::COUNT * Community::COUNT) as f64
    };
    println!("\nmean absolute cell error vs truth:");
    println!("  EM:    {:.2} percentage points", mae(&em_fit.total));
    println!("  Gibbs: {:.2} percentage points", mae(&gibbs_fit.total));

    println!("\nexternal efficiency (Fig. 12's 'Total Ext' column):");
    let ext = em_fit.total.total_external_normalized();
    for c in Community::ALL {
        println!("  {:<8} {:>7.2}%", c.name(), ext[c.index()]);
    }
}
