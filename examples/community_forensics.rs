//! Community forensics: characterize Web communities through the lens
//! of memes (§4): popularity tables, temporal dynamics, and vote-score
//! distributions.
//!
//! ```text
//! cargo run --release --example community_forensics
//! ```

use origins_of_memes::core::analysis::{self, MemeFilter};
use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig};
use origins_of_memes::simweb::{Community, SimConfig};
use origins_of_memes::stats::Ecdf;

fn main() {
    let dataset = SimConfig::tiny(11).generate();
    let output = Pipeline::new(PipelineConfig::fast())
        .run(&dataset)
        .expect("pipeline runs");

    // --- Popularity: what does each community share? (Tables 4/5)
    for community in [Community::Pol, Community::Twitter] {
        println!("top memes on {}:", community.name());
        let rows = analysis::top_entries_by_posts(&dataset, &output, community, None, 5);
        for row in rows {
            println!(
                "  {:<28} {:>5} posts ({:.1}%)",
                row.entry, row.count, row.pct
            );
        }
    }

    // --- Temporal: when do political memes spike? (Fig. 8)
    let political = analysis::fig8_series(&dataset, &output, MemeFilter::Political);
    println!("\npolitical meme share per day (weekly means, %):");
    for (name, series) in &political {
        let weekly: Vec<f64> = series
            .chunks(7)
            .map(|w| w.iter().sum::<f64>() / w.len() as f64)
            .collect();
        let peak_week = weekly
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, v)| (i, *v))
            .unwrap_or((0, 0.0));
        println!(
            "  {:<8} peak week {} at {:.2}% (election at day {})",
            name, peak_week.0, peak_week.1, dataset.config.cascade.election_day
        );
    }

    // --- Scores: how do communities rate racist/political memes?
    //     (Fig. 9)
    for platform in [Community::Reddit, Community::Gab] {
        let s = analysis::fig9_scores(&dataset, &output, platform);
        println!("\nvote scores on {}:", platform.name());
        let report = |label: &str, sample: &[f64]| {
            if let Some(e) = Ecdf::new(sample.to_vec()) {
                println!(
                    "  {:<14} n={:<5} mean {:>7.1}  median {:>5.0}",
                    label,
                    e.len(),
                    e.mean(),
                    e.median()
                );
            }
        };
        report("political", &s.political);
        report("non-political", &s.non_political);
        report("racist", &s.racist);
        report("non-racist", &s.non_racist);
    }

    // --- Subreddits: where do Reddit's memes live? (Table 6)
    println!("\ntop subreddits for meme posts:");
    for row in analysis::table6(&dataset, &output, MemeFilter::All, 5) {
        println!(
            "  {:<16} {:>5} posts ({:.1}%)",
            row.subreddit, row.posts, row.pct
        );
    }
}
