//! Screenshot classifier: train the from-scratch CNN of Appendix C on
//! a synthetic screenshot-vs-meme corpus and evaluate it (Table 9 /
//! Fig. 19).
//!
//! ```text
//! cargo run --release --example screenshot_classifier
//! ```

use origins_of_memes::annotate::nn::TrainConfig;
use origins_of_memes::annotate::screenshot::{
    render_screenshot, ScreenshotCorpus, ScreenshotFilter, SourcePlatform,
};
use origins_of_memes::imaging::synth::TemplateGenome;
use origins_of_memes::stats::seeded_rng;

fn main() {
    // Build a corpus at 2% of the paper's 28.8K images, with Table 9's
    // platform mix.
    let corpus = ScreenshotCorpus::generate(0.02, 7);
    println!("training corpus ({} images):", corpus.len());
    for (platform, count) in &corpus.platform_counts {
        println!("  {:<10} {:>5} screenshots", platform.name(), count);
    }
    println!(
        "  {:<10} {:>5} meme/other images",
        "other", corpus.other_count
    );

    // Train: 2 conv + maxpool blocks, dense, dropout 0.5, Adam — the
    // Appendix-C architecture at 32x32.
    let (filter, metrics) = ScreenshotFilter::train(
        &corpus,
        &TrainConfig {
            epochs: 8,
            seed: 7,
            ..TrainConfig::default()
        },
    );
    println!("\nheld-out evaluation (paper values in brackets):");
    println!("  AUC       {:.3}   [0.96]", metrics.auc);
    println!("  accuracy  {:.3}   [0.913]", metrics.accuracy);
    println!("  precision {:.3}   [0.943]", metrics.precision);
    println!("  recall    {:.3}   [0.935]", metrics.recall);
    println!("  F1        {:.3}   [0.939]", metrics.f1);

    // Use the filter the way Step 4 does: score fresh images.
    let mut rng = seeded_rng(99);
    println!("\nscreenshot probability on fresh images:");
    for platform in SourcePlatform::ALL {
        let img = render_screenshot(platform, 64, &mut rng);
        println!(
            "  {:<10} screenshot -> {:.2}",
            platform.name(),
            filter.screenshot_proba(&img)
        );
    }
    for seed in [1u64, 2, 3] {
        let img = TemplateGenome::new(seed).render(64);
        println!(
            "  meme template #{seed}  -> {:.2}",
            filter.screenshot_proba(&img)
        );
    }
}
