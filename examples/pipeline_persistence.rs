//! Persistence: run the expensive pipeline once, save it, and analyze
//! the restored run — the paper's own batch/one-time-task split (§3.3:
//! "All other steps in our system are one-time batch tasks").
//!
//! ```text
//! cargo run --release --example pipeline_persistence
//! ```

use origins_of_memes::core::analysis;
use origins_of_memes::core::pipeline::{Pipeline, PipelineConfig, PipelineOutput};
use origins_of_memes::simweb::SimConfig;
use std::time::Instant;

fn main() {
    let dataset = SimConfig::tiny(77).generate();

    // The expensive part: hash + cluster + annotate + associate.
    let t0 = Instant::now();
    let output = Pipeline::new(PipelineConfig::fast())
        .run(&dataset)
        .expect("pipeline runs");
    println!("pipeline ran in {:.1?}", t0.elapsed());

    // Persist the run.
    let path = std::env::temp_dir().join("memes_pipeline_run.json");
    let json = output.to_json();
    std::fs::write(&path, &json).expect("can write the run");
    println!("saved {} ({} KiB)", path.display(), json.len() / 1024);

    // Later (a different process, in practice): restore and analyze
    // without re-hashing anything.
    let t1 = Instant::now();
    let restored =
        PipelineOutput::from_json(&std::fs::read_to_string(&path).expect("can read the run"))
            .expect("run deserializes");
    println!("restored in {:.1?}", t1.elapsed());

    assert_eq!(restored.post_hashes, output.post_hashes);
    let rows = analysis::table7(&dataset, &restored);
    println!("\nmeme events per community (from the restored run):");
    for (name, count) in rows {
        println!("  {name:<8} {count}");
    }
    let _ = std::fs::remove_file(&path);
}
